//! Clinical plan-quality objectives: quadratic penalties on the dose
//! distribution, the standard formulation in treatment planning systems.

/// One penalty term over a set of voxels (a contoured structure).
#[derive(Clone, Debug, PartialEq)]
pub enum ObjectiveTerm {
    /// Target uniformity: `weight / |V| * sum_i (d_i - prescribed)^2`.
    UniformDose {
        voxels: Vec<usize>,
        prescribed: f64,
        weight: f64,
    },
    /// Organ-at-risk ceiling: `weight / |V| * sum_i max(0, d_i - limit)^2`.
    MaxDose {
        voxels: Vec<usize>,
        limit: f64,
        weight: f64,
    },
    /// Target floor: `weight / |V| * sum_i max(0, limit - d_i)^2`.
    MinDose {
        voxels: Vec<usize>,
        limit: f64,
        weight: f64,
    },
    /// Mean-dose ceiling: `weight * max(0, mean(d) - limit)^2`.
    MeanDose {
        voxels: Vec<usize>,
        limit: f64,
        weight: f64,
    },
    /// Dose-volume constraint "at most `volume_fraction` of the
    /// structure may exceed `dose_level`" as the standard quadratic DVH
    /// penalty (Wu & Mohan style): voxels above the level that are *not*
    /// within the allowed hottest fraction are penalized toward the
    /// level. Piecewise smooth; the optimizer treats the active set as
    /// fixed per evaluation.
    DvhMax {
        voxels: Vec<usize>,
        dose_level: f64,
        volume_fraction: f64,
        weight: f64,
    },
}

impl ObjectiveTerm {
    /// For `DvhMax`: indices (into `voxels`) of the currently penalized
    /// voxels — those exceeding the level but not protected by the
    /// allowed hottest fraction.
    fn dvh_active(
        voxels: &[usize],
        d: &[f64],
        dose_level: f64,
        volume_fraction: f64,
    ) -> Vec<usize> {
        let allowed = ((voxels.len() as f64) * volume_fraction.clamp(0.0, 1.0)).floor() as usize;
        let mut over: Vec<usize> = (0..voxels.len())
            .filter(|&k| d[voxels[k]] > dose_level)
            .collect();
        if over.len() <= allowed {
            return Vec::new();
        }
        // The allowed quota shields the hottest voxels (they are assumed
        // intended, e.g. the boost region); the remaining excess is
        // penalized — the convention that produces the classic "pull the
        // shoulder of the DVH down" behaviour.
        over.sort_by(|&a, &b| d[voxels[b]].total_cmp(&d[voxels[a]]));
        over.split_off(allowed)
    }
}

impl ObjectiveTerm {
    /// Term value for dose vector `d`.
    pub fn value(&self, d: &[f64]) -> f64 {
        match self {
            ObjectiveTerm::UniformDose {
                voxels,
                prescribed,
                weight,
            } => {
                let s: f64 = voxels.iter().map(|&i| (d[i] - prescribed).powi(2)).sum();
                weight * s / voxels.len().max(1) as f64
            }
            ObjectiveTerm::MaxDose {
                voxels,
                limit,
                weight,
            } => {
                let s: f64 = voxels
                    .iter()
                    .map(|&i| (d[i] - limit).max(0.0).powi(2))
                    .sum();
                weight * s / voxels.len().max(1) as f64
            }
            ObjectiveTerm::MinDose {
                voxels,
                limit,
                weight,
            } => {
                let s: f64 = voxels
                    .iter()
                    .map(|&i| (limit - d[i]).max(0.0).powi(2))
                    .sum();
                weight * s / voxels.len().max(1) as f64
            }
            ObjectiveTerm::MeanDose {
                voxels,
                limit,
                weight,
            } => {
                if voxels.is_empty() {
                    return 0.0;
                }
                let mean: f64 = voxels.iter().map(|&i| d[i]).sum::<f64>() / voxels.len() as f64;
                weight * (mean - limit).max(0.0).powi(2)
            }
            ObjectiveTerm::DvhMax {
                voxels,
                dose_level,
                volume_fraction,
                weight,
            } => {
                if voxels.is_empty() {
                    return 0.0;
                }
                let active = Self::dvh_active(voxels, d, *dose_level, *volume_fraction);
                let s: f64 = active
                    .iter()
                    .map(|&k| (d[voxels[k]] - dose_level).powi(2))
                    .sum();
                weight * s / voxels.len() as f64
            }
        }
    }

    /// Accumulates `∂(term)/∂d` into `grad`.
    pub fn accumulate_dose_gradient(&self, d: &[f64], grad: &mut [f64]) {
        match self {
            ObjectiveTerm::UniformDose {
                voxels,
                prescribed,
                weight,
            } => {
                let c = 2.0 * weight / voxels.len().max(1) as f64;
                for &i in voxels {
                    grad[i] += c * (d[i] - prescribed);
                }
            }
            ObjectiveTerm::MaxDose {
                voxels,
                limit,
                weight,
            } => {
                let c = 2.0 * weight / voxels.len().max(1) as f64;
                for &i in voxels {
                    let over = d[i] - limit;
                    if over > 0.0 {
                        grad[i] += c * over;
                    }
                }
            }
            ObjectiveTerm::MinDose {
                voxels,
                limit,
                weight,
            } => {
                let c = 2.0 * weight / voxels.len().max(1) as f64;
                for &i in voxels {
                    let under = limit - d[i];
                    if under > 0.0 {
                        grad[i] -= c * under;
                    }
                }
            }
            ObjectiveTerm::MeanDose {
                voxels,
                limit,
                weight,
            } => {
                if voxels.is_empty() {
                    return;
                }
                let n = voxels.len() as f64;
                let mean: f64 = voxels.iter().map(|&i| d[i]).sum::<f64>() / n;
                let over = mean - limit;
                if over > 0.0 {
                    let c = 2.0 * weight * over / n;
                    for &i in voxels {
                        grad[i] += c;
                    }
                }
            }
            ObjectiveTerm::DvhMax {
                voxels,
                dose_level,
                volume_fraction,
                weight,
            } => {
                if voxels.is_empty() {
                    return;
                }
                let active = Self::dvh_active(voxels, d, *dose_level, *volume_fraction);
                let c = 2.0 * weight / voxels.len() as f64;
                for &k in &active {
                    grad[voxels[k]] += c * (d[voxels[k]] - dose_level);
                }
            }
        }
    }
}

/// A weighted sum of penalty terms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Objective {
    pub terms: Vec<ObjectiveTerm>,
}

impl Objective {
    pub fn new(terms: Vec<ObjectiveTerm>) -> Self {
        Objective { terms }
    }

    pub fn value(&self, d: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.value(d)).sum()
    }

    /// `∂f/∂d` — the residual the engine back-projects to get the weight
    /// gradient `A^T (∂f/∂d)`.
    pub fn dose_gradient(&self, d: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; d.len()];
        for t in &self.terms {
            t.accumulate_dose_gradient(d, &mut g);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(obj: &Objective, d: &[f64]) {
        let g = obj.dose_gradient(d);
        let h = 1e-6;
        for i in 0..d.len() {
            let mut dp = d.to_vec();
            dp[i] += h;
            let mut dm = d.to_vec();
            dm[i] -= h;
            let fd = (obj.value(&dp) - obj.value(&dm)) / (2.0 * h);
            assert!(
                (g[i] - fd).abs() <= 1e-5 * (1.0 + fd.abs()),
                "grad[{i}] = {} vs fd {}",
                g[i],
                fd
            );
        }
    }

    #[test]
    fn uniform_dose_zero_at_prescription() {
        let t = ObjectiveTerm::UniformDose {
            voxels: vec![0, 1],
            prescribed: 2.0,
            weight: 1.0,
        };
        assert_eq!(t.value(&[2.0, 2.0, 5.0]), 0.0);
        assert!(t.value(&[2.5, 2.0, 5.0]) > 0.0);
    }

    #[test]
    fn max_dose_only_penalizes_overdose() {
        let t = ObjectiveTerm::MaxDose {
            voxels: vec![0, 1],
            limit: 1.0,
            weight: 1.0,
        };
        assert_eq!(t.value(&[0.5, 1.0]), 0.0);
        assert!((t.value(&[2.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_dose_only_penalizes_underdose() {
        let t = ObjectiveTerm::MinDose {
            voxels: vec![0],
            limit: 1.0,
            weight: 2.0,
        };
        assert_eq!(t.value(&[1.5]), 0.0);
        assert!((t.value(&[0.5]) - 2.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_dose_uses_structure_mean() {
        let t = ObjectiveTerm::MeanDose {
            voxels: vec![0, 1],
            limit: 1.0,
            weight: 1.0,
        };
        assert_eq!(t.value(&[0.5, 1.5]), 0.0); // mean exactly at limit
        assert!((t.value(&[1.0, 2.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let obj = Objective::new(vec![
            ObjectiveTerm::UniformDose {
                voxels: vec![0, 1, 2],
                prescribed: 1.0,
                weight: 3.0,
            },
            ObjectiveTerm::MaxDose {
                voxels: vec![3, 4],
                limit: 0.5,
                weight: 2.0,
            },
            ObjectiveTerm::MinDose {
                voxels: vec![0, 1],
                limit: 0.9,
                weight: 1.5,
            },
            ObjectiveTerm::MeanDose {
                voxels: vec![2, 3, 4],
                limit: 0.4,
                weight: 4.0,
            },
        ]);
        fd_check(&obj, &[0.8, 1.1, 0.6, 0.9, 0.2]);
        fd_check(&obj, &[0.0, 0.0, 0.0, 0.0, 0.0]);
        fd_check(&obj, &[2.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn dvh_max_penalizes_only_the_unprotected_excess() {
        // 4 voxels, level 1.0, 25% of the volume may exceed it.
        let t = ObjectiveTerm::DvhMax {
            voxels: vec![0, 1, 2, 3],
            dose_level: 1.0,
            volume_fraction: 0.25,
            weight: 1.0,
        };
        // No voxel over the level: no penalty.
        assert_eq!(t.value(&[0.5, 0.9, 1.0, 0.2]), 0.0);
        // One voxel over (within the 25% quota): no penalty.
        assert_eq!(t.value(&[2.0, 0.9, 1.0, 0.2]), 0.0);
        // Three voxels over: the hottest is protected, the other two pay.
        let v = t.value(&[3.0, 1.5, 2.0, 0.2]);
        let expected = ((1.5f64 - 1.0).powi(2) + (2.0f64 - 1.0).powi(2)) / 4.0;
        assert!((v - expected).abs() < 1e-12, "{v} vs {expected}");
    }

    #[test]
    fn dvh_max_gradient_matches_finite_differences_away_from_kinks() {
        let obj = Objective::new(vec![ObjectiveTerm::DvhMax {
            voxels: vec![0, 1, 2, 3, 4],
            dose_level: 1.0,
            volume_fraction: 0.2,
            weight: 2.0,
        }]);
        // Doses well separated so the active set is stable under the
        // finite-difference step.
        fd_check(&obj, &[3.0, 1.4, 2.2, 0.3, 0.8]);
    }

    #[test]
    fn dvh_optimization_pulls_volume_under_the_level() {
        use crate::engine::CpuDoseEngine;
        use crate::optimizer::{optimize, OptimizerConfig};
        // 4 voxels each fed by its own spot.
        let m = rt_sparse::Csr::<f64, u32>::from_rows(
            4,
            &[
                vec![(0, 1.0)],
                vec![(1, 1.0)],
                vec![(2, 1.0)],
                vec![(3, 1.0)],
            ],
        )
        .unwrap();
        let e = CpuDoseEngine::new(m);
        let obj = Objective::new(vec![
            // Keep overall dose up...
            ObjectiveTerm::MinDose {
                voxels: vec![0, 1, 2, 3],
                limit: 1.0,
                weight: 1.0,
            },
            // ...but at most one voxel may exceed 1.2.
            ObjectiveTerm::DvhMax {
                voxels: vec![0, 1, 2, 3],
                dose_level: 1.2,
                volume_fraction: 0.25,
                weight: 50.0,
            },
        ]);
        let r = optimize(&e, &obj, &[3.0, 3.0, 3.0, 0.1], &OptimizerConfig::default());
        let over = r.dose.iter().filter(|&&d| d > 1.2 * 1.01).count();
        assert!(over <= 1, "doses {:?}", r.dose);
    }

    #[test]
    fn empty_structures_are_harmless() {
        let obj = Objective::new(vec![
            ObjectiveTerm::MeanDose {
                voxels: vec![],
                limit: 1.0,
                weight: 1.0,
            },
            ObjectiveTerm::UniformDose {
                voxels: vec![],
                prescribed: 1.0,
                weight: 1.0,
            },
        ]);
        assert_eq!(obj.value(&[1.0, 2.0]), 0.0);
        assert_eq!(obj.dose_gradient(&[1.0, 2.0]), vec![0.0, 0.0]);
    }
}
