//! Multi-beam plans: a clinical plan delivers all of a case's beams
//! (four for the liver case), and the optimizer controls the
//! concatenated spot-weight vector. The composite engine sums the
//! per-beam doses — one SpMV *per beam* per evaluation, which is why the
//! paper's per-beam matrices and per-beam speedups multiply through an
//! entire planning session.

use crate::engine::DoseEngine;

/// A plan-level dose engine over several beams sharing one dose grid.
/// The weight vector is the concatenation of the beams' spot weights in
/// beam order.
pub struct MultiBeamEngine<E: DoseEngine> {
    beams: Vec<E>,
    /// Start offset of each beam's weights in the plan vector (+ total).
    offsets: Vec<usize>,
    nvoxels: usize,
}

impl<E: DoseEngine> MultiBeamEngine<E> {
    /// Builds the composite. All beams must address the same dose grid.
    pub fn new(beams: Vec<E>) -> Self {
        assert!(!beams.is_empty(), "a plan needs at least one beam");
        let nvoxels = beams[0].nvoxels();
        assert!(
            beams.iter().all(|b| b.nvoxels() == nvoxels),
            "all beams must share the dose grid"
        );
        let mut offsets = Vec::with_capacity(beams.len() + 1);
        offsets.push(0);
        for b in &beams {
            offsets.push(offsets.last().unwrap() + b.nspots());
        }
        MultiBeamEngine {
            beams,
            offsets,
            nvoxels,
        }
    }

    /// Number of beams in the plan.
    pub fn num_beams(&self) -> usize {
        self.beams.len()
    }

    /// The weight-vector range owned by beam `b`.
    pub fn beam_range(&self, b: usize) -> core::ops::Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }
}

impl<E: DoseEngine> DoseEngine for MultiBeamEngine<E> {
    fn nvoxels(&self) -> usize {
        self.nvoxels
    }

    fn nspots(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    fn dose(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.nspots(), "plan weight vector length");
        let mut total = vec![0.0; self.nvoxels];
        for (b, beam) in self.beams.iter().enumerate() {
            let d = beam.dose(&weights[self.beam_range(b)]);
            for (t, v) in total.iter_mut().zip(d) {
                *t += v;
            }
        }
        total
    }

    fn backproject(&self, residual: &[f64]) -> Vec<f64> {
        let mut g = Vec::with_capacity(self.nspots());
        for beam in &self.beams {
            g.extend(beam.backproject(residual));
        }
        g
    }

    fn modeled_seconds(&self) -> f64 {
        self.beams.iter().map(|b| b.modeled_seconds()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuDoseEngine;
    use crate::objective::{Objective, ObjectiveTerm};
    use crate::optimizer::{optimize, OptimizerConfig};
    use rt_sparse::Csr;

    fn beam(entries: &[Vec<(usize, f64)>]) -> CpuDoseEngine {
        CpuDoseEngine::new(Csr::from_rows(2, entries).unwrap())
    }

    fn plan() -> MultiBeamEngine<CpuDoseEngine> {
        // Two beams over a 3-voxel grid, 2 spots each.
        MultiBeamEngine::new(vec![
            beam(&[vec![(0, 1.0)], vec![(1, 0.5)], vec![]]),
            beam(&[vec![], vec![(0, 0.25)], vec![(1, 2.0)]]),
        ])
    }

    #[test]
    fn dose_is_the_sum_of_beams() {
        let p = plan();
        assert_eq!(p.nspots(), 4);
        assert_eq!(p.nvoxels(), 3);
        assert_eq!(p.num_beams(), 2);
        let d = p.dose(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(d, vec![1.0, 0.75, 2.0]);
        // Zeroing one beam's weights removes its contribution.
        let d1 = p.dose(&[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(d1, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn backprojection_concatenates_beam_gradients() {
        let p = plan();
        let g = p.backproject(&[1.0, 1.0, 1.0]);
        assert_eq!(g.len(), 4);
        // Beam 1: A1^T r = [1.0, 0.5]; beam 2: [0.25, 2.0].
        assert_eq!(g, vec![1.0, 0.5, 0.25, 2.0]);
    }

    #[test]
    fn gradient_is_consistent_with_dose() {
        // Finite-difference check through the full composite.
        let p = plan();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0, 1, 2],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let w = [0.4, 0.8, 0.3, 0.6];
        let grad = p.backproject(&obj.dose_gradient(&p.dose(&w)));
        let h = 1e-6;
        for i in 0..4 {
            let mut wp = w;
            wp[i] += h;
            let mut wm = w;
            wm[i] -= h;
            let fd = (obj.value(&p.dose(&wp)) - obj.value(&p.dose(&wm))) / (2.0 * h);
            assert!((grad[i] - fd).abs() < 1e-5, "spot {i}: {} vs {fd}", grad[i]);
        }
    }

    #[test]
    fn optimizer_balances_beams() {
        let p = plan();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0, 1, 2],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let r = optimize(&p, &obj, &[0.1; 4], &OptimizerConfig::default());
        assert!(r.objective < 0.05, "objective {}", r.objective);
        assert!(r.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    #[should_panic(expected = "share the dose grid")]
    fn rejects_mismatched_grids() {
        let a = beam(&[vec![(0, 1.0)], vec![], vec![]]);
        let b = CpuDoseEngine::new(Csr::from_rows(2, &[vec![(0, 1.0)], vec![]]).unwrap());
        let _ = MultiBeamEngine::new(vec![a, b]);
    }
}
