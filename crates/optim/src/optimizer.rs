//! Projected gradient descent over the non-negative weight cone, with
//! Armijo backtracking — a compact stand-in for the quasi-Newton solvers
//! clinical systems use, with the same per-iteration SpMV cost profile
//! (one forward dose calculation per function evaluation, one transpose
//! per gradient).

use crate::engine::DoseEngine;
use crate::objective::Objective;

/// Optimizer settings.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    pub max_iters: usize,
    /// Stop when the projected-gradient norm falls below this.
    pub grad_tol: f64,
    /// Initial step length.
    pub step0: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c: f64,
    /// Backtracking shrink factor.
    pub backtrack: f64,
    /// Maximum backtracking halvings per iteration.
    pub max_backtracks: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_iters: 100,
            grad_tol: 1e-6,
            step0: 1.0,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_backtracks: 30,
        }
    }
}

/// Per-iteration record.
#[derive(Clone, Debug)]
pub struct IterationLog {
    pub iter: usize,
    pub objective: f64,
    pub projected_grad_norm: f64,
    pub step: f64,
    /// Forward dose calculations so far (the paper's bottleneck count).
    pub dose_evals: usize,
}

/// Optimization outcome.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    pub weights: Vec<f64>,
    pub dose: Vec<f64>,
    pub objective: f64,
    pub history: Vec<IterationLog>,
    pub converged: bool,
    /// Total forward dose calculations.
    pub dose_evals: usize,
    /// Modeled seconds spent in dose kernels (engines with a model).
    pub modeled_dose_seconds: f64,
    /// Modeled seconds spent in gradient back-projections (engines with
    /// a model) — the backward share of the iterate.
    pub modeled_gradient_seconds: f64,
}

/// Runs projected gradient descent: `w_{k+1} = max(0, w_k - t g_k)`.
pub fn optimize<E: DoseEngine>(
    engine: &E,
    objective: &Objective,
    w0: &[f64],
    cfg: &OptimizerConfig,
) -> OptimizeResult {
    optimize_impl(
        engine,
        &|d| objective.value(d),
        &|d| objective.dose_gradient(d),
        w0,
        cfg,
    )
}

/// The solver core, over closure-backed objectives (used directly by the
/// robust composite, which is not expressible as an [`Objective`]).
pub(crate) fn optimize_impl<E: DoseEngine>(
    engine: &E,
    value_fn: &dyn Fn(&[f64]) -> f64,
    grad_fn: &dyn Fn(&[f64]) -> Vec<f64>,
    w0: &[f64],
    cfg: &OptimizerConfig,
) -> OptimizeResult {
    assert_eq!(w0.len(), engine.nspots(), "one initial weight per spot");
    let mut w: Vec<f64> = w0.iter().map(|&x| x.max(0.0)).collect();
    let mut dose = engine.dose(&w);
    let mut f = value_fn(&dose);
    let mut dose_evals = 1usize;
    let mut history = Vec::new();
    let mut converged = false;
    let mut step = cfg.step0;

    for iter in 0..cfg.max_iters {
        let residual = grad_fn(&dose);
        let grad = engine.backproject(&residual);

        // Projected gradient: at the boundary (w = 0), only descent
        // directions that stay feasible count.
        let pg_norm = w
            .iter()
            .zip(grad.iter())
            .map(|(&wi, &gi)| if wi > 0.0 || gi < 0.0 { gi * gi } else { 0.0 })
            .sum::<f64>()
            .sqrt();

        history.push(IterationLog {
            iter,
            objective: f,
            projected_grad_norm: pg_norm,
            step,
            dose_evals,
        });

        if pg_norm <= cfg.grad_tol {
            converged = true;
            break;
        }

        // Armijo backtracking on the projected step.
        let mut accepted = false;
        let mut t = step;
        for _ in 0..cfg.max_backtracks {
            let w_new: Vec<f64> = w
                .iter()
                .zip(grad.iter())
                .map(|(&wi, &gi)| (wi - t * gi).max(0.0))
                .collect();
            let dose_new = engine.dose(&w_new);
            dose_evals += 1;
            let f_new = value_fn(&dose_new);
            // Sufficient decrease against the projected step length.
            let decrease: f64 = w
                .iter()
                .zip(w_new.iter())
                .zip(grad.iter())
                .map(|((&wi, &wni), &gi)| gi * (wi - wni))
                .sum();
            if f_new <= f - cfg.armijo_c * decrease {
                w = w_new;
                dose = dose_new;
                f = f_new;
                // Gentle step growth after success.
                step = (t * 1.8).min(cfg.step0 * 1e6);
                accepted = true;
                break;
            }
            t *= cfg.backtrack;
        }
        if !accepted {
            // Line search failed: we are numerically stuck.
            break;
        }
    }

    OptimizeResult {
        objective: f,
        weights: w,
        dose,
        history,
        converged,
        dose_evals,
        modeled_dose_seconds: engine.modeled_seconds(),
        modeled_gradient_seconds: engine.modeled_gradient_seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuDoseEngine;
    use crate::objective::ObjectiveTerm;
    use rt_sparse::Csr;

    /// 4 voxels, 2 spots: spot 0 hits voxels {0,1}, spot 1 hits {2,3}.
    fn engine() -> CpuDoseEngine {
        CpuDoseEngine::new(
            Csr::from_rows(
                2,
                &[
                    vec![(0, 1.0)],
                    vec![(0, 0.8)],
                    vec![(1, 1.0)],
                    vec![(1, 1.2)],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn reaches_prescription_on_separable_problem() {
        let e = engine();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0, 1, 2, 3],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let r = optimize(&e, &obj, &[0.1, 0.1], &OptimizerConfig::default());
        assert!(r.converged, "history: {:?}", r.history.last());
        // Least-squares optima: w0 = (1 + 0.8)/(1 + 0.64), w1 = 2.2/2.44.
        assert!(
            (r.weights[0] - 1.8 / 1.64).abs() < 1e-3,
            "w0 {}",
            r.weights[0]
        );
        assert!(
            (r.weights[1] - 2.2 / 2.44).abs() < 1e-3,
            "w1 {}",
            r.weights[1]
        );
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let e = engine();
        let obj = Objective::new(vec![
            ObjectiveTerm::UniformDose {
                voxels: vec![0, 1],
                prescribed: 2.0,
                weight: 1.0,
            },
            ObjectiveTerm::MaxDose {
                voxels: vec![2, 3],
                limit: 0.3,
                weight: 5.0,
            },
        ]);
        let r = optimize(&e, &obj, &[1.0, 1.0], &OptimizerConfig::default());
        for w in r.history.windows(2) {
            assert!(w[1].objective <= w[0].objective + 1e-12);
        }
    }

    #[test]
    fn weights_stay_nonnegative() {
        let e = engine();
        // Push all dose to zero: optimal weights are 0.
        let obj = Objective::new(vec![ObjectiveTerm::MaxDose {
            voxels: vec![0, 1, 2, 3],
            limit: 0.0,
            weight: 1.0,
        }]);
        let r = optimize(&e, &obj, &[5.0, 5.0], &OptimizerConfig::default());
        assert!(r.weights.iter().all(|&w| w >= 0.0));
        assert!(r.objective < 1e-8, "objective {}", r.objective);
    }

    #[test]
    fn negative_initial_weights_are_projected() {
        let e = engine();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let r = optimize(&e, &obj, &[-3.0, -3.0], &OptimizerConfig::default());
        assert!(r.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn zero_iterations_returns_initial_state() {
        let e = engine();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let cfg = OptimizerConfig {
            max_iters: 0,
            ..Default::default()
        };
        let r = optimize(&e, &obj, &[0.5, 0.5], &cfg);
        assert_eq!(r.weights, vec![0.5, 0.5]);
        assert_eq!(r.dose_evals, 1);
        assert!(!r.converged);
    }

    #[test]
    fn dose_eval_count_tracks_line_search() {
        let e = engine();
        let obj = Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0, 1, 2, 3],
            prescribed: 1.0,
            weight: 1.0,
        }]);
        let r = optimize(&e, &obj, &[0.0, 0.0], &OptimizerConfig::default());
        assert!(r.dose_evals >= r.history.len());
    }
}
