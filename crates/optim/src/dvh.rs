//! Dose-volume histograms — the standard clinical plan-quality report:
//! for each structure, the fraction of its volume receiving at least a
//! given dose. Planners read plans off these curves ("V20 < 30%",
//! "D95 > prescription"), and DVH-based objectives (see
//! [`crate::ObjectiveTerm::DvhMax`]) drive the optimizer toward them.

/// A cumulative dose-volume histogram for one structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Dvh {
    /// Sorted doses of the structure's voxels (ascending).
    sorted: Vec<f64>,
}

impl Dvh {
    /// Builds the DVH of a structure (a set of voxel indices) from a
    /// dose vector.
    pub fn new(dose: &[f64], voxels: &[usize]) -> Self {
        let mut sorted: Vec<f64> = voxels.iter().map(|&i| dose[i]).collect();
        sorted.sort_by(f64::total_cmp);
        Dvh { sorted }
    }

    /// Number of voxels in the structure.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `V(d)`: fraction of the volume receiving at least dose `d`.
    pub fn volume_at_dose(&self, d: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&x| x < d);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// `D(v)`: minimum dose received by the hottest `v` fraction of the
    /// volume (e.g. `dose_at_volume(0.95)` = D95, the near-minimum
    /// target dose).
    pub fn dose_at_volume(&self, v: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let v = v.clamp(0.0, 1.0);
        // The hottest v-fraction starts at index n*(1-v) of the
        // ascending sort.
        let idx = ((self.sorted.len() as f64) * (1.0 - v)).floor() as usize;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Mean structure dose.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Maximum structure dose.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Samples the curve at `points` dose levels from 0 to the maximum,
    /// as `(dose, volume_fraction)` pairs — the plotted DVH.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let max = self.max();
        if max <= 0.0 || points < 2 {
            return vec![(0.0, if self.is_empty() { 0.0 } else { 1.0 })];
        }
        (0..points)
            .map(|i| {
                let d = max * i as f64 / (points - 1) as f64;
                (d, self.volume_at_dose(d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dvh() -> Dvh {
        // Structure = voxels 1,3,5 with doses 2, 6, 4.
        Dvh::new(&[9.0, 2.0, 9.0, 6.0, 9.0, 4.0], &[1, 3, 5])
    }

    #[test]
    fn volume_at_dose_is_a_survival_curve() {
        let d = dvh();
        assert_eq!(d.volume_at_dose(0.0), 1.0);
        assert!((d.volume_at_dose(3.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.volume_at_dose(5.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.volume_at_dose(7.0), 0.0);
        // Exactly at a voxel's dose, that voxel still counts.
        assert!((d.volume_at_dose(6.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dose_at_volume_quantiles() {
        let d = dvh();
        assert_eq!(d.dose_at_volume(1.0), 2.0); // D100 = min dose
        assert_eq!(d.dose_at_volume(0.0), 6.0); // D0 = max dose
        assert_eq!(d.dose_at_volume(0.5), 4.0);
    }

    #[test]
    fn summary_statistics() {
        let d = dvh();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert_eq!(d.max(), 6.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let d = dvh();
        let c = d.curve(16);
        assert_eq!(c.len(), 16);
        for w in c.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(c[0].1, 1.0);
    }

    #[test]
    fn empty_structure() {
        let d = Dvh::new(&[1.0, 2.0], &[]);
        assert!(d.is_empty());
        assert_eq!(d.volume_at_dose(0.5), 0.0);
        assert_eq!(d.mean(), 0.0);
    }
}
