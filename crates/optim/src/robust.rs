//! Scenario-based robust optimization — the "more sophisticated and
//! computationally demanding optimization methods" the paper's
//! introduction motivates: uncertainties (patient setup errors, anatomy
//! changes) are modeled as dose-matrix *scenarios*, and the plan is
//! optimized against their expectation or worst case. Each scenario
//! multiplies the per-iteration SpMV count — exactly why dose-kernel
//! throughput gates method sophistication.

use crate::engine::DoseEngine;
use crate::objective::Objective;
use crate::optimizer::{OptimizeResult, OptimizerConfig};
use rt_sparse::Csr;

/// How scenario objectives are composited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobustMode {
    /// Minimize the average scenario objective (stochastic programming).
    Expectation,
    /// Minimize the worst scenario objective (minimax, via subgradient:
    /// each iteration differentiates the currently-active worst
    /// scenario).
    WorstCase,
}

/// A robust planning problem: one engine per scenario, one shared
/// objective.
pub struct RobustProblem<E: DoseEngine> {
    pub scenarios: Vec<E>,
    pub objective: Objective,
    pub mode: RobustMode,
}

/// Composite objective value over scenarios.
pub fn robust_objective_value<E: DoseEngine>(p: &RobustProblem<E>, w: &[f64]) -> f64 {
    let vals = p.scenarios.iter().map(|e| p.objective.value(&e.dose(w)));
    match p.mode {
        RobustMode::Expectation => vals.sum::<f64>() / p.scenarios.len().max(1) as f64,
        RobustMode::WorstCase => vals.fold(0.0, f64::max),
    }
}

/// A composite engine + objective view that lets the plain projected
/// gradient solver drive the robust problem.
struct CompositeEngine<'a, E: DoseEngine> {
    problem: &'a RobustProblem<E>,
}

impl<E: DoseEngine> RobustProblem<E> {
    pub fn new(scenarios: Vec<E>, objective: Objective, mode: RobustMode) -> Self {
        assert!(!scenarios.is_empty(), "need at least one scenario");
        let spots = scenarios[0].nspots();
        assert!(
            scenarios.iter().all(|s| s.nspots() == spots),
            "all scenarios must share the spot set"
        );
        RobustProblem {
            scenarios,
            objective,
            mode,
        }
    }

    /// Solves the robust problem with projected gradient descent.
    ///
    /// For `Expectation`, the gradient is the scenario-average gradient;
    /// for `WorstCase`, the subgradient of the max (the active
    /// scenario's gradient). Implemented by wrapping the scenarios in a
    /// composite [`DoseEngine`] whose "dose" is the stacked scenario
    /// doses.
    pub fn solve(&self, w0: &[f64], cfg: &OptimizerConfig) -> OptimizeResult {
        let composite = CompositeEngine { problem: self };
        let stacked_objective = StackedObjective {
            inner: &self.objective,
            nvox: self.scenarios[0].nvoxels(),
            nscen: self.scenarios.len(),
            mode: self.mode,
        };
        // The generic optimizer sees a stacked dose vector and an
        // objective that composites per-scenario blocks.
        optimize_with_stacked(&composite, &stacked_objective, w0, cfg)
    }
}

impl<E: DoseEngine> DoseEngine for CompositeEngine<'_, E> {
    fn nvoxels(&self) -> usize {
        self.problem.scenarios[0].nvoxels() * self.problem.scenarios.len()
    }

    fn nspots(&self) -> usize {
        self.problem.scenarios[0].nspots()
    }

    fn dose(&self, weights: &[f64]) -> Vec<f64> {
        let mut stacked = Vec::with_capacity(self.nvoxels());
        for s in &self.problem.scenarios {
            stacked.extend(s.dose(weights));
        }
        stacked
    }

    fn backproject(&self, residual: &[f64]) -> Vec<f64> {
        let nvox = self.problem.scenarios[0].nvoxels();
        let mut g = vec![0.0; self.nspots()];
        for (k, s) in self.problem.scenarios.iter().enumerate() {
            let block = &residual[k * nvox..(k + 1) * nvox];
            if block.iter().all(|&x| x == 0.0) {
                continue; // inactive scenario (worst-case mode)
            }
            for (gi, si) in g.iter_mut().zip(s.backproject(block)) {
                *gi += si;
            }
        }
        g
    }

    fn modeled_seconds(&self) -> f64 {
        self.problem
            .scenarios
            .iter()
            .map(|s| s.modeled_seconds())
            .sum()
    }
}

/// Adapter objective over the stacked scenario-dose vector.
struct StackedObjective<'a> {
    inner: &'a Objective,
    nvox: usize,
    nscen: usize,
    mode: RobustMode,
}

impl StackedObjective<'_> {
    fn value(&self, stacked: &[f64]) -> f64 {
        let vals = (0..self.nscen).map(|k| {
            self.inner
                .value(&stacked[k * self.nvox..(k + 1) * self.nvox])
        });
        match self.mode {
            RobustMode::Expectation => vals.sum::<f64>() / self.nscen as f64,
            RobustMode::WorstCase => vals.fold(0.0, f64::max),
        }
    }

    fn dose_gradient(&self, stacked: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; stacked.len()];
        match self.mode {
            RobustMode::Expectation => {
                let scale = 1.0 / self.nscen as f64;
                for k in 0..self.nscen {
                    let block = &stacked[k * self.nvox..(k + 1) * self.nvox];
                    for (dst, src) in g[k * self.nvox..(k + 1) * self.nvox]
                        .iter_mut()
                        .zip(self.inner.dose_gradient(block))
                    {
                        *dst = src * scale;
                    }
                }
            }
            RobustMode::WorstCase => {
                let worst = (0..self.nscen)
                    .max_by(|&a, &b| {
                        self.inner
                            .value(&stacked[a * self.nvox..(a + 1) * self.nvox])
                            .total_cmp(
                                &self
                                    .inner
                                    .value(&stacked[b * self.nvox..(b + 1) * self.nvox]),
                            )
                    })
                    .unwrap_or(0);
                let block = &stacked[worst * self.nvox..(worst + 1) * self.nvox];
                for (dst, src) in g[worst * self.nvox..(worst + 1) * self.nvox]
                    .iter_mut()
                    .zip(self.inner.dose_gradient(block))
                {
                    *dst = src;
                }
            }
        }
        g
    }
}

/// A private clone of the generic solver loop that consumes the stacked
/// objective (which is not a plain [`Objective`]).
fn optimize_with_stacked<E: DoseEngine>(
    engine: &E,
    objective: &StackedObjective<'_>,
    w0: &[f64],
    cfg: &OptimizerConfig,
) -> OptimizeResult {
    // Express the stacked objective as a closure-backed `Objective` is
    // not possible (enum-based), so reuse the solver logic via a small
    // shim: wrap value/gradient calls.
    crate::optimizer::optimize_impl(
        engine,
        &|d| objective.value(d),
        &|d| objective.dose_gradient(d),
        w0,
        cfg,
    )
}

/// Builds a setup-error scenario by shifting the dose matrix `shift`
/// voxels along the fastest axis (x): row `r` of the shifted matrix
/// receives what row `r - shift` received nominally. `line_len` is the
/// grid's x extent (`DoseGrid::nx` scaled to flattened indices): shifts
/// never cross an x-line boundary — dose shifted past the edge of a
/// line is dropped, like anatomy moving out of the beam. Pass
/// `usize::MAX` for an unstructured (1-D) row space.
pub fn shifted_scenario(matrix: &Csr<f64, u32>, shift: isize, line_len: usize) -> Csr<f64, u32> {
    let nrows = matrix.nrows();
    let triplets: Vec<(usize, usize, f64)> = matrix
        .iter()
        .filter_map(|(r, c, v)| {
            let r2 = r as isize + shift;
            if !(0..nrows as isize).contains(&r2) {
                return None;
            }
            if line_len != usize::MAX && r / line_len != (r2 as usize) / line_len {
                return None; // crossed an x-line boundary
            }
            Some((r2 as usize, c, v))
        })
        .collect();
    Csr::from_triplets(nrows, matrix.ncols(), &triplets).expect("shift preserves bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CpuDoseEngine;
    use crate::objective::ObjectiveTerm;

    fn base_matrix() -> Csr<f64, u32> {
        Csr::from_rows(
            2,
            &[
                vec![(0, 1.0)],
                vec![(0, 0.6), (1, 0.4)],
                vec![(1, 1.0)],
                vec![(1, 0.2)],
            ],
        )
        .unwrap()
    }

    fn objective() -> Objective {
        Objective::new(vec![ObjectiveTerm::UniformDose {
            voxels: vec![0, 1, 2],
            prescribed: 1.0,
            weight: 1.0,
        }])
    }

    #[test]
    fn shifted_scenario_moves_rows() {
        let m = base_matrix();
        let s = shifted_scenario(&m, 1, usize::MAX);
        assert_eq!(s.nrows(), m.nrows());
        assert_eq!(s.row(0).0.len(), 0); // row 0 shifted away
        assert_eq!(s.row(1).1, m.row(0).1);
        // Shift out the other side.
        let s2 = shifted_scenario(&m, -1, usize::MAX);
        assert_eq!(s2.row(0).1, m.row(1).1);
        assert_eq!(s2.row(3).0.len(), 0);
    }

    #[test]
    fn shifted_scenario_respects_line_boundaries() {
        // 4 rows = two x-lines of length 2. A +1 shift moves row 0 -> 1
        // and row 2 -> 3, but rows 1 and 3 (line ends) are dropped, not
        // wrapped into the next line.
        let m = base_matrix();
        let s = shifted_scenario(&m, 1, 2);
        assert_eq!(s.row(1).1, m.row(0).1);
        assert_eq!(s.row(3).1, m.row(2).1);
        assert_eq!(s.row(0).0.len(), 0);
        assert_eq!(s.row(2).0.len(), 0); // NOT m.row(1): no wrap
    }

    #[test]
    fn expectation_solve_converges() {
        let scenarios: Vec<CpuDoseEngine> = [-1isize, 0, 1]
            .iter()
            .map(|&s| CpuDoseEngine::new(shifted_scenario(&base_matrix(), s, usize::MAX)))
            .collect();
        let p = RobustProblem::new(scenarios, objective(), RobustMode::Expectation);
        let r = p.solve(&[0.5, 0.5], &OptimizerConfig::default());
        let final_val = robust_objective_value(&p, &r.weights);
        let init_val = robust_objective_value(&p, &[0.5, 0.5]);
        assert!(final_val < init_val, "{final_val} vs {init_val}");
        assert!(r.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn worst_case_bound_dominates_expectation() {
        let scenarios = |mode| {
            RobustProblem::new(
                [-1isize, 0, 1]
                    .iter()
                    .map(|&s| CpuDoseEngine::new(shifted_scenario(&base_matrix(), s, usize::MAX)))
                    .collect::<Vec<_>>(),
                objective(),
                mode,
            )
        };
        let w = [0.7, 0.9];
        let exp = robust_objective_value(&scenarios(RobustMode::Expectation), &w);
        let wc = robust_objective_value(&scenarios(RobustMode::WorstCase), &w);
        assert!(wc >= exp);
    }

    #[test]
    fn worst_case_solve_improves_worst_scenario() {
        let make = || {
            [-1isize, 0, 1]
                .iter()
                .map(|&s| CpuDoseEngine::new(shifted_scenario(&base_matrix(), s, usize::MAX)))
                .collect::<Vec<_>>()
        };
        let p = RobustProblem::new(make(), objective(), RobustMode::WorstCase);
        let w0 = [0.1, 0.1];
        let r = p.solve(
            &w0,
            &OptimizerConfig {
                max_iters: 200,
                ..Default::default()
            },
        );
        assert!(robust_objective_value(&p, &r.weights) < robust_objective_value(&p, &w0));
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn rejects_empty_scenarios() {
        let _ = RobustProblem::<CpuDoseEngine>::new(vec![], objective(), RobustMode::Expectation);
    }
}
