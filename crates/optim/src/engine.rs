//! The dose-engine abstraction the optimizer drives.

use rt_core::DoseCalculator;
use rt_sparse::Csr;

/// Anything that can map spot weights to dose and back-project
/// residuals. One forward call per objective evaluation, one
/// back-projection per gradient — the two SpMVs of every optimizer
/// iteration.
pub trait DoseEngine {
    fn nvoxels(&self) -> usize;
    fn nspots(&self) -> usize;
    /// `d = A w`.
    fn dose(&self, weights: &[f64]) -> Vec<f64>;
    /// `g = A^T r`.
    fn backproject(&self, residual: &[f64]) -> Vec<f64>;
    /// Modeled seconds spent in dose calculations so far (0 for engines
    /// without a performance model).
    fn modeled_seconds(&self) -> f64 {
        0.0
    }
    /// Modeled seconds spent in gradient back-projections so far (0 for
    /// engines without a performance model).
    fn modeled_gradient_seconds(&self) -> f64 {
        0.0
    }
}

/// Full-precision CPU reference engine.
pub struct CpuDoseEngine {
    matrix: Csr<f64, u32>,
}

impl CpuDoseEngine {
    pub fn new(matrix: Csr<f64, u32>) -> Self {
        CpuDoseEngine { matrix }
    }

    pub fn matrix(&self) -> &Csr<f64, u32> {
        &self.matrix
    }
}

impl DoseEngine for CpuDoseEngine {
    fn nvoxels(&self) -> usize {
        self.matrix.nrows()
    }

    fn nspots(&self) -> usize {
        self.matrix.ncols()
    }

    fn dose(&self, weights: &[f64]) -> Vec<f64> {
        let mut d = vec![0.0; self.matrix.nrows()];
        self.matrix
            .spmv_ref(weights, &mut d)
            .expect("dimension checked");
        d
    }

    fn backproject(&self, residual: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.matrix.ncols()];
        self.matrix
            .spmv_transpose_ref(residual, &mut g)
            .expect("dimension checked");
        g
    }
}

/// The paper's configuration: dose and gradient computed by the
/// Half/double kernel on the simulated GPU, with the modeled kernel
/// times accumulated so end-to-end planning speedups can be reported.
pub struct GpuDoseEngine {
    calc: DoseCalculator,
    seconds: std::cell::Cell<f64>,
    grad_seconds: std::cell::Cell<f64>,
}

impl GpuDoseEngine {
    /// Uploads the matrix (and its transpose, for gradients).
    pub fn new(
        device: rt_gpusim::DeviceSpec,
        matrix: &Csr<f64, u32>,
    ) -> Result<Self, rt_core::RtError> {
        Ok(GpuDoseEngine {
            calc: DoseCalculator::builder(matrix)
                .device(device)
                .with_transpose()
                .build()?,
            seconds: std::cell::Cell::new(0.0),
            grad_seconds: std::cell::Cell::new(0.0),
        })
    }

    /// Like [`GpuDoseEngine::new`] with counter extrapolation: traffic
    /// scales by `nnz_scale`, warp counts by `row_scale` (see
    /// `rt_repro::runner` for the per-axis rationale).
    pub fn with_scales(
        device: rt_gpusim::DeviceSpec,
        matrix: &Csr<f64, u32>,
        nnz_scale: f64,
        row_scale: f64,
    ) -> Result<Self, rt_core::RtError> {
        Ok(GpuDoseEngine {
            calc: DoseCalculator::builder(matrix)
                .device(device)
                .with_transpose()
                .scale(nnz_scale)
                .row_scale(row_scale)
                .build()?,
            seconds: std::cell::Cell::new(0.0),
            grad_seconds: std::cell::Cell::new(0.0),
        })
    }

    /// Wraps a pre-configured calculator (e.g. one with partitioned
    /// dose and gradient dispatch) — the calculator must have been
    /// built [`with_transpose`](rt_core::DoseCalculatorBuilder::with_transpose),
    /// or every back-projection fails.
    pub fn with_calculator(calc: DoseCalculator) -> Result<Self, rt_core::RtError> {
        if !calc.has_transpose() {
            return Err(rt_core::RtError::TransposeUnavailable);
        }
        Ok(GpuDoseEngine {
            calc,
            seconds: std::cell::Cell::new(0.0),
            grad_seconds: std::cell::Cell::new(0.0),
        })
    }
}

impl DoseEngine for GpuDoseEngine {
    fn nvoxels(&self) -> usize {
        self.calc.nrows()
    }

    fn nspots(&self) -> usize {
        self.calc.ncols()
    }

    fn dose(&self, weights: &[f64]) -> Vec<f64> {
        // Dimensions were validated at construction; the optimizer always
        // passes `nspots`-length weights, so this cannot fail.
        let r = self
            .calc
            .compute_dose(weights)
            .expect("validated dimensions");
        self.seconds.set(self.seconds.get() + r.estimate().seconds);
        r.dose
    }

    fn backproject(&self, residual: &[f64]) -> Vec<f64> {
        // The batch entry point (batch of one) returns the gradient
        // launch report, so the backward pass's modeled time is tracked
        // like the forward pass's — at the gradient direction's own
        // width/partition, which since ISSUE 9 may differ from the
        // dose direction's.
        let mut r = self
            .calc
            .compute_gradient_batch(&[residual])
            .expect("transpose uploaded at construction");
        self.grad_seconds
            .set(self.grad_seconds.get() + r.report.estimate.seconds);
        r.outputs.swap_remove(0)
    }

    fn modeled_seconds(&self) -> f64 {
        self.seconds.get()
    }

    fn modeled_gradient_seconds(&self) -> f64 {
        self.grad_seconds.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_gpusim::DeviceSpec;

    fn matrix() -> Csr<f64, u32> {
        Csr::from_rows(
            3,
            &[
                vec![(0, 1.0), (1, 0.5)],
                vec![(1, 2.0)],
                vec![(0, 0.25), (2, 1.5)],
                vec![],
            ],
        )
        .unwrap()
    }

    #[test]
    fn cpu_engine_forward_and_back() {
        let e = CpuDoseEngine::new(matrix());
        assert_eq!(e.nvoxels(), 4);
        assert_eq!(e.nspots(), 3);
        let d = e.dose(&[1.0, 1.0, 1.0]);
        assert_eq!(d, vec![1.5, 2.0, 1.75, 0.0]);
        let g = e.backproject(&[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(g, vec![1.25, 0.5, 1.5]);
    }

    #[test]
    fn gpu_engine_matches_cpu_within_f16_rounding() {
        let m = matrix();
        let cpu = CpuDoseEngine::new(m.clone());
        let gpu = GpuDoseEngine::new(DeviceSpec::a100(), &m).unwrap();
        let w = [0.7, 1.3, 0.4];
        let dc = cpu.dose(&w);
        let dg = gpu.dose(&w);
        for (a, b) in dc.iter().zip(dg.iter()) {
            assert!((a - b).abs() < 2e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
        assert!(gpu.modeled_seconds() > 0.0);
    }
}
