//! Treatment-plan optimization — the loop the paper accelerates.
//!
//! RTP poses plan quality as a nonlinear optimization over spot weights
//! `w >= 0`: the objective scores the dose distribution `d = A w`
//! (uniform prescribed dose in the target, dose limits in organs at
//! risk), and every iteration needs `A w` (function value) and `A^T r`
//! (gradient) — which is why the paper's SpMV speedups translate
//! directly into planning-time speedups (§I, §II-A).
//!
//! * [`Objective`] / [`ObjectiveTerm`] — the standard quadratic penalty
//!   terms of clinical planning systems.
//! * [`optimize`] — projected gradient descent with Armijo line search
//!   over the non-negativity cone.
//! * [`robust`] — scenario-based robust optimization (setup-error
//!   scenarios; expectation and worst-case composites), the "more
//!   sophisticated optimization methods" §II-A motivates with faster
//!   dose calculation.
//! * [`DoseEngine`] — the abstraction the optimizer drives; implemented
//!   by the CPU reference ([`CpuDoseEngine`]) and by
//!   `rt_core::DoseCalculator` (the simulated-GPU Half/double kernel).

pub mod dvh;
pub mod engine;
pub mod multibeam;
pub mod objective;
pub mod optimizer;
pub mod robust;

pub use dvh::Dvh;
pub use engine::{CpuDoseEngine, DoseEngine, GpuDoseEngine};
pub use multibeam::MultiBeamEngine;
pub use objective::{Objective, ObjectiveTerm};
pub use optimizer::{optimize, IterationLog, OptimizeResult, OptimizerConfig};
pub use robust::{robust_objective_value, RobustMode, RobustProblem};
