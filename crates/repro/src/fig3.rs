//! Figure 3 — roofline analysis on the A100: Ginkgo, cuSPARSE, our
//! Single and our Half/double kernels, measured operational intensity
//! vs modeled GFLOP/s, plus the paper's analytic OI upper bound
//! (0.332 for liver beam 1 in Half/double).

use crate::context::Context;
use crate::render::{f1, TextTable};
use crate::runner::{run_cusparse, run_ginkgo, run_half_double, run_single, Measured};
use rt_gpusim::DeviceSpec;
use rt_roofline::{CsrTrafficModel, Roofline};

/// One roofline point plus its analytic OI bounds.
#[derive(Clone, Debug)]
pub struct Fig3Point {
    pub measured: Measured,
    /// Infinite-cache OI bound at the *simulated* matrix dimensions
    /// (what the measured OI should approach).
    pub oi_bound: f64,
    /// The same bound at the clinical Table I dimensions (the paper
    /// quotes 0.332 for liver beam 1 in Half/double).
    pub oi_bound_paper: f64,
    pub attainable_gflops: f64,
}

pub struct Fig3 {
    pub points: Vec<Fig3Point>,
    pub roofline_f64: Roofline,
    pub roofline_f32: Roofline,
}

pub fn generate(ctx: &Context) -> Fig3 {
    let dev = DeviceSpec::a100();
    let mut points = Vec::new();
    for case in [ctx.liver1(), ctx.prostate1()] {
        let (nnz, nr, nc) = (
            case.case.matrix.nnz() as u64,
            case.case.matrix.nrows() as u64,
            case.case.matrix.ncols() as u64,
        );
        let (p_nnz, p_nr, p_nc) = (
            case.case.paper.nnz as u64,
            case.case.paper.rows as u64,
            case.case.paper.cols as u64,
        );
        let runs = [
            (
                run_half_double(case, &dev, 512),
                CsrTrafficModel::half_double(),
            ),
            (run_single(case, &dev, 512), CsrTrafficModel::single()),
            (run_cusparse(case, &dev), CsrTrafficModel::single()),
            (run_ginkgo(case, &dev), CsrTrafficModel::single()),
        ];
        for (m, traffic) in runs {
            let roof = Roofline::for_device(&dev, m.profile.precision);
            let attainable = roof.attainable(m.oi()) / 1e9;
            points.push(Fig3Point {
                oi_bound: traffic.oi_upper_bound(nnz, nr, nc),
                oi_bound_paper: traffic.oi_upper_bound(p_nnz, p_nr, p_nc),
                attainable_gflops: attainable,
                measured: m,
            });
        }
    }
    Fig3 {
        points,
        roofline_f64: Roofline::for_device(&dev, rt_gpusim::Precision::Double),
        roofline_f32: Roofline::for_device(&dev, rt_gpusim::Precision::Single),
    }
}

impl Fig3 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "case",
            "kernel",
            "OI measured",
            "OI bound",
            "OI bound (paper dims)",
            "GFLOP/s",
            "attainable",
            "% of roof",
        ]);
        for p in &self.points {
            t.row(vec![
                p.measured.case.clone(),
                p.measured.kernel.clone(),
                format!("{:.3}", p.measured.oi()),
                format!("{:.3}", p.oi_bound),
                format!("{:.3}", p.oi_bound_paper),
                f1(p.measured.gflops()),
                f1(p.attainable_gflops),
                format!("{:.0}%", 100.0 * p.measured.gflops() / p.attainable_gflops),
            ]);
        }
        format!(
            "Figure 3: A100 roofline (peak {:.0} GF/s fp64 / {:.0} GF/s fp32, \
             {:.0} GB/s DRAM)\npaper: Half/double OI bound for liver 1 = 0.332, \
             measured close to it; Half/double sits right of Single/libraries.\n\n{}",
            self.roofline_f64.peak_flops / 1e9,
            self.roofline_f32.peak_flops / 1e9,
            self.roofline_f64.peak_bw / 1e9,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn roofline_points_reproduce_paper_shape() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        assert_eq!(f.points.len(), 8);

        let by = |case: &str, kernel: &str| {
            f.points
                .iter()
                .find(|p| p.measured.case == case && p.measured.kernel == kernel)
                .unwrap()
        };

        // Half/double has higher OI than every single-precision kernel.
        let hd = by("Liver 1", "Half/double");
        for k in ["Single", "cuSPARSE", "Ginkgo"] {
            assert!(
                hd.measured.oi() > by("Liver 1", k).measured.oi(),
                "Half/double OI {} vs {k} {}",
                hd.measured.oi(),
                by("Liver 1", k).measured.oi()
            );
        }
        // The paper-dimension Half/double bound reproduces the quoted
        // 0.332 for liver beam 1.
        assert!(
            (hd.oi_bound_paper - 0.332).abs() < 0.003,
            "paper bound {}",
            hd.oi_bound_paper
        );
        // Measured OI approaches the infinite-cache bound at matching
        // dimensions (the paper's own validation, done at our scale).
        for p in &f.points {
            let ratio = p.measured.oi() / p.oi_bound;
            assert!(
                (0.75..=1.10).contains(&ratio),
                "{} {}: OI {} vs bound {} (ratio {ratio})",
                p.measured.case,
                p.measured.kernel,
                p.measured.oi(),
                p.oi_bound
            );
        }
        // No point beats its roof.
        for p in &f.points {
            assert!(p.measured.gflops() <= p.attainable_gflops * 1.02);
        }
    }
}
