//! Per-buffer traffic decomposition of the Half/double kernel — the §V
//! analysis ("the memory traffic caused by loading the column indices
//! ... make up a large portion of the total") made measurable: the
//! simulator attributes every sector to the array it belongs to, so the
//! `6*nnz = 2*nnz (values) + 4*nnz (indices)` split, the row-pointer
//! term and the cache-resident input vector can each be checked against
//! the model.

use crate::context::Context;
use crate::render::{sci, TextTable};
use rt_core::{vector_csr_spmv, GpuCsrMatrix};
use rt_gpusim::{BufferTraffic, DeviceSpec};

pub struct TrafficCase {
    pub case: String,
    pub nnz: usize,
    pub nrows: usize,
    pub ncols: usize,
    pub buffers: Vec<BufferTraffic>,
}

pub fn generate(ctx: &Context) -> Vec<TrafficCase> {
    let dev = DeviceSpec::a100();
    [ctx.liver1(), ctx.prostate1()]
        .into_iter()
        .map(|c| {
            let gpu = crate::runner::sim_gpu(c, &dev);
            let gm = GpuCsrMatrix::upload_named(&gpu, &c.f16);
            let x = gpu.upload_named("x (weights)", &c.weights);
            let y = gpu.alloc_out_named::<f64>("y (dose)", c.f16.nrows());
            vector_csr_spmv(&gpu, &gm, &x, &y, 512); // warm-up
            gpu.reset_traffic();
            vector_csr_spmv(&gpu, &gm, &x, &y, 512);
            TrafficCase {
                case: c.name().to_string(),
                nnz: c.f16.nnz(),
                nrows: c.f16.nrows(),
                ncols: c.f16.ncols(),
                buffers: gpu.traffic_report(),
            }
        })
        .collect()
}

pub fn render(cases: &[TrafficCase]) -> String {
    let mut out = String::from(
        "Per-buffer DRAM traffic of the Half/double kernel (steady state)\n\
         paper model (§V): 2B/nnz values + 4B/nnz indices + 4B/row pointers\n\
         + 8B/row output; the input vector stays cache-resident.\n",
    );
    for c in cases {
        out.push_str(&format!(
            "\n{} ({} nnz, {} rows, {} cols):\n\n",
            c.case, c.nnz, c.nrows, c.ncols
        ));
        let mut t = TextTable::new(&[
            "buffer",
            "DRAM read bytes",
            "bytes/nnz",
            "model",
            "L2 hit rate",
        ]);
        for b in &c.buffers {
            let model = match b.name.as_str() {
                "values" => "2.00".to_string(),
                "col_idx" => "4.00".to_string(),
                "row_ptr" => format!("{:.2}", 4.0 * c.nrows as f64 / c.nnz as f64),
                "x (weights)" => "~0 (resident)".to_string(),
                _ => "-".to_string(),
            };
            let hit_rate = if b.read_sectors > 0 {
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - b.dram_read_sectors as f64 / b.read_sectors as f64)
                )
            } else {
                "-".to_string()
            };
            t.row(vec![
                b.name.clone(),
                sci(b.dram_read_bytes() as f64),
                format!("{:.2}", b.dram_read_bytes() as f64 / c.nnz as f64),
                model,
                hit_rate,
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn decomposition_matches_model() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let cases = generate(&ctx);
        assert_eq!(cases.len(), 2);
        for c in &cases {
            let by = |name: &str| {
                c.buffers
                    .iter()
                    .find(|b| b.name == name)
                    .unwrap_or_else(|| panic!("no buffer {name}"))
            };
            let nnz = c.nnz as f64;
            let values = by("values").dram_read_bytes() as f64;
            let idx = by("col_idx").dram_read_bytes() as f64;
            assert!(
                (values / (2.0 * nnz) - 1.0).abs() < 0.35,
                "{}: values {values}",
                c.case
            );
            assert!(
                (idx / (4.0 * nnz) - 1.0).abs() < 0.35,
                "{}: idx {idx}",
                c.case
            );
            // Indices cost ~2x the values — the paper's future-work
            // motivation for 16-bit indices.
            assert!(idx > 1.5 * values, "{}: {idx} vs {values}", c.case);
            // The input vector is mostly cache-resident.
            let x = by("x (weights)");
            assert!(
                x.dram_read_sectors * 4 < x.read_sectors,
                "{}: x not resident ({} of {})",
                c.case,
                x.dram_read_sectors,
                x.read_sectors
            );
        }
        let _ = render(&cases);
    }
}
