//! Ablations of the design choices the paper calls out.
//!
//! * [`index_width`] — 16-bit vs 32-bit column indices (§V future work:
//!   "the column indices for the prostate case could be stored using 16
//!   bit unsigned integers").
//! * [`formats`] — CSR vs ELLPACK vs SELL-C-σ vs RayStation-compressed
//!   storage footprint (§II-C / §VII future work).
//! * [`row_mapping`] — warp-per-row vs thread-per-row (§III's design
//!   argument).
//! * [`value_encoding`] — binary16 vs bfloat16 vs 16-bit fixed point
//!   accuracy at equal storage (§II-D "16 bits to store the entries").
//! * [`reproducibility`] — the cost of determinism: deterministic
//!   warp-reduction kernel vs atomic baseline (§II-D requirement).

use crate::context::{Context, PreparedCase};
use crate::render::{f1, sci, TextTable};
use crate::runner::{run_baseline, run_half_double, run_scalar};
use rt_core::{profile_sell, sell_spmv, vector_csr_spmv, GpuCsrMatrix, GpuSellMatrix};
use rt_f16::{Bf16, F16};
use rt_gpusim::timing::estimate;
use rt_gpusim::{DeviceSpec, Gpu};
use rt_sparse::{Csr, Ell, QuantizedCsr, RsCompressed, SellCSigma};

/// 16-bit vs 32-bit column indices: DRAM traffic and OI.
pub struct IndexWidthRow {
    pub case: String,
    pub fits_u16: bool,
    pub dram_bytes_u32: u64,
    pub dram_bytes_u16: Option<u64>,
    pub oi_u32: f64,
    pub oi_u16: Option<f64>,
}

pub fn index_width(ctx: &Context) -> Vec<IndexWidthRow> {
    let dev = DeviceSpec::a100();
    ctx.cases
        .iter()
        .map(|c| {
            let run_u32 = run_half_double(c, &dev, 512);
            let u16_matrix: Option<Csr<F16, u16>> = c.f16.convert_indices().ok();
            let run_u16 = u16_matrix.map(|m| {
                let gpu = crate::runner::sim_gpu(c, &dev);
                let gm = GpuCsrMatrix::upload(&gpu, &m);
                let x = gpu.upload(&c.weights);
                let y = gpu.alloc_out::<f64>(m.nrows());
                vector_csr_spmv(&gpu, &gm, &x, &y, 512);
                vector_csr_spmv(&gpu, &gm, &x, &y, 512)
            });
            IndexWidthRow {
                case: c.name().to_string(),
                fits_u16: run_u16.is_some(),
                dram_bytes_u32: run_u32.raw.dram_total_bytes(),
                dram_bytes_u16: run_u16.as_ref().map(|s| s.dram_total_bytes()),
                oi_u32: run_u32.oi(),
                oi_u16: run_u16.as_ref().map(|s| s.operational_intensity()),
            }
        })
        .collect()
}

pub fn render_index_width(rows: &[IndexWidthRow]) -> String {
    let mut t = TextTable::new(&[
        "case",
        "fits u16",
        "DRAM bytes (u32)",
        "DRAM bytes (u16)",
        "OI u32",
        "OI u16",
        "traffic saved",
    ]);
    for r in rows {
        t.row(vec![
            r.case.clone(),
            r.fits_u16.to_string(),
            sci(r.dram_bytes_u32 as f64),
            r.dram_bytes_u16
                .map(|b| sci(b as f64))
                .unwrap_or("-".into()),
            format!("{:.3}", r.oi_u32),
            r.oi_u16.map(|o| format!("{o:.3}")).unwrap_or("-".into()),
            r.dram_bytes_u16
                .map(|b| format!("{:.0}%", 100.0 * (1.0 - b as f64 / r.dram_bytes_u32 as f64)))
                .unwrap_or("-".into()),
        ]);
    }
    format!(
        "Ablation: 16-bit column indices (paper §V future work)\n\
         note: the paper's clinical liver beams have ~68000 columns and do NOT\n\
         fit u16; at simulation scale all generated cases do.\n\n{}",
        t.render()
    )
}

/// Storage footprint of every format on one case.
pub struct FormatRow {
    pub format: String,
    pub bytes: usize,
    pub padding_factor: f64,
}

pub fn formats(case: &PreparedCase) -> Vec<FormatRow> {
    let csr = &case.f16;
    let csr_u16_bytes = csr
        .convert_indices::<u16>()
        .map(|m| m.size_bytes())
        .unwrap_or(0);
    let ell = Ell::from_csr(csr);
    let sell = SellCSigma::from_csr(csr, 32, 1024);
    let rs = RsCompressed::from_csr(csr);
    let mut rows = vec![
        FormatRow {
            format: "CSR f16/u32".into(),
            bytes: csr.size_bytes(),
            padding_factor: 1.0,
        },
        FormatRow {
            format: "ELLPACK f16/u32".into(),
            bytes: ell.size_bytes(),
            padding_factor: ell.padding_factor(),
        },
        FormatRow {
            format: "SELL-32-1024 f16/u32".into(),
            bytes: sell.size_bytes(),
            padding_factor: sell.padding_factor(),
        },
        FormatRow {
            format: "RayStation-compressed f16".into(),
            bytes: rs.size_bytes(),
            padding_factor: 1.0,
        },
    ];
    if csr_u16_bytes > 0 {
        rows.insert(
            1,
            FormatRow {
                format: "CSR f16/u16".into(),
                bytes: csr_u16_bytes,
                padding_factor: 1.0,
            },
        );
    }
    rows
}

pub fn render_formats(case_name: &str, rows: &[FormatRow]) -> String {
    let mut t = TextTable::new(&["format", "bytes", "vs CSR", "padding factor"]);
    let csr_bytes = rows[0].bytes as f64;
    for r in rows {
        t.row(vec![
            r.format.clone(),
            sci(r.bytes as f64),
            format!("{:.2}x", r.bytes as f64 / csr_bytes),
            format!("{:.2}", r.padding_factor),
        ]);
    }
    format!(
        "Ablation: storage formats on {case_name} (§II-C / §VII future work)\n\
         ELLPACK pads to the longest row; with the heavy-tailed row lengths of\n\
         dose matrices this explodes, while SELL-C-sigma recovers most of it.\n\n{}",
        t.render()
    )
}

/// CSR vector kernel vs the SELL-C-32 kernel (§VII future work,
/// implemented): modeled performance and traffic on the simulator.
pub struct SellVsCsrRow {
    pub case: String,
    pub csr_gflops: f64,
    pub sell_gflops: f64,
    pub sell_padding: f64,
    pub csr_dram: u64,
    pub sell_dram: u64,
}

pub fn sell_vs_csr(ctx: &Context) -> Vec<SellVsCsrRow> {
    let dev = DeviceSpec::a100();
    [ctx.liver1(), ctx.prostate1()]
        .into_iter()
        .map(|c| {
            let csr_run = run_half_double(c, &dev, 512);

            let sell = SellCSigma::from_csr(&c.f16, 32, 4096);
            let gpu = crate::runner::sim_gpu(c, &dev);
            let gm = GpuSellMatrix::upload(&gpu, &sell);
            let x = gpu.upload(&c.weights);
            let y = gpu.alloc_out::<f64>(c.f16.nrows());
            sell_spmv(&gpu, &gm, &x, &y, 512); // warm-up
            let raw = sell_spmv(&gpu, &gm, &x, &y, 512);
            let mut scaled = raw.scale(c.case.extrapolation());
            let row_factor = c.case.paper.rows / c.case.matrix.nrows() as f64;
            scaled.warps = (raw.warps as f64 * row_factor).round() as u64;
            scaled.blocks = ((raw.blocks as f64 * row_factor).round() as u64).max(1);
            // Report useful GFLOP/s (2*nnz), not padded FMAs.
            scaled.flops = (2.0 * c.case.paper.nnz) as u64;
            let est = estimate(&dev, &profile_sell(), &scaled);

            SellVsCsrRow {
                case: c.name().to_string(),
                csr_gflops: csr_run.gflops(),
                sell_gflops: est.gflops,
                sell_padding: sell.padding_factor(),
                csr_dram: csr_run.raw.dram_total_bytes(),
                sell_dram: raw.dram_total_bytes(),
            }
        })
        .collect()
}

pub fn render_sell_vs_csr(rows: &[SellVsCsrRow]) -> String {
    let mut t = TextTable::new(&[
        "case",
        "CSR vector GF/s",
        "SELL-C-32 GF/s",
        "SELL padding",
        "CSR DRAM",
        "SELL DRAM",
    ]);
    for r in rows {
        t.row(vec![
            r.case.clone(),
            f1(r.csr_gflops),
            f1(r.sell_gflops),
            format!("{:.2}x", r.sell_padding),
            sci(r.csr_dram as f64),
            sci(r.sell_dram as f64),
        ]);
    }
    format!(
        "Extension: SELL-C-sigma GPU kernel vs the paper's CSR vector kernel
         (the paper's §VII future work, implemented; useful flops reported
         for both). SELL trades padded traffic for zero per-row pointer
         chasing and no reduction.

{}",
        t.render()
    )
}

/// Warp-per-row vs thread-per-row.
pub struct RowMappingResult {
    pub case: String,
    pub vector_gflops: f64,
    pub scalar_gflops: f64,
    pub vector_dram: u64,
    pub scalar_dram: u64,
    /// On-chip (L2) traffic — where the thread-per-row penalty lives
    /// when the scattered sectors stay cache-resident between lockstep
    /// steps: 32 transactions per step instead of a handful.
    pub vector_l2: u64,
    pub scalar_l2: u64,
}

pub fn row_mapping(ctx: &Context) -> Vec<RowMappingResult> {
    let dev = DeviceSpec::a100();
    [ctx.liver1(), ctx.prostate1()]
        .into_iter()
        .map(|c| {
            let v = run_half_double(c, &dev, 512);
            let s = run_scalar(c, &dev, 512);
            RowMappingResult {
                case: c.name().to_string(),
                vector_gflops: v.gflops(),
                scalar_gflops: s.gflops(),
                vector_dram: v.raw.dram_total_bytes(),
                scalar_dram: s.raw.dram_total_bytes(),
                vector_l2: v.raw.l2_total_bytes(),
                scalar_l2: s.raw.l2_total_bytes(),
            }
        })
        .collect()
}

pub fn render_row_mapping(rows: &[RowMappingResult]) -> String {
    let mut t = TextTable::new(&[
        "case",
        "warp-per-row GF/s",
        "thread-per-row GF/s",
        "speedup",
        "DRAM amplification",
        "on-chip amplification",
    ]);
    for r in rows {
        t.row(vec![
            r.case.clone(),
            f1(r.vector_gflops),
            f1(r.scalar_gflops),
            format!("{:.2}x", r.vector_gflops / r.scalar_gflops),
            format!("{:.2}x", r.scalar_dram as f64 / r.vector_dram as f64),
            format!("{:.2}x", r.scalar_l2 as f64 / r.vector_l2 as f64),
        ]);
    }
    format!(
        "Ablation: row-to-thread mapping (§III design argument)\n\n{}",
        t.render()
    )
}

/// Accuracy of the three 16-bit value encodings against f64 ground truth.
pub struct EncodingRow {
    pub encoding: String,
    /// Maximum relative error of the dose vector (over voxels with
    /// non-negligible dose).
    pub max_rel_error: f64,
    /// RMS relative error.
    pub rms_rel_error: f64,
}

pub fn value_encoding(case: &PreparedCase) -> Vec<EncodingRow> {
    let exact = {
        let mut d = vec![0.0; case.case.matrix.nrows()];
        case.case.matrix.spmv_ref(&case.weights, &mut d).unwrap();
        d
    };
    let threshold = exact.iter().cloned().fold(0.0, f64::max) * 1e-3;

    let errors = |approx: &[f64]| {
        let mut max_rel = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut n = 0usize;
        for (a, e) in approx.iter().zip(exact.iter()) {
            if *e > threshold {
                let rel = (a - e).abs() / e;
                max_rel = max_rel.max(rel);
                sum_sq += rel * rel;
                n += 1;
            }
        }
        (max_rel, (sum_sq / n.max(1) as f64).sqrt())
    };

    let mut rows = Vec::new();

    let mut d = vec![0.0; exact.len()];
    case.f16.spmv_ref(&case.weights, &mut d).unwrap();
    let (max_rel, rms) = errors(&d);
    rows.push(EncodingRow {
        encoding: "binary16".into(),
        max_rel_error: max_rel,
        rms_rel_error: rms,
    });

    let bf: Csr<Bf16, u32> = case.case.matrix.convert_values();
    bf.spmv_ref(&case.weights, &mut d).unwrap();
    let (max_rel, rms) = errors(&d);
    rows.push(EncodingRow {
        encoding: "bfloat16".into(),
        max_rel_error: max_rel,
        rms_rel_error: rms,
    });

    let q = QuantizedCsr::from_csr(&case.case.matrix).expect("non-zero matrix");
    q.spmv_ref(&case.weights, &mut d).unwrap();
    let (max_rel, rms) = errors(&d);
    rows.push(EncodingRow {
        encoding: "fixed16".into(),
        max_rel_error: max_rel,
        rms_rel_error: rms,
    });

    rows
}

pub fn render_value_encoding(case_name: &str, rows: &[EncodingRow]) -> String {
    let mut t = TextTable::new(&["encoding", "max rel error", "RMS rel error"]);
    for r in rows {
        t.row(vec![
            r.encoding.clone(),
            format!("{:.2e}", r.max_rel_error),
            format!("{:.2e}", r.rms_rel_error),
        ]);
    }
    format!(
        "Ablation: 16-bit value encodings on {case_name} (all cost 2 bytes/nnz)\n\
         binary16 is the paper's choice; bfloat16 trades mantissa for range;\n\
         fixed16 concentrates error in low-dose voxels.\n\n{}",
        t.render()
    )
}

/// Reproducibility vs performance: the deterministic kernel against the
/// atomic baseline.
pub struct ReproResult {
    pub case: String,
    pub deterministic_gflops: f64,
    pub atomic_gflops: f64,
    pub deterministic_bitwise: bool,
}

pub fn reproducibility(ctx: &Context) -> Vec<ReproResult> {
    let dev = DeviceSpec::a100();
    [ctx.liver1(), ctx.prostate1()]
        .into_iter()
        .map(|c| {
            let hd = run_half_double(c, &dev, 512);
            let bl = run_baseline(c, &dev, 128);

            // Bitwise check on the deterministic kernel: two fresh runs.
            let run_once = || {
                let gpu = Gpu::new(DeviceSpec::a100());
                let gm = GpuCsrMatrix::upload(&gpu, &c.f16);
                let x = gpu.upload(&c.weights);
                let y = gpu.alloc_out::<f64>(c.f16.nrows());
                vector_csr_spmv(&gpu, &gm, &x, &y, 512);
                y.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            let deterministic_bitwise = run_once() == run_once();

            ReproResult {
                case: c.name().to_string(),
                deterministic_gflops: hd.gflops(),
                atomic_gflops: bl.gflops(),
                deterministic_bitwise,
            }
        })
        .collect()
}

pub fn render_reproducibility(rows: &[ReproResult]) -> String {
    let mut t = TextTable::new(&[
        "case",
        "deterministic GF/s",
        "atomic baseline GF/s",
        "bitwise reproducible",
    ]);
    for r in rows {
        t.row(vec![
            r.case.clone(),
            f1(r.deterministic_gflops),
            f1(r.atomic_gflops),
            r.deterministic_bitwise.to_string(),
        ]);
    }
    format!(
        "Ablation: reproducibility (§II-D) — determinism costs nothing here;\n\
         the warp-reduction kernel is both reproducible AND faster than the\n\
         atomic column-parallel port.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn index_width_saves_traffic_where_it_fits() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = index_width(&ctx);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            if let Some(u16_bytes) = r.dram_bytes_u16 {
                assert!(u16_bytes < r.dram_bytes_u32, "{}", r.case);
                assert!(r.oi_u16.unwrap() > r.oi_u32, "{}", r.case);
            }
        }
        let s = render_index_width(&rows);
        assert!(s.contains("u16"));
    }

    #[test]
    fn format_footprints_are_ordered_sanely() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = formats(ctx.liver1());
        let get = |name: &str| rows.iter().find(|r| r.format.starts_with(name)).unwrap();
        // ELLPACK explodes on heavy-tailed rows; SELL recovers.
        assert!(get("ELLPACK").bytes > get("CSR f16/u32").bytes);
        assert!(get("SELL").bytes < get("ELLPACK").bytes);
        // The RayStation format compresses better than CSR on these
        // run-structured matrices.
        assert!(get("RayStation").bytes < get("CSR f16/u32").bytes);
        let _ = render_formats("Liver 1", &rows);
    }

    #[test]
    fn vector_beats_scalar_mapping_on_long_rows() {
        // At tiny test scale only the liver case has rows long enough
        // for the thread-per-row pattern to diverge; the short-row
        // prostate case is checked at default scale by the ablation bin
        // (and the amplification mechanism itself is unit-tested in
        // rt-core::scalar_csr with synthetic long rows).
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = row_mapping(&ctx);
        let liver = rows.iter().find(|r| r.case.starts_with("Liver")).unwrap();
        assert!(
            liver.vector_gflops > liver.scalar_gflops,
            "{} vs {}",
            liver.vector_gflops,
            liver.scalar_gflops
        );
        // The scattered per-lane reads inflate on-chip transactions even
        // when the sectors stay resident.
        assert!(
            liver.scalar_l2 > 2 * liver.vector_l2,
            "scalar L2 {} vs vector {}",
            liver.scalar_l2,
            liver.vector_l2
        );
        let _ = render_row_mapping(&rows);
    }

    #[test]
    fn encodings_have_expected_error_profile() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = value_encoding(ctx.prostate1());
        let get = |name: &str| rows.iter().find(|r| r.encoding == name).unwrap();
        // binary16 (10-bit mantissa) beats bfloat16 (7-bit) on RMS.
        assert!(get("binary16").rms_rel_error < get("bfloat16").rms_rel_error);
        // All encodings stay under 5% max relative error on real doses.
        for r in &rows {
            assert!(
                r.max_rel_error < 0.05,
                "{}: {}",
                r.encoding,
                r.max_rel_error
            );
        }
        let _ = render_value_encoding("Prostate 1", &rows);
    }

    #[test]
    fn sell_kernel_is_competitive() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = sell_vs_csr(&ctx);
        for r in &rows {
            // Padding is modest thanks to sigma sorting...
            assert!(
                r.sell_padding < 1.6,
                "{}: padding {}",
                r.case,
                r.sell_padding
            );
            // ...and the kernel lands within 2x of CSR either way.
            let ratio = r.sell_gflops / r.csr_gflops;
            assert!((0.5..2.5).contains(&ratio), "{}: ratio {ratio}", r.case);
        }
        let _ = render_sell_vs_csr(&rows);
    }

    #[test]
    fn determinism_is_free() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let rows = reproducibility(&ctx);
        for r in &rows {
            assert!(r.deterministic_bitwise, "{}", r.case);
            assert!(r.deterministic_gflops > r.atomic_gflops, "{}", r.case);
        }
        let _ = render_reproducibility(&rows);
    }
}
