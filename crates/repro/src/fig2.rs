//! Figure 2 — cumulative row-length histograms for liver beam 1 and
//! prostate beam 1 (empty rows excluded), plus the summary statistics
//! the figure annotates: average non-zeros per (non-empty) row, the
//! fraction of non-empty rows shorter than a warp, and the empty-row
//! fraction (70% in both beams in the paper).

use crate::context::Context;
use crate::render::{f1, TextTable};
use rt_sparse::stats::RowStats;

/// One case's curve + annotations.
#[derive(Clone, Debug)]
pub struct Fig2Series {
    pub case: String,
    pub stats: RowStats,
    /// `(row length, fraction of non-empty rows below it)` samples.
    pub curve: Vec<(usize, f64)>,
}

pub struct Fig2 {
    pub series: Vec<Fig2Series>,
}

pub fn generate(ctx: &Context) -> Fig2 {
    let series = [ctx.liver1(), ctx.prostate1()]
        .into_iter()
        .map(|c| {
            let stats = RowStats::from_csr(&c.case.matrix);
            let curve = stats.cumulative_curve(24);
            Fig2Series {
                case: c.name().to_string(),
                stats,
                curve,
            }
        })
        .collect();
    Fig2 { series }
}

impl Fig2 {
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 2: cumulative row-length histograms (rows with length 0 excluded)\n",
        );
        for s in &self.series {
            out.push_str(&format!(
                "\n{}: empty rows {:.1}%  avg nnz/non-empty row {}  rows < 32 nnz {:.1}%  max {}\n\n",
                s.case,
                s.stats.empty_fraction() * 100.0,
                f1(s.stats.avg_nnz_nonempty),
                s.stats.frac_nonempty_below_warp * 100.0,
                s.stats.max_row_len,
            ));
            let mut t = TextTable::new(&["row length <", "% of non-empty rows", ""]);
            for &(x, frac) in &s.curve {
                let bar = "#".repeat((frac * 40.0).round() as usize);
                t.row(vec![x.to_string(), format!("{:.1}", frac * 100.0), bar]);
            }
            out.push_str(&t.render());
        }
        out.push_str(
            "\npaper reference: ~70% empty rows in both beams; 5.6% (liver) and\n\
             14.2% (prostate) of non-empty rows shorter than a warp.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn two_series_with_monotone_curves() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        assert_eq!(f.series.len(), 2);
        for s in &f.series {
            assert!(!s.curve.is_empty());
            for w in s.curve.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
            assert_eq!(s.curve.last().unwrap().1, 1.0);
        }
        let r = f.render();
        assert!(r.contains("Liver 1"));
        assert!(r.contains("Prostate 1"));
    }

    #[test]
    fn prostate_has_more_subwarp_rows_than_liver() {
        // The paper's contrast (5.6% vs 14.2%): direction must hold.
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        let liver = &f.series[0].stats;
        let prostate = &f.series[1].stats;
        assert!(
            prostate.frac_nonempty_below_warp >= liver.frac_nonempty_below_warp * 0.8,
            "liver {} prostate {}",
            liver.frac_nonempty_below_warp,
            prostate.frac_nonempty_below_warp
        );
    }
}
