//! Plain-text table rendering for the figure/table binaries.

/// A simple fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Comma-separated rendering (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats large counts like the paper ("2.97e6").
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    format!("{:.2e}", x)
}

/// Fixed two-decimal float.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Fixed one-decimal float.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(sci(2.97e6), "2.97e6");
        assert_eq!(sci(0.0), "0");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(419.96), "420.0");
    }
}
