//! Figure 7 — the Half/double kernel across GPU generations: A100,
//! V100, P100, on all six matrices. Paper findings: A100/V100 between
//! 1.5x and 2x; V100/P100 about 2.5x; ~80-88% of peak bandwidth on
//! A100/V100 but only ~41% on the P100 (unexplained in the paper;
//! modeled as an architectural derate, see `rt_gpusim::device`).

use crate::context::Context;
use crate::render::{f1, TextTable};
use crate::runner::{run_half_double, Measured};
use rt_gpusim::DeviceSpec;

pub struct Fig7Case {
    pub case: String,
    pub a100: Measured,
    pub v100: Measured,
    pub p100: Measured,
}

pub struct Fig7 {
    pub cases: Vec<Fig7Case>,
}

pub fn generate(ctx: &Context) -> Fig7 {
    let cases = ctx
        .cases
        .iter()
        .map(|c| Fig7Case {
            case: c.name().to_string(),
            a100: run_half_double(c, &DeviceSpec::a100(), 512),
            v100: run_half_double(c, &DeviceSpec::v100(), 512),
            p100: run_half_double(c, &DeviceSpec::p100(), 512),
        })
        .collect();
    Fig7 { cases }
}

impl Fig7 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "case",
            "A100 GF/s",
            "V100 GF/s",
            "P100 GF/s",
            "A100 BW GB/s",
            "V100 BW",
            "P100 BW",
            "A100/V100",
            "V100/P100",
        ]);
        for c in &self.cases {
            t.row(vec![
                c.case.clone(),
                f1(c.a100.gflops()),
                f1(c.v100.gflops()),
                f1(c.p100.gflops()),
                f1(c.a100.bandwidth_gbps()),
                f1(c.v100.bandwidth_gbps()),
                f1(c.p100.bandwidth_gbps()),
                format!("{:.2}x", c.a100.gflops() / c.v100.gflops()),
                format!("{:.2}x", c.v100.gflops() / c.p100.gflops()),
            ]);
        }
        format!(
            "Figure 7: Half/double across A100 / V100 / P100\n\
             paper: A100/V100 1.5-2x; V100/P100 ~2.5x; ~80-88% of peak BW on\n\
             A100/V100 vs ~41% on P100.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn generation_ratios_match_paper() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        for c in &f.cases {
            let av = c.a100.gflops() / c.v100.gflops();
            let vp = c.v100.gflops() / c.p100.gflops();
            assert!((1.3..=2.2).contains(&av), "{}: A/V {av}", c.case);
            assert!((1.8..=3.2).contains(&vp), "{}: V/P {vp}", c.case);
        }
        // P100 bandwidth fraction anomaly on the liver cases (the large,
        // well-saturating ones).
        let liver = &f.cases[0];
        assert!(
            liver.p100.estimate.frac_peak_bw < 0.55,
            "P100 frac {}",
            liver.p100.estimate.frac_peak_bw
        );
        assert!(
            liver.a100.estimate.frac_peak_bw > 0.6,
            "A100 frac {}",
            liver.a100.estimate.frac_peak_bw
        );
    }
}
