//! Kernel measurement: run on the simulator, extrapolate, time.
//!
//! Measurement protocol (mirrors the paper's 10000-repetition averages):
//! one warm-up launch populates the L2 with whatever survives steady
//! state (the input vector; the streamed matrix does not fit), the
//! second launch is measured.
//!
//! Extrapolation to the clinical Table I problem happens per counter
//! class, because they scale along different axes:
//!
//! * traffic, flops and atomics are non-zero-proportional — scaled by
//!   the nnz ratio [`rt_dose::DoseCase::extrapolation`];
//! * warp and block counts follow the kernel's work decomposition —
//!   rows for the row-parallel kernels, segments (~nnz) for the
//!   segment-parallel baseline.
//!
//! The simulated L2 is sized so the clinical capacity *relations*
//! survive the geometric scale-down: the input vector (and, on the
//! A100, the output vector) stays resident while the matrix streams —
//! `clamp(L2 / extrapolation, 1.25 * (x + y), matrix / 2)`.

use crate::context::PreparedCase;
use rt_core::{
    cusparse_csr_spmv, ginkgo_csr_spmv, profile_baseline, profile_cusparse, profile_ginkgo,
    profile_half_double, profile_scalar, profile_single, rs_baseline_gpu_spmv, scalar_csr_spmv,
    vector_csr_spmv, GpuCsrMatrix, GpuRsMatrix, RsCpu,
};
use rt_gpusim::timing::estimate;
use rt_gpusim::{CpuSpec, DeviceSpec, ExecMode, Gpu, KernelProfile, KernelStats, TimeEstimate};

/// Which axis a kernel's warp count follows.
#[derive(Clone, Copy, Debug)]
enum WorkScale {
    /// Warp count proportional to matrix rows (warp/thread-per-row).
    Rows,
    /// Warp count proportional to non-zeros (segment-parallel baseline).
    Nnz,
}

/// One measured kernel/case/device combination.
#[derive(Clone, Debug)]
pub struct Measured {
    pub kernel: String,
    pub case: String,
    pub device: String,
    /// Raw counters at simulation scale.
    pub raw: KernelStats,
    /// Counters extrapolated to the clinical problem size.
    pub scaled: KernelStats,
    pub estimate: TimeEstimate,
    pub profile: KernelProfile,
}

impl Measured {
    fn build(
        kernel: &str,
        case: &PreparedCase,
        device: &DeviceSpec,
        profile: KernelProfile,
        raw: KernelStats,
        work: WorkScale,
    ) -> Self {
        let nnz_factor = case.case.extrapolation();
        let mut scaled = raw.scale(nnz_factor);
        let warp_factor = match work {
            WorkScale::Rows => case.case.paper.rows / case.case.matrix.nrows() as f64,
            WorkScale::Nnz => nnz_factor,
        };
        scaled.warps = (raw.warps as f64 * warp_factor).round() as u64;
        scaled.blocks = (raw.blocks as f64 * warp_factor).round().max(1.0) as u64;
        let est = estimate(device, &profile, &scaled);
        Measured {
            kernel: kernel.to_string(),
            case: case.name().to_string(),
            device: device.name.to_string(),
            raw,
            scaled,
            estimate: est,
            profile,
        }
    }

    pub fn gflops(&self) -> f64 {
        self.estimate.gflops
    }

    pub fn bandwidth_gbps(&self) -> f64 {
        self.estimate.dram_bw_gbps
    }

    /// Operational intensity from the measured counters (scale-free).
    pub fn oi(&self) -> f64 {
        self.raw.operational_intensity()
    }
}

/// Builds a simulated GPU whose L2 preserves the clinical capacity
/// relations for this case (see module docs).
pub fn sim_gpu(case: &PreparedCase, device: &DeviceSpec) -> Gpu {
    let x_bytes = 8 * case.case.matrix.ncols();
    let y_bytes = 8 * case.case.matrix.nrows();
    let matrix_bytes = 6 * case.case.matrix.nnz();
    let ideal = device.l2_bytes as f64 / case.case.extrapolation();
    let lo = (1.25 * (x_bytes + y_bytes) as f64).max(4096.0);
    let hi = (matrix_bytes as f64 / 2.0).max(lo + 1.0);
    let l2 = ideal.clamp(lo, hi) as usize;
    Gpu::with_mode(device.with_l2_bytes(l2), ExecMode::Parallel)
}

/// The Half/double kernel (the paper's contribution).
pub fn run_half_double(case: &PreparedCase, device: &DeviceSpec, tpb: u32) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuCsrMatrix::upload(&gpu, &case.f16);
    let x = gpu.upload(&case.weights);
    let y = gpu.alloc_out::<f64>(case.f16.nrows());
    vector_csr_spmv(&gpu, &m, &x, &y, tpb); // warm-up
    let raw = vector_csr_spmv(&gpu, &m, &x, &y, tpb);
    Measured::build(
        "Half/double",
        case,
        device,
        profile_half_double(),
        raw,
        WorkScale::Rows,
    )
}

/// The Single kernel (pure f32).
pub fn run_single(case: &PreparedCase, device: &DeviceSpec, tpb: u32) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuCsrMatrix::upload(&gpu, &case.f32);
    let w32: Vec<f32> = case.weights.iter().map(|&w| w as f32).collect();
    let x = gpu.upload(&w32);
    let y = gpu.alloc_out::<f32>(case.f32.nrows());
    vector_csr_spmv(&gpu, &m, &x, &y, tpb);
    let raw = vector_csr_spmv(&gpu, &m, &x, &y, tpb);
    Measured::build(
        "Single",
        case,
        device,
        profile_single(),
        raw,
        WorkScale::Rows,
    )
}

/// The GPU Baseline (RayStation port with atomics, segment-parallel).
pub fn run_baseline(case: &PreparedCase, device: &DeviceSpec, tpb: u32) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuRsMatrix::upload(&gpu, &case.rs);
    let x = gpu.upload(&case.weights);
    let y = gpu.alloc_out::<f64>(case.rs.nrows());
    rs_baseline_gpu_spmv(&gpu, &m, &x, &y, tpb);
    y.clear();
    let raw = rs_baseline_gpu_spmv(&gpu, &m, &x, &y, tpb);
    Measured::build(
        "GPU Baseline",
        case,
        device,
        profile_baseline(),
        raw,
        WorkScale::Nnz,
    )
}

/// The scalar (thread-per-row) ablation kernel.
pub fn run_scalar(case: &PreparedCase, device: &DeviceSpec, tpb: u32) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuCsrMatrix::upload(&gpu, &case.f16);
    let x = gpu.upload(&case.weights);
    let y = gpu.alloc_out::<f64>(case.f16.nrows());
    scalar_csr_spmv(&gpu, &m, &x, &y, tpb);
    let raw = scalar_csr_spmv(&gpu, &m, &x, &y, tpb);
    Measured::build(
        "Scalar CSR",
        case,
        device,
        profile_scalar(),
        raw,
        WorkScale::Rows,
    )
}

/// cuSPARSE stand-in (single precision).
pub fn run_cusparse(case: &PreparedCase, device: &DeviceSpec) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuCsrMatrix::upload(&gpu, &case.f32);
    let w32: Vec<f32> = case.weights.iter().map(|&w| w as f32).collect();
    let x = gpu.upload(&w32);
    let y = gpu.alloc_out::<f32>(case.f32.nrows());
    cusparse_csr_spmv(&gpu, &m, &x, &y);
    let raw = cusparse_csr_spmv(&gpu, &m, &x, &y);
    Measured::build(
        "cuSPARSE",
        case,
        device,
        profile_cusparse(),
        raw,
        WorkScale::Rows,
    )
}

/// Ginkgo stand-in (single precision, classical kernel).
pub fn run_ginkgo(case: &PreparedCase, device: &DeviceSpec) -> Measured {
    let gpu = sim_gpu(case, device);
    let m = GpuCsrMatrix::upload(&gpu, &case.f32);
    let w32: Vec<f32> = case.weights.iter().map(|&w| w as f32).collect();
    let x = gpu.upload(&w32);
    let y = gpu.alloc_out::<f32>(case.f32.nrows());
    ginkgo_csr_spmv(&gpu, &m, &x, &y);
    let raw = ginkgo_csr_spmv(&gpu, &m, &x, &y);
    Measured::build(
        "Ginkgo",
        case,
        device,
        profile_ginkgo(),
        raw,
        WorkScale::Rows,
    )
}

/// The RayStation CPU row (analytic traffic model on the i9-7940X).
pub fn run_cpu_model(case: &PreparedCase) -> (String, TimeEstimate) {
    let cpu = CpuSpec::i9_7940x();
    let engine = RsCpu::with_threads(cpu.cores as usize);
    // Scale the analytic traffic to clinical size: traffic is linear in
    // nnz/rows, both of which scale by the extrapolation factor. The
    // scratch-spill decision must be taken at *clinical* proportions, so
    // the LLC is scaled down by the same factor the matrix was (at full
    // scale the 14 scratch arrays are ~330 MB against a 19 MB LLC and
    // always spill).
    let extrap = case.case.extrapolation();
    let traffic =
        engine.traffic_model_bytes(&case.rs, (cpu.llc_bytes as f64 / extrap) as usize) * extrap;
    let flops = 2.0 * case.case.paper.nnz;
    (cpu.name.to_string(), cpu.estimate(traffic, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn all_runners_execute_on_tiny_cases() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let dev = DeviceSpec::a100();
        let c = ctx.prostate1();
        let hd = run_half_double(c, &dev, 512);
        let sg = run_single(c, &dev, 512);
        let bl = run_baseline(c, &dev, 128);
        let gk = run_ginkgo(c, &dev);
        let cs = run_cusparse(c, &dev);
        let sc = run_scalar(c, &dev, 256);
        for m in [&hd, &sg, &bl, &gk, &cs, &sc] {
            assert!(m.gflops() > 0.0, "{}: {:?}", m.kernel, m.estimate);
            assert_eq!(m.raw.flops, 2 * c.f16.nnz() as u64, "{}", m.kernel);
        }
        // Half/double has higher OI than Single (the §V argument).
        assert!(hd.oi() > sg.oi(), "hd {} vs single {}", hd.oi(), sg.oi());
        // Baseline burns atomics.
        assert_eq!(bl.raw.atomic_ops, c.f16.nnz() as u64);

        let (name, cpu) = run_cpu_model(c);
        assert_eq!(name, "i9-7940X");
        assert!(cpu.gflops < hd.gflops());
    }

    #[test]
    fn warp_extrapolation_follows_the_right_axis() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let dev = DeviceSpec::a100();
        let c = ctx.liver1();
        let hd = run_half_double(c, &dev, 512);
        // Row-parallel: scaled warps ~ clinical row count.
        let rows_paper = c.case.paper.rows;
        let ratio = hd.scaled.warps as f64 / rows_paper;
        assert!(
            (0.9..1.2).contains(&ratio),
            "warps {} vs rows {rows_paper}",
            hd.scaled.warps
        );
    }

    #[test]
    fn sim_l2_keeps_vectors_resident() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let dev = DeviceSpec::a100();
        let c = ctx.liver1();
        let gpu = sim_gpu(c, &dev);
        let vectors = 8 * (c.case.matrix.ncols() + c.case.matrix.nrows());
        assert!(
            gpu.spec().l2_bytes >= vectors,
            "L2 {} vs vectors {vectors}",
            gpu.spec().l2_bytes
        );
        assert!(
            gpu.spec().l2_bytes < 6 * c.case.matrix.nnz(),
            "matrix must stream"
        );
    }
}
