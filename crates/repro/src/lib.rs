//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — dose deposition matrix characteristics |
//! | [`fig1`] | Figure 1 — beam's-eye-view spot-scanning illustration |
//! | [`fig2`] | Figure 2 — cumulative row-length histograms |
//! | [`fig3`] | Figure 3 — A100 roofline (Ginkgo, cuSPARSE, Single, Half/double) |
//! | [`fig4`] | Figure 4 — threads-per-block sweep on liver beam 1 |
//! | [`fig5`] | Figure 5 — GFLOP/s + bandwidth, all kernels, all cases, + CPU |
//! | [`fig6`] | Figure 6 — single-precision library comparison |
//! | [`fig7`] | Figure 7 — Half/double across A100 / V100 / P100 |
//! | [`speedups`] | §V/§VII headline claims: 3-4x vs GPU baseline, 17x / 46x vs CPU |
//! | [`ablations`] | design-choice ablations (index width, formats, row mapping, value encodings, reproducibility cost) |
//!
//! Experiments run on generated matrices at simulation scale; extensive
//! counters are extrapolated to the clinical Table I sizes (and the
//! simulated L2 shrunk by the same factor) before the timing model is
//! applied — see DESIGN.md §4 and `rt_dose::cases`. Every experiment
//! returns typed rows plus a text rendering; the `rt-bench` binaries
//! print them and EXPERIMENTS.md records paper-vs-measured.

pub mod ablations;
pub mod context;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod render;
pub mod runner;
pub mod speedups;
pub mod table1;
pub mod traffic;

pub use context::Context;
pub use runner::Measured;
