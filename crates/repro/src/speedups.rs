//! The paper's headline speedup claims (§V, §VII):
//!
//! * Half/double vs GPU Baseline: up to 4x, average ~3x;
//! * GPU Baseline (RayStation port) vs RayStation CPU: ~17x;
//! * Half/double vs RayStation CPU: ~46x;
//! * Half/double peak: 420 GFLOP/s (~8% of A100 fp64 peak... the paper
//!   says 8%; 420/9700 = 4.3% — we report the computed value).

use crate::context::Context;
use crate::render::{f2, TextTable};
use crate::runner::{run_baseline, run_cpu_model, run_half_double};
use rt_gpusim::DeviceSpec;

#[derive(Clone, Debug)]
pub struct SpeedupRow {
    pub case: String,
    pub half_double_gflops: f64,
    pub baseline_gflops: f64,
    pub cpu_gflops: f64,
    pub hd_vs_baseline: f64,
    pub baseline_vs_cpu: f64,
    pub hd_vs_cpu: f64,
}

pub struct Speedups {
    pub rows: Vec<SpeedupRow>,
}

pub fn generate(ctx: &Context) -> Speedups {
    let dev = DeviceSpec::a100();
    let rows = ctx
        .cases
        .iter()
        .map(|c| {
            let hd = run_half_double(c, &dev, 512);
            let bl = run_baseline(c, &dev, 128);
            let cpu = run_cpu_model(c).1;
            SpeedupRow {
                case: c.name().to_string(),
                half_double_gflops: hd.gflops(),
                baseline_gflops: bl.gflops(),
                cpu_gflops: cpu.gflops,
                hd_vs_baseline: hd.gflops() / bl.gflops(),
                baseline_vs_cpu: bl.gflops() / cpu.gflops,
                hd_vs_cpu: hd.gflops() / cpu.gflops,
            }
        })
        .collect();
    Speedups { rows }
}

impl Speedups {
    pub fn avg_hd_vs_baseline(&self) -> f64 {
        self.rows.iter().map(|r| r.hd_vs_baseline).sum::<f64>() / self.rows.len() as f64
    }

    pub fn max_hd_vs_baseline(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.hd_vs_baseline)
            .fold(0.0, f64::max)
    }

    pub fn avg_baseline_vs_cpu(&self) -> f64 {
        self.rows.iter().map(|r| r.baseline_vs_cpu).sum::<f64>() / self.rows.len() as f64
    }

    pub fn avg_hd_vs_cpu(&self) -> f64 {
        self.rows.iter().map(|r| r.hd_vs_cpu).sum::<f64>() / self.rows.len() as f64
    }

    pub fn peak_gflops(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.half_double_gflops)
            .fold(0.0, f64::max)
    }

    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "case",
            "H/D GF/s",
            "Baseline GF/s",
            "CPU GF/s",
            "H/D vs Baseline",
            "Baseline vs CPU",
            "H/D vs CPU",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.case.clone(),
                f2(r.half_double_gflops),
                f2(r.baseline_gflops),
                f2(r.cpu_gflops),
                format!("{:.2}x", r.hd_vs_baseline),
                format!("{:.1}x", r.baseline_vs_cpu),
                format!("{:.1}x", r.hd_vs_cpu),
            ]);
        }
        format!(
            "Headline speedups (paper: <=4x / avg ~3x vs baseline; ~17x baseline \
             vs CPU; ~46x H/D vs CPU; 420 GF/s peak)\n\n{}\n\
             averages: H/D vs Baseline {:.2}x (max {:.2}x); Baseline vs CPU {:.1}x; \
             H/D vs CPU {:.1}x; peak H/D {:.0} GF/s\n",
            t.render(),
            self.avg_hd_vs_baseline(),
            self.max_hd_vs_baseline(),
            self.avg_baseline_vs_cpu(),
            self.avg_hd_vs_cpu(),
            self.peak_gflops(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn headline_claims_hold_in_shape() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let s = generate(&ctx);
        assert_eq!(s.rows.len(), 6);
        // Up-to-4x band (ours may land 2x-6x; shape = "several times").
        assert!(
            (1.2..8.0).contains(&s.avg_hd_vs_baseline()),
            "avg vs baseline {}",
            s.avg_hd_vs_baseline()
        );
        assert!(s.max_hd_vs_baseline() >= s.avg_hd_vs_baseline());
        // GPU port is an order of magnitude over the CPU; H/D more.
        assert!(s.avg_baseline_vs_cpu() > 4.0, "{}", s.avg_baseline_vs_cpu());
        assert!(s.avg_hd_vs_cpu() > s.avg_baseline_vs_cpu());
        let r = s.render();
        assert!(r.contains("H/D vs CPU"));
    }
}
