//! Figure 5 — GFLOP/s (bars) and DRAM bandwidth (lines) for the GPU
//! Baseline, Half/double and Single kernels on all six matrices, plus
//! the RayStation CPU implementation, on the A100. The headline claims:
//! Half/double up to 4x (avg ~3x) over the baseline; ~80-87% of peak
//! bandwidth on liver, ~68% on prostate; CPU far below everything.

use crate::context::Context;
use crate::render::{f1, TextTable};
use crate::runner::{run_baseline, run_cpu_model, run_half_double, run_single, Measured};
use rt_gpusim::{DeviceSpec, TimeEstimate};

pub struct Fig5Case {
    pub case: String,
    pub baseline: Measured,
    pub half_double: Measured,
    pub single: Measured,
    pub cpu: TimeEstimate,
}

pub struct Fig5 {
    pub cases: Vec<Fig5Case>,
}

pub fn generate(ctx: &Context) -> Fig5 {
    let dev = DeviceSpec::a100();
    let cases = ctx
        .cases
        .iter()
        .map(|c| Fig5Case {
            case: c.name().to_string(),
            baseline: run_baseline(c, &dev, 128),
            half_double: run_half_double(c, &dev, 512),
            single: run_single(c, &dev, 512),
            cpu: run_cpu_model(c).1,
        })
        .collect();
    Fig5 { cases }
}

impl Fig5 {
    /// Speedup of Half/double over the GPU baseline, per case.
    pub fn speedups_vs_baseline(&self) -> Vec<(String, f64)> {
        self.cases
            .iter()
            .map(|c| (c.case.clone(), c.half_double.gflops() / c.baseline.gflops()))
            .collect()
    }

    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "case",
            "Baseline GF/s",
            "Half/double GF/s",
            "Single GF/s",
            "CPU GF/s",
            "Baseline BW",
            "H/D BW GB/s",
            "Single BW",
            "H/D %peak",
        ]);
        for c in &self.cases {
            t.row(vec![
                c.case.clone(),
                f1(c.baseline.gflops()),
                f1(c.half_double.gflops()),
                f1(c.single.gflops()),
                f1(c.cpu.gflops),
                f1(c.baseline.bandwidth_gbps()),
                f1(c.half_double.bandwidth_gbps()),
                f1(c.single.bandwidth_gbps()),
                format!("{:.0}%", c.half_double.estimate.frac_peak_bw * 100.0),
            ]);
        }
        let speedups = self.speedups_vs_baseline();
        let avg: f64 = speedups.iter().map(|s| s.1).sum::<f64>() / speedups.len() as f64;
        let max = speedups.iter().map(|s| s.1).fold(0.0, f64::max);
        format!(
            "Figure 5: kernel performance on the A100 + RayStation CPU reference\n\
             paper: up to 4x vs baseline (avg ~3x); 420 GF/s peak Half/double;\n\
             80-87% of peak BW on liver, ~68% on prostate.\n\n{}\n\
             Half/double vs GPU Baseline: avg {avg:.2}x, max {max:.2}x\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn ordering_matches_paper() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        assert_eq!(f.cases.len(), 6);
        for c in &f.cases {
            // Half/double beats Single beats Baseline; all beat the CPU.
            assert!(
                c.half_double.gflops() > c.single.gflops(),
                "{}: H/D {} vs Single {}",
                c.case,
                c.half_double.gflops(),
                c.single.gflops()
            );
            assert!(
                c.single.gflops() > c.baseline.gflops(),
                "{}: Single {} vs Baseline {}",
                c.case,
                c.single.gflops(),
                c.baseline.gflops()
            );
            assert!(c.baseline.gflops() > c.cpu.gflops, "{}", c.case);
        }
        // Speedup vs baseline lands in the paper's 2x-5x band.
        for (case, s) in f.speedups_vs_baseline() {
            assert!((1.2..8.0).contains(&s), "{case}: speedup {s}");
        }
    }

    #[test]
    fn liver_bandwidth_exceeds_prostate() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        let liver_bw = f.cases[0].half_double.estimate.frac_peak_bw;
        let prostate_bw = f.cases[4].half_double.estimate.frac_peak_bw;
        assert!(
            liver_bw > prostate_bw,
            "liver {liver_bw} vs prostate {prostate_bw}"
        );
    }
}
