//! Figure 4 — execution-configuration sweep: performance of the
//! Half/double, Single and GPU Baseline kernels on liver beam 1 for
//! 32–1024 threads per block. The paper picks 512 for Half/double and
//! Single (best) and 128 for the baseline.

use crate::context::Context;
use crate::render::{f1, TextTable};
use crate::runner::{run_baseline, run_half_double, run_single, Measured};
use rt_gpusim::DeviceSpec;

pub const TPB_SWEEP: [u32; 6] = [32, 64, 128, 256, 512, 1024];

pub struct Fig4 {
    /// `(kernel, tpb) -> measurement`, in sweep order per kernel.
    pub series: Vec<(String, Vec<Measured>)>,
}

pub fn generate(ctx: &Context) -> Fig4 {
    let dev = DeviceSpec::a100();
    let case = ctx.liver1();
    let series = vec![
        (
            "Half/double".to_string(),
            TPB_SWEEP
                .iter()
                .map(|&tpb| run_half_double(case, &dev, tpb))
                .collect(),
        ),
        (
            "Single".to_string(),
            TPB_SWEEP
                .iter()
                .map(|&tpb| run_single(case, &dev, tpb))
                .collect(),
        ),
        (
            "GPU Baseline".to_string(),
            TPB_SWEEP
                .iter()
                .map(|&tpb| run_baseline(case, &dev, tpb))
                .collect(),
        ),
    ];
    Fig4 { series }
}

impl Fig4 {
    /// Best threads-per-block per kernel.
    pub fn best(&self) -> Vec<(String, u32)> {
        self.series
            .iter()
            .map(|(name, runs)| {
                let best = runs
                    .iter()
                    .zip(TPB_SWEEP.iter())
                    .max_by(|a, b| a.0.gflops().total_cmp(&b.0.gflops()))
                    .unwrap();
                (name.clone(), *best.1)
            })
            .collect()
    }

    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "threads/block",
            "Half/double GF/s",
            "Single GF/s",
            "Baseline GF/s",
        ]);
        for (i, &tpb) in TPB_SWEEP.iter().enumerate() {
            t.row(vec![
                tpb.to_string(),
                f1(self.series[0].1[i].gflops()),
                f1(self.series[1].1[i].gflops()),
                f1(self.series[2].1[i].gflops()),
            ]);
        }
        let best = self
            .best()
            .into_iter()
            .map(|(k, tpb)| format!("{k}: {tpb}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "Figure 4: threads-per-block sweep on liver beam 1 (A100)\n\
             paper: 512 best for Half/double and Single; 64-128 best for Baseline.\n\n{}\nbest: {}\n",
            t.render(),
            best
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn sweep_shape_matches_paper() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        let hd = &f.series[0].1;
        // 32 tpb is clearly the worst for Half/double (occupancy).
        let g32 = hd[0].gflops();
        let g512 = hd[4].gflops();
        assert!(g32 < g512, "32: {g32} vs 512: {g512}");
        // 512 is at least as good as 1024.
        assert!(hd[5].gflops() <= g512 * 1.02);
        // The best configuration for Half/double is 256 or 512.
        let best = f.best();
        assert!(
            [256, 512].contains(&best[0].1),
            "Half/double best tpb {}",
            best[0].1
        );
        let r = f.render();
        assert!(r.contains("threads-per-block"));
    }
}
