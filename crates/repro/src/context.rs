//! Shared experiment context: generated cases and their derived
//! device-format matrices, built once per process.

use rt_dose::cases::{all_cases, DoseCase, ScaleConfig};
use rt_f16::F16;
use rt_sparse::{Csr, RsCompressed};

/// One case with every matrix representation the experiments need.
pub struct PreparedCase {
    pub case: DoseCase,
    /// Half-precision CSR (the Half/double kernel's format).
    pub f16: Csr<F16, u32>,
    /// Single-precision CSR (the Single / library comparison format).
    pub f32: Csr<f32, u32>,
    /// RayStation-style compressed format (baseline kernels).
    pub rs: RsCompressed<F16>,
    /// All-ones spot weights (values do not affect traffic).
    pub weights: Vec<f64>,
}

impl PreparedCase {
    /// Prepares all matrix representations for one case.
    pub fn new(case: DoseCase) -> Self {
        let f16: Csr<F16, u32> = case.matrix.convert_values();
        let f32: Csr<f32, u32> = case.matrix.convert_values();
        let rs = RsCompressed::from_csr(&f16);
        let weights = vec![1.0; case.matrix.ncols()];
        PreparedCase {
            case,
            f16,
            f32,
            rs,
            weights,
        }
    }

    pub fn name(&self) -> &str {
        &self.case.name
    }

    pub fn is_liver(&self) -> bool {
        self.case.name.starts_with("Liver")
    }
}

/// All six Table I beams, prepared.
pub struct Context {
    pub cases: Vec<PreparedCase>,
    pub scale: ScaleConfig,
}

impl Context {
    /// Generates at the given scale (`ScaleConfig::default()` for the
    /// reported experiments, `ScaleConfig::tiny()` for tests).
    pub fn generate(scale: ScaleConfig) -> Self {
        let cases = all_cases(scale)
            .into_iter()
            .map(PreparedCase::new)
            .collect();
        Context { cases, scale }
    }

    /// Scale taken from the `RT_SHRINK` environment variable (default:
    /// the full simulation scale). Setting e.g. `RT_SHRINK=8` runs the
    /// figure binaries ~8x faster on ~8x smaller matrices.
    pub fn from_env() -> Self {
        let shrink = std::env::var("RT_SHRINK")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
            .max(1.0);
        Context::generate(ScaleConfig { shrink })
    }

    /// The six cases in Table I order.
    pub fn by_name(&self, name: &str) -> &PreparedCase {
        self.cases
            .iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("no case named {name}"))
    }

    pub fn liver1(&self) -> &PreparedCase {
        self.by_name("Liver 1")
    }

    pub fn prostate1(&self) -> &PreparedCase {
        self.by_name("Prostate 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_prepares_all_formats() {
        let ctx = Context::generate(ScaleConfig::tiny());
        assert_eq!(ctx.cases.len(), 6);
        let c = ctx.liver1();
        assert_eq!(c.f16.nnz(), c.case.matrix.nnz());
        assert_eq!(c.rs.nnz(), c.case.matrix.nnz());
        assert_eq!(c.weights.len(), c.case.matrix.ncols());
        assert!(ctx.prostate1().name().starts_with("Prostate"));
        assert!(ctx.liver1().is_liver());
        assert!(!ctx.prostate1().is_liver());
    }
}
