//! Table I — characteristics of the dose deposition matrices.

use crate::context::Context;
use crate::render::{f2, sci, TextTable};
use rt_sparse::stats::MatrixSummary;

/// One generated row next to its paper reference.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub generated: MatrixSummary,
    pub paper: rt_dose::cases::PaperRow,
    pub extrapolation: f64,
}

/// The full table.
pub struct Table1 {
    pub rows: Vec<Table1Row>,
}

pub fn generate(ctx: &Context) -> Table1 {
    let rows = ctx
        .cases
        .iter()
        .map(|c| Table1Row {
            generated: MatrixSummary::from_csr(c.name(), &c.case.matrix),
            paper: c.case.paper,
            extrapolation: c.case.extrapolation(),
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "beam no.",
            "rows",
            "cols",
            "non-zeros",
            "nz ratio",
            "size (GB)",
            "paper nnz",
            "paper ratio",
            "extrap",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.generated.name.clone(),
                sci(r.generated.rows as f64),
                sci(r.generated.cols as f64),
                sci(r.generated.nnz as f64),
                format!("{:.2}%", r.generated.nonzero_ratio_pct),
                format!("{:.4}", r.generated.size_gb),
                sci(r.paper.nnz),
                format!("{:.2}%", r.paper.nonzero_ratio_pct),
                f2(r.extrapolation),
            ]);
        }
        format!(
            "Table I: dose deposition matrix characteristics (generated at \
             simulation scale; 'extrap' = clinical/simulated nnz ratio)\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn table_has_six_rows_in_order() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let t = generate(&ctx);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0].generated.name, "Liver 1");
        assert_eq!(t.rows[5].generated.name, "Prostate 2");
        let s = t.render();
        assert!(s.contains("Liver 4"));
        assert!(s.contains("Prostate 1"));
    }

    #[test]
    fn shapes_follow_paper_ordering() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let t = generate(&ctx);
        // Liver matrices are bigger than prostate ones in every respect.
        let liver = &t.rows[0].generated;
        let prostate = &t.rows[4].generated;
        assert!(liver.rows > prostate.rows);
        assert!(liver.cols > prostate.cols);
        assert!(liver.nnz > prostate.nnz);
    }
}
