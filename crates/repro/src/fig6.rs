//! Figure 6 — single-precision comparison on the A100: our Single
//! kernel vs cuSPARSE vs Ginkgo on all six matrices. Paper findings:
//! ours matches or beats both; cuSPARSE beats Ginkgo on the liver cases
//! but loses on the prostate cases.

use crate::context::Context;
use crate::render::{f1, TextTable};
use crate::runner::{run_cusparse, run_ginkgo, run_single, Measured};
use rt_gpusim::DeviceSpec;

pub struct Fig6Case {
    pub case: String,
    pub ours: Measured,
    pub cusparse: Measured,
    pub ginkgo: Measured,
}

pub struct Fig6 {
    pub cases: Vec<Fig6Case>,
}

pub fn generate(ctx: &Context) -> Fig6 {
    let dev = DeviceSpec::a100();
    let cases = ctx
        .cases
        .iter()
        .map(|c| Fig6Case {
            case: c.name().to_string(),
            ours: run_single(c, &dev, 512),
            cusparse: run_cusparse(c, &dev),
            ginkgo: run_ginkgo(c, &dev),
        })
        .collect();
    Fig6 { cases }
}

impl Fig6 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "case",
            "Ours GF/s",
            "cuSPARSE GF/s",
            "Ginkgo GF/s",
            "Ours BW GB/s",
            "cuSPARSE BW",
            "Ginkgo BW",
        ]);
        for c in &self.cases {
            t.row(vec![
                c.case.clone(),
                f1(c.ours.gflops()),
                f1(c.cusparse.gflops()),
                f1(c.ginkgo.gflops()),
                f1(c.ours.bandwidth_gbps()),
                f1(c.cusparse.bandwidth_gbps()),
                f1(c.ginkgo.bandwidth_gbps()),
            ]);
        }
        format!(
            "Figure 6: single-precision comparison on the A100\n\
             paper: ours >= both libraries; cuSPARSE > Ginkgo on liver, < on prostate.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn library_ordering_matches_paper() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        for c in &f.cases {
            // Ours matches or beats both libraries (small tolerance: the
            // paper says "comparable or better").
            assert!(
                c.ours.gflops() >= 0.97 * c.cusparse.gflops(),
                "{}: ours {} vs cuSPARSE {}",
                c.case,
                c.ours.gflops(),
                c.cusparse.gflops()
            );
            // At tiny test scale, short rows hand Ginkgo's sub-warp
            // kernel an advantage that disappears at clinical row
            // lengths; the default-scale bin checks the strict claim.
            assert!(
                c.ours.gflops() >= 0.80 * c.ginkgo.gflops(),
                "{}: ours {} vs Ginkgo {}",
                c.case,
                c.ours.gflops(),
                c.ginkgo.gflops()
            );
        }
        // The crossover: cuSPARSE wins the liver cases, Ginkgo the
        // prostate cases. At tiny test scale the short-row Y-beam liver
        // cases (2 and 4) sit on the crossover, so the strict check
        // applies to the long-row beams; the default-scale bin checks
        // all four.
        for c in &f.cases {
            if c.case == "Liver 1" || c.case == "Liver 3" {
                assert!(
                    c.cusparse.gflops() > c.ginkgo.gflops(),
                    "{}: cuSPARSE {} vs Ginkgo {}",
                    c.case,
                    c.cusparse.gflops(),
                    c.ginkgo.gflops()
                );
            } else if c.case.starts_with("Liver") {
                assert!(
                    c.cusparse.gflops() > 0.9 * c.ginkgo.gflops(),
                    "{}: cuSPARSE {} vs Ginkgo {}",
                    c.case,
                    c.cusparse.gflops(),
                    c.ginkgo.gflops()
                );
            } else {
                assert!(
                    c.ginkgo.gflops() > c.cusparse.gflops(),
                    "{}: Ginkgo {} vs cuSPARSE {}",
                    c.case,
                    c.ginkgo.gflops(),
                    c.cusparse.gflops()
                );
            }
        }
    }
}
