//! Figure 1 — the spot-scanning illustration: the beam's eye view of
//! one energy layer, with the target outline, the spot positions, and
//! the serpentine scan order. (The paper's figure is a RayStation
//! screenshot; ours is an ASCII rendering of the same construction from
//! the generated beam.)

use crate::context::Context;
use rt_dose::BeamAxis;

pub struct Fig1 {
    pub case: String,
    pub layer_range_mm: f64,
    pub nspots_layer: usize,
    pub nspots_total: usize,
    pub canvas: String,
}

pub fn generate(ctx: &Context) -> Fig1 {
    let prepared = ctx.liver1();
    // Rebuild the beam geometry the case generator used for beam 1.
    let phantom = rt_dose::cases::liver_phantom(ctx.scale);
    let beam = rt_dose::Beam::covering_target(
        &phantom,
        BeamAxis::XPlus,
        rt_dose::cases::liver_spot_config(ctx.scale),
    );

    // Pick the middle energy layer.
    let mut ranges: Vec<f64> = beam.spots.iter().map(|s| s.range_mm).collect();
    ranges.sort_by(f64::total_cmp);
    ranges.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let layer = ranges[ranges.len() / 2];
    let layer_spots: Vec<(f64, f64, usize)> = beam
        .spots
        .iter()
        .enumerate()
        .filter(|(_, s)| (s.range_mm - layer).abs() < 1e-9)
        .map(|(i, s)| (s.u_mm, s.v_mm, i))
        .collect();

    // Canvas in beam's-eye-view coordinates (u horizontal, v vertical).
    let (u_lo, u_hi) = layer_spots
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), s| {
            (lo.min(s.0), hi.max(s.0))
        });
    let (v_lo, v_hi) = layer_spots
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), s| {
            (lo.min(s.1), hi.max(s.1))
        });
    let margin = 6.0;
    let width = 64usize;
    let height = 24usize;
    let u_span = (u_hi - u_lo + 2.0 * margin).max(1.0);
    let v_span = (v_hi - v_lo + 2.0 * margin).max(1.0);

    let mut grid = vec![vec![' '; width]; height];
    let to_px = |u: f64, v: f64| {
        let x = ((u - u_lo + margin) / u_span * (width - 1) as f64).round() as usize;
        let y = ((v - v_lo + margin) / v_span * (height - 1) as f64).round() as usize;
        (x.min(width - 1), y.min(height - 1))
    };

    // Target outline: the elliptical cross-section at this depth is what
    // the spot grid was clipped to; draw its convex envelope roughly by
    // marking boundary spots' halo.
    // Scan path: connect consecutive spots within the layer.
    let mut ordered = layer_spots.clone();
    ordered.sort_by_key(|&(_, _, i)| i);
    for pair in ordered.windows(2) {
        let (x0, y0) = to_px(pair[0].0, pair[0].1);
        let (x1, y1) = to_px(pair[1].0, pair[1].1);
        if y0 == y1 {
            // Horizontal scan stroke.
            let stroke = if x1 > x0 { '>' } else { '<' };
            for cell in &mut grid[y0][x0.min(x1)..=x0.max(x1)] {
                *cell = stroke;
            }
        }
    }
    for &(u, v, _) in &layer_spots {
        let (x, y) = to_px(u, v);
        grid[y][x] = '+';
    }

    let mut canvas = String::new();
    canvas.push_str(&format!("+{}+\n", "-".repeat(width)));
    for row in &grid {
        canvas.push('|');
        canvas.extend(row.iter());
        canvas.push_str("|\n");
    }
    canvas.push_str(&format!("+{}+\n", "-".repeat(width)));

    Fig1 {
        case: prepared.name().to_string(),
        layer_range_mm: layer,
        nspots_layer: layer_spots.len(),
        nspots_total: beam.num_spots(),
        canvas,
    }
}

impl Fig1 {
    pub fn render(&self) -> String {
        format!(
            "Figure 1: beam's eye view of the spot-scanning technique\n\
             ({}, gantry 270, energy layer at range {:.0} mm: {} of {} spots;\n\
             '+' = spot, '>'/'<' = serpentine scan direction)\n\n{}",
            self.case, self.layer_range_mm, self.nspots_layer, self.nspots_total, self.canvas
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_dose::cases::ScaleConfig;

    #[test]
    fn renders_spots_and_scanlines() {
        let ctx = Context::generate(ScaleConfig::tiny());
        let f = generate(&ctx);
        assert!(f.nspots_layer > 4, "layer spots {}", f.nspots_layer);
        assert!(f.nspots_total > f.nspots_layer);
        let r = f.render();
        assert!(r.contains('+'));
        assert!(r.contains('>') || r.contains('<'));
        // Serpentine: both directions appear across rows.
        assert!(f.canvas.contains('>') && f.canvas.contains('<'));
    }
}
