use rt_dose::cases::ScaleConfig;
use rt_gpusim::DeviceSpec;
use rt_repro::context::Context;
use rt_repro::runner::*;

fn main() {
    let ctx = Context::generate(ScaleConfig::tiny());
    let dev = DeviceSpec::a100();
    for c in [ctx.liver1(), ctx.prostate1()] {
        println!(
            "== {} rows {} cols {} nnz {} extrap {:.1}",
            c.name(),
            c.f16.nrows(),
            c.f16.ncols(),
            c.f16.nnz(),
            c.case.extrapolation()
        );
        for m in [
            run_half_double(c, &dev, 512),
            run_single(c, &dev, 512),
            run_baseline(c, &dev, 128),
            run_scalar(c, &dev, 512),
            run_cusparse(c, &dev),
            run_ginkgo(c, &dev),
        ] {
            println!("{:<14} gflops {:>8.1} bw {:>7.1} frac {:.2} bound {:?} | raw dram {:>10} oi {:.3} warps_raw {:>7} warps_scaled {:>10} atomics {}",
                m.kernel, m.gflops(), m.bandwidth_gbps(), m.estimate.frac_peak_bw, m.estimate.bound,
                m.raw.dram_total_bytes(), m.oi(), m.raw.warps, m.scaled.warps, m.raw.atomic_ops);
        }
    }
}
