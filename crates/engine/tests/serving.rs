//! Admission control and error-path coverage: every engine-facing
//! [`RtError`] variant is produced by a test here or in the crate's unit
//! tests — malformed input must surface as a typed error, never a panic.

use rt_engine::{Engine, RequestKind, RtError};
use rt_gpusim::DeviceSpec;
use rt_sparse::Csr;
use std::io::Write;

fn matrix() -> Csr<f64, u32> {
    Csr::from_rows(
        4,
        &[
            vec![(0, 1.0), (3, 0.5)],
            vec![(1, 2.0), (2, 0.25)],
            vec![(0, 0.125), (2, 1.5)],
        ],
    )
    .unwrap()
}

fn paused_engine(queue_capacity: usize) -> Engine {
    let mut e = Engine::builder()
        .device(DeviceSpec::a100())
        .device(DeviceSpec::v100())
        .queue_capacity(queue_capacity)
        .start_paused()
        .build()
        .unwrap();
    e.register_plan("plan", &matrix()).unwrap();
    e
}

#[test]
fn try_submit_sheds_when_queue_full() {
    let e = paused_engine(2);
    let (shed, report) = e.serve(|c| {
        // Workers are paused: the first two admissions fill the queue.
        let t1 = c
            .try_submit("plan", RequestKind::Dose, vec![1.0; 4])
            .unwrap();
        let t2 = c
            .try_submit("plan", RequestKind::Dose, vec![2.0; 4])
            .unwrap();
        let shed = c
            .try_submit("plan", RequestKind::Dose, vec![3.0; 4])
            .unwrap_err();
        c.resume();
        t1.wait().unwrap();
        t2.wait().unwrap();
        shed
    });
    assert_eq!(shed, RtError::QueueFull { capacity: 2 });
    assert_eq!(report.rejected_queue_full, 1);
    assert_eq!(report.completed, 2);
    assert_eq!(report.queue_max_depth, 2);
}

#[test]
fn expired_deadlines_are_shed_at_dispatch() {
    let e = paused_engine(8);
    let (results, report) = e.serve(|c| {
        // Workers paused: both requests sit in the queue. The first has a
        // zero wait budget and must be shed when a worker finally looks
        // at it; the second has a generous budget and completes.
        let doomed = c
            .submit_with_deadline("plan", RequestKind::Dose, vec![1.0; 4], 0.0)
            .unwrap();
        let fine = c
            .submit_with_deadline("plan", RequestKind::Dose, vec![1.0; 4], 60_000.0)
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        c.resume();
        (doomed.wait(), fine.wait())
    });
    match results.0 {
        Err(RtError::DeadlineExceeded {
            budget_ms,
            waited_ms,
        }) => {
            assert_eq!(budget_ms, 0.0);
            assert!(waited_ms > 0.0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(results.1.is_ok());
    assert_eq!(report.shed_deadline, 1);
    assert_eq!(report.completed, 1);
}

#[test]
fn default_deadline_applies_to_plain_submits() {
    let mut e = Engine::builder()
        .device(DeviceSpec::a100())
        .default_deadline_ms(0.0)
        .start_paused()
        .build()
        .unwrap();
    e.register_plan("plan", &matrix()).unwrap();
    let (outcome, report) = e.serve(|c| {
        let t = c.submit("plan", RequestKind::Dose, vec![1.0; 4]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        c.resume();
        t.wait()
    });
    assert!(matches!(outcome, Err(RtError::DeadlineExceeded { .. })));
    assert_eq!(report.shed_deadline, 1);
}

#[test]
fn snapshot_registration_maps_errors() {
    let mut e = Engine::builder()
        .device(DeviceSpec::a100())
        .build()
        .unwrap();

    // Missing file.
    let err = e
        .register_plan_snapshot("missing", "/nonexistent/rtdm-snapshot.bin")
        .unwrap_err();
    assert_eq!(err.kind(), "snapshot");

    // Malformed file (wrong magic).
    let dir = std::env::temp_dir().join("rt_engine_serving_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad_magic.rtdm");
    std::fs::File::create(&bad)
        .unwrap()
        .write_all(b"NOPE0000")
        .unwrap();
    let err = e.register_plan_snapshot("bad", &bad).unwrap_err();
    assert_eq!(err, RtError::Snapshot("not an RTDM snapshot".to_string()));

    // A valid snapshot round-trips into a served plan.
    let good = dir.join("good.rtdm");
    let m = matrix();
    let mut f = std::fs::File::create(&good).unwrap();
    rt_sparse::io::save_csr(&m, &mut f).unwrap();
    drop(f);
    e.register_plan_snapshot("good", &good).unwrap();
    assert_eq!(e.plan_dims("good"), Some((3, 4)));
    let (out, _) = e.serve(|c| c.call("good", RequestKind::Dose, vec![1.0; 4]).unwrap());
    assert_eq!(out.output.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degenerate_plans_are_rejected() {
    let mut e = Engine::builder()
        .device(DeviceSpec::a100())
        .build()
        .unwrap();
    let empty: Csr<f64, u32> = Csr::from_rows(0, &[]).unwrap();
    assert_eq!(
        e.register_plan("empty", &empty).unwrap_err(),
        RtError::EmptyMatrix { nrows: 0, ncols: 0 }
    );
}

#[test]
fn responses_carry_launch_reports() {
    let mut e = Engine::builder()
        .device(DeviceSpec::a100())
        .start_paused()
        .build()
        .unwrap();
    let m = matrix();
    e.register_plan("plan", &m).unwrap();
    let (resp, report) = e.serve(|c| {
        let t1 = c.submit("plan", RequestKind::Dose, vec![1.0; 4]).unwrap();
        let t2 = c.submit("plan", RequestKind::Dose, vec![2.0; 4]).unwrap();
        c.resume();
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        assert_eq!(r1.report, r2.report, "batch mates share one report");
        r1
    });
    assert_eq!(resp.batch_size, 2);
    assert_eq!(resp.report.kernel, "Half/double");
    assert_eq!(resp.report.device, "A100");
    // One batched launch over 2 vectors: flops = 2 * nnz * 2.
    assert_eq!(resp.report.stats.flops, 2 * m.nnz() as u64 * 2);
    assert!(resp.report.estimate.seconds > 0.0);
    // The session report serializes with the engine-level keys.
    let json = report.to_json();
    assert!(json.contains("\"throughput_rps\""));
    assert!(json.contains("\"modeled_gpu_seconds\""));
}
