//! §II-D at serving scale: per-plan outputs must be bitwise identical
//! regardless of worker count, device mix, submission order, submitter
//! concurrency, or how requests happen to be batched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_engine::{
    Engine, ExecPolicy, KernelSelect, PartitionStrategy, ReplicaSpec, RequestKind, ShardSpec,
};
use rt_gpusim::DeviceSpec;
use rt_sparse::Csr;

/// Random dose-deposition-shaped matrix: `nrows` voxels, `ncols` spots,
/// row lengths up to `max_row`.
fn random_matrix(seed: u64, nrows: usize, ncols: usize, max_row: usize) -> Csr<f64, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            let len = rng.gen_range(0..max_row);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..0.1)))
                .collect()
        })
        .collect();
    Csr::from_rows(ncols, &rows).unwrap()
}

struct Workload {
    plan: &'static str,
    kind: RequestKind,
    payload: Vec<f64>,
}

/// Deterministic mixed workload over two plans, keyed by request id.
fn workload(liver_dims: (usize, usize), prostate_dims: (usize, usize)) -> Vec<Workload> {
    (0..48)
        .map(|i| {
            let (plan, dims) = if i % 3 == 0 {
                ("prostate", prostate_dims)
            } else {
                ("liver", liver_dims)
            };
            let kind = if i % 4 == 2 {
                RequestKind::Gradient
            } else {
                RequestKind::Dose
            };
            let len = match kind {
                RequestKind::Dose => dims.1,
                RequestKind::Gradient => dims.0,
            };
            let payload = (0..len)
                .map(|j| ((i * 131 + j * 17) as f64 * 0.013).sin().abs())
                .collect();
            Workload {
                plan,
                kind,
                payload,
            }
        })
        .collect()
}

/// Runs the whole workload through a pool, submitting in `order` from
/// `submitters` concurrent threads; returns outputs indexed by request id
/// as raw bits.
fn run_pool(
    devices: Vec<DeviceSpec>,
    order: &[usize],
    submitters: usize,
    liver: &Csr<f64, u32>,
    prostate: &Csr<f64, u32>,
) -> Vec<Vec<u64>> {
    run_pool_with(
        devices,
        order,
        submitters,
        liver,
        prostate,
        ExecPolicy::default(),
    )
    .0
}

/// Shorthand for a forced placement: `k` shards per group, `r` groups.
fn placed(k: usize, r: usize) -> ExecPolicy {
    ExecPolicy::builder()
        .shards(ShardSpec::Fixed(k))
        .replicas(ReplicaSpec::Fixed(r))
        .build()
        .unwrap()
}

/// [`run_pool`] with an explicit per-plan execution policy, also
/// returning the serve report.
fn run_pool_with(
    devices: Vec<DeviceSpec>,
    order: &[usize],
    submitters: usize,
    liver: &Csr<f64, u32>,
    prostate: &Csr<f64, u32>,
    policy: ExecPolicy,
) -> (Vec<Vec<u64>>, rt_engine::EngineReport) {
    let work = workload(
        (liver.nrows(), liver.ncols()),
        (prostate.nrows(), prostate.ncols()),
    );
    let mut engine = Engine::builder().devices(devices).build().unwrap();
    engine.register_plan_with("liver", liver, policy).unwrap();
    engine
        .register_plan_with("prostate", prostate, policy)
        .unwrap();

    let (outputs, report) = engine.serve(|client| {
        let results: Vec<std::sync::Mutex<Option<Vec<f64>>>> =
            work.iter().map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for chunk in order.chunks(order.len().div_ceil(submitters)) {
                let results = &results;
                let work = &work;
                s.spawn(move || {
                    for &id in chunk {
                        let w = &work[id];
                        let r = client
                            .call(w.plan, w.kind, w.payload.clone())
                            .expect("request served");
                        *results[id].lock().unwrap() = Some(r.output);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(report.completed, order.len() as u64);
    assert_eq!(report.failed, 0);
    let bits = outputs
        .into_iter()
        .map(|v| v.into_iter().map(f64::to_bits).collect())
        .collect();
    (bits, report)
}

fn shuffled(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    order
}

#[test]
fn doses_identical_across_pool_sizes_and_interleavings() {
    let liver = random_matrix(1, 900, 60, 40); // long rows
    let prostate = random_matrix(2, 700, 80, 8); // short rows
    let n = 48;

    let baseline = run_pool(
        vec![DeviceSpec::a100()],
        &(0..n).collect::<Vec<_>>(),
        1,
        &liver,
        &prostate,
    );

    // 4 homogeneous workers, shuffled submission, 4 submitter threads.
    let four = run_pool(
        vec![DeviceSpec::a100(); 4],
        &shuffled(77, n),
        4,
        &liver,
        &prostate,
    );
    assert_eq!(baseline, four, "4-worker pool changed some dose bytes");

    // 8 heterogeneous workers (mixed device generations), another order.
    let mut pool = vec![
        DeviceSpec::a100(),
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::v100(),
        DeviceSpec::p100(),
        DeviceSpec::p100(),
        DeviceSpec::a100(),
        DeviceSpec::v100(),
    ];
    pool.truncate(8);
    let eight = run_pool(pool, &shuffled(991, n), 8, &liver, &prostate);
    assert_eq!(
        baseline, eight,
        "8-worker mixed pool changed some dose bytes"
    );
}

#[test]
fn two_plans_on_one_pool_run_different_tile_widths_deterministically() {
    // Long-row liver keeps the paper's warp-per-row kernel; short-row
    // prostate autotunes to a sub-warp tile. Both must stay bitwise
    // stable across pool sizes while running *different* widths on the
    // same worker pool.
    let liver = random_matrix(5, 900, 60, 40);
    let prostate = random_matrix(6, 700, 80, 8);

    let mut engine = Engine::builder()
        .device(DeviceSpec::a100())
        .build()
        .unwrap();
    engine.register_plan("liver", &liver).unwrap();
    engine.register_plan("prostate", &prostate).unwrap();
    let liver_w = engine.plan_tile_width("liver").unwrap();
    let prostate_w = engine.plan_tile_width("prostate").unwrap();
    assert_eq!(liver_w, 32, "long rows must keep the full warp");
    assert!(
        prostate_w < liver_w,
        "short rows must autotune narrower (got {prostate_w})"
    );

    let n = 48;
    let baseline = run_pool(
        vec![DeviceSpec::a100()],
        &(0..n).collect::<Vec<_>>(),
        1,
        &liver,
        &prostate,
    );
    let four = run_pool(
        vec![DeviceSpec::a100(); 4],
        &shuffled(31, n),
        4,
        &liver,
        &prostate,
    );
    assert_eq!(
        baseline, four,
        "mixed-width plans diverged across pool sizes"
    );

    // And the serve report carries the selection for both plans.
    let (_, report) = engine.serve(|c| {
        c.call("prostate", RequestKind::Dose, vec![0.5; prostate.ncols()])
            .unwrap()
    });
    let by_name = |n: &str| report.plans.iter().find(|p| p.name == n).unwrap();
    assert_eq!(by_name("liver").tile_width, 32);
    assert_eq!(by_name("prostate").tile_width, prostate_w);
    assert_eq!(by_name("prostate").mode, "heuristic");
}

#[test]
fn partitioned_serving_is_bitwise_identical_and_reports_buckets() {
    // Empty-heavy, short-row matrices: the partitioned path's target
    // shape. The doses must not change — bucketing only reorders which
    // tile visits which row, never a row's reduction tree.
    let liver = random_matrix(9, 900, 60, 4);
    let prostate = random_matrix(10, 700, 80, 8);
    let n = 48;
    let order: Vec<usize> = (0..n).collect();

    let run = |select: KernelSelect, devices: Vec<DeviceSpec>| {
        let policy = ExecPolicy::builder().kernel_select(select).build().unwrap();
        let mut engine = Engine::builder()
            .devices(devices)
            .default_policy(policy)
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        engine.register_plan("prostate", &prostate).unwrap();
        let work = workload(
            (liver.nrows(), liver.ncols()),
            (prostate.nrows(), prostate.ncols()),
        );
        engine.serve(|client| {
            order
                .iter()
                .map(|&id| {
                    let w = &work[id];
                    client
                        .call(w.plan, w.kind, w.payload.clone())
                        .unwrap()
                        .output
                        .into_iter()
                        .map(f64::to_bits)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
    };

    // A partitioned strategy must be bitwise stable across pool sizes and
    // device mixes, exactly like whole-matrix dispatch. (Partitioned
    // doses are *not* compared against whole-matrix doses here: a bucket
    // running at a different tile width than the whole-matrix pick uses a
    // different — equally deterministic — truncated reduction tree. The
    // per-width bitwise equivalence against the classic kernels is
    // asserted in rt-core's bucketed tests.)
    let (base_doses, base_report) = run(KernelSelect::Heuristic, vec![DeviceSpec::a100()]);
    let (part, part_report) = run(
        KernelSelect::Partitioned(PartitionStrategy::Heuristic),
        vec![DeviceSpec::a100()],
    );
    let (part4, _) = run(
        KernelSelect::Partitioned(PartitionStrategy::Heuristic),
        vec![
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::a100(),
            DeviceSpec::p100(),
        ],
    );
    assert_eq!(
        part, part4,
        "partitioned 4-device mixed pool changed some dose bytes"
    );
    let (probe, _) = run(
        KernelSelect::Partitioned(PartitionStrategy::MeasuredProbe),
        vec![DeviceSpec::a100()],
    );
    let (probe4, _) = run(
        KernelSelect::Partitioned(PartitionStrategy::MeasuredProbe),
        vec![DeviceSpec::a100(); 4],
    );
    assert_eq!(
        probe, probe4,
        "probe-partitioned 4-device pool changed some dose bytes"
    );
    // Output shapes agree with whole-matrix serving even where bits may
    // legitimately differ (different per-row widths).
    for (b, p) in base_doses.iter().zip(&part) {
        assert_eq!(b.len(), p.len());
    }

    // Whole-matrix plans report no buckets; partitioned plans report one
    // selection per populated bucket.
    assert!(base_report.plans.iter().all(|p| p.buckets.is_empty()));
    let by_name = |n: &str| part_report.plans.iter().find(|p| p.name == n).unwrap();
    let liver_sel = by_name("liver");
    assert_eq!(liver_sel.mode, "partitioned-heuristic");
    assert!(!liver_sel.buckets.is_empty());
    for b in &liver_sel.buckets {
        assert!(b.rows > 0, "unpopulated bucket leaked into the report");
        assert!(rt_gpusim::TILE_WIDTHS.contains(&b.tile_width));
        assert!(b.lanes_active_frac > 0.0 && b.lanes_active_frac <= 1.0);
    }

    // The engine caches the row plan once per partitioned plan and the
    // report's bucket rows account for exactly the non-empty rows.
    let mut engine = Engine::builder()
        .device(DeviceSpec::a100())
        .build()
        .unwrap();
    engine
        .register_plan_with(
            "liver",
            &liver,
            ExecPolicy::builder()
                .kernel_select(KernelSelect::Partitioned(PartitionStrategy::Heuristic))
                .build()
                .unwrap(),
        )
        .unwrap();
    let plan = engine.plan_row_plan("liver").expect("row plan cached");
    assert_eq!(
        liver_sel.buckets.iter().map(|b| b.rows).sum::<u64>(),
        plan.nonempty_rows() as u64
    );
}

#[test]
fn batched_and_unbatched_serving_agree() {
    let liver = random_matrix(3, 500, 40, 30);
    let prostate = random_matrix(4, 400, 50, 6);
    let n = 48;
    let order: Vec<usize> = (0..n).collect();

    // max_batch(1) disables batching entirely; the default batches up to
    // MAX_SPMM_BATCH requests per launch. Doses must not care.
    let run = |max_batch: usize| {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .device(DeviceSpec::v100())
            .max_batch(max_batch)
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        engine.register_plan("prostate", &prostate).unwrap();
        let work = workload(
            (liver.nrows(), liver.ncols()),
            (prostate.nrows(), prostate.ncols()),
        );
        let (out, _) = engine.serve(|client| {
            let tickets: Vec<_> = order
                .iter()
                .map(|&id| {
                    let w = &work[id];
                    client.submit(w.plan, w.kind, w.payload.clone()).unwrap()
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| {
                    t.wait()
                        .unwrap()
                        .output
                        .into_iter()
                        .map(f64::to_bits)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        out
    };
    assert_eq!(run(1), run(rt_core::MAX_SPMM_BATCH));
}

#[test]
fn placed_serving_is_bitwise_identical_to_unsharded() {
    // §II-D across the pool: placing a plan as R replica groups × K row
    // shards and executing requests cooperatively must not change a
    // single dose byte — for any R, K, pool mix, submission order, or
    // kernel selection. Pinned whole-matrix widths make each row's
    // reduction tree shard- and replica-invariant; disjoint row ranges
    // make the merge a pure scatter.
    let liver = random_matrix(1, 900, 60, 40);
    let prostate = random_matrix(2, 700, 80, 8);
    let n = 48;
    let mixed = vec![
        DeviceSpec::a100(),
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::p100(),
    ];

    let baseline = run_pool(
        vec![DeviceSpec::a100()],
        &(0..n).collect::<Vec<_>>(),
        1,
        &liver,
        &prostate,
    );
    for r in 1..=2usize {
        for k in 1..=4usize {
            let (out, report) = run_pool_with(
                mixed.clone(),
                &shuffled(100 + (r * 10 + k) as u64, n),
                4,
                &liver,
                &prostate,
                placed(k, r),
            );
            assert_eq!(out, baseline, "r={r} k={k} mixed pool changed dose bytes");
            for plan in &report.plans {
                assert_eq!(plan.shards.len(), k, "plan {} shard count", plan.name);
                let pl = plan.placement.as_ref().expect("placed plan reports layout");
                assert_eq!(pl.replicas, r);
                assert_eq!(pl.shards_per_replica, k);
                assert!(!pl.auto_shards);
                // Groups partition the pool: disjoint, all devices used
                // when R divides the pool evenly.
                let member_count: usize = pl.groups.iter().map(|g| g.devices.len()).sum();
                assert_eq!(member_count, mixed.len());
            }
        }
    }

    // The break-even autotuner must preserve bitwise doses too, whatever
    // K it picks per group.
    let auto = ExecPolicy::builder()
        .shards(ShardSpec::Auto)
        .replicas(ReplicaSpec::Fixed(2))
        .build()
        .unwrap();
    let (auto_out, auto_report) =
        run_pool_with(mixed.clone(), &shuffled(400, n), 4, &liver, &prostate, auto);
    assert_eq!(auto_out, baseline, "auto-sharded pool changed dose bytes");
    for plan in &auto_report.plans {
        let pl = plan.placement.as_ref().unwrap();
        assert!(pl.auto_shards);
        assert!(
            !pl.breakeven.is_empty(),
            "auto plans must report their break-even table"
        );
        let chosen = pl
            .breakeven
            .iter()
            .min_by(|a, b| a.modeled_seconds.total_cmp(&b.modeled_seconds))
            .unwrap();
        assert_eq!(pl.shards_per_replica, chosen.k, "reported K is the argmin");
    }

    // Single-device pool still accepts placement (all shards home there).
    let (one_dev, _) = run_pool_with(
        vec![DeviceSpec::v100()],
        &shuffled(55, n),
        2,
        &liver,
        &prostate,
        placed(3, 1),
    );
    assert_eq!(one_dev, baseline, "1-device placed pool changed bytes");

    // Partitioned (bucketed) selection: placed doses must match the
    // unplaced partitioned doses — the global bucket widths are pinned
    // before the split and applied to every shard's row plan.
    let select = KernelSelect::Partitioned(PartitionStrategy::Heuristic);
    let (part_base, _) = run_pool_with(
        vec![DeviceSpec::a100()],
        &(0..n).collect::<Vec<_>>(),
        1,
        &liver,
        &prostate,
        ExecPolicy::builder().kernel_select(select).build().unwrap(),
    );
    let (part_placed, _) = run_pool_with(
        mixed,
        &shuffled(77, n),
        4,
        &liver,
        &prostate,
        ExecPolicy::builder()
            .kernel_select(select)
            .shards(ShardSpec::Fixed(3))
            .replicas(ReplicaSpec::Fixed(1))
            .build()
            .unwrap(),
    );
    assert_eq!(
        part_placed, part_base,
        "partitioned placed pool changed dose bytes"
    );
}

#[test]
fn sharded_report_exposes_shards_and_cuts_residency() {
    let liver = random_matrix(11, 900, 60, 24);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.017).cos().abs())
        .collect();
    let pool = || vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()];

    let run = |policy: ExecPolicy| {
        let mut engine = Engine::builder().devices(pool()).build().unwrap();
        engine.register_plan_with("liver", &liver, policy).unwrap();
        engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap())
    };

    let (full_resp, full) = run(ExecPolicy::default());
    let (sharded_resp, sharded) = run(placed(3, 1));

    // Fully-resident plans replicate matrix + transpose on every device;
    // sharded plans split one copy across the pool (~K× per-device cut).
    let full_total: u64 = full.devices.iter().map(|d| d.resident_bytes).sum();
    let sharded_total: u64 = sharded.devices.iter().map(|d| d.resident_bytes).sum();
    assert!(full.devices.iter().all(|d| d.resident_bytes > 0));
    assert!(
        sharded_total * 2 < full_total,
        "sharding kept {sharded_total} of {full_total} resident bytes"
    );
    for (f, s) in full.devices.iter().zip(&sharded.devices) {
        assert!(
            s.resident_bytes < f.resident_bytes,
            "device {} residency did not shrink",
            s.name
        );
        assert!(s.resident_bytes > 0, "device {} hosts no shard", s.name);
    }

    // The report names each shard's home device and row range.
    assert!(full.plans[0].shards.is_empty());
    let shards = &sharded.plans[0].shards;
    assert_eq!(shards.len(), 3);
    assert_eq!(
        shards.iter().map(|s| s.rows).sum::<u64>(),
        liver.nrows() as u64
    );
    assert!(shards.iter().all(|s| s.nnz > 0 && s.resident_bytes > 0));
    let pool_names: Vec<String> = pool().iter().map(|d| d.name.to_string()).collect();
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.shard, i);
        assert_eq!(s.device, pool_names[i % pool_names.len()]);
    }

    // Responses carry the per-shard breakdown only when sharded.
    assert!(full_resp.shards.is_none());
    let sh = sharded_resp.shards.as_ref().expect("sharded breakdown");
    assert_eq!(sh.shards.len(), 3);
    assert!(sh.gather_bytes > 0, "merge models inter-device gather");
    assert!(sh.modeled_seconds > 0.0);
    // Same dose either way.
    assert_eq!(
        sharded_resp
            .output
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        full_resp
            .output
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );
}

#[test]
fn deadline_shed_under_fan_out_cancels_all_shard_subtasks() {
    let liver = random_matrix(21, 900, 60, 40);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.013).sin().abs())
        .collect();

    // Unsharded golden dose for the recovery request.
    let golden: Vec<u64> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (r, _) = engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect()
    };

    // Device 2 stalls its shard far past the budget: the whole fan-out
    // must cancel as a unit — the client sees DeadlineExceeded, never a
    // partially-merged dose with the slow shard's rows missing.
    let mut engine = Engine::builder()
        .devices(vec![
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::p100(),
        ])
        .debug_device_delay_ms(2, 60.0)
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(3, 1))
        .unwrap();
    let ((shed, ok), report) = engine.serve(|client| {
        let ticket = client
            .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 15.0)
            .unwrap();
        let shed = ticket.wait();
        // An unbudgeted request right after must still complete: shedding
        // one fan-out may not wedge the queue or leak sub-tasks.
        let ok = client
            .call("liver", RequestKind::Dose, payload.clone())
            .unwrap();
        (shed, ok)
    });

    match shed {
        Err(rt_engine::RtError::DeadlineExceeded {
            budget_ms,
            waited_ms,
        }) => {
            assert_eq!(budget_ms, 15.0);
            assert!(waited_ms >= budget_ms, "waited {waited_ms} < {budget_ms}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(report.shed_deadline, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    let bits: Vec<u64> = ok.output.into_iter().map(f64::to_bits).collect();
    assert_eq!(bits, golden, "post-shed dose diverged from unsharded");
    assert!(ok.shards.is_some());
}

#[test]
fn queue_full_fan_out_sheds_at_admission_without_partial_doses() {
    let liver = random_matrix(22, 700, 50, 20);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| ((j * 7 + 3) % 19) as f64 * 0.05 + 0.2)
        .collect();

    let golden: Vec<u64> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (r, _) = engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect()
    };

    // Capacity 1 with workers paused: the first request fills the queue,
    // the second is shed at admission — before any sub-task exists, so
    // there is nothing to cancel. Once resumed, the first request's 3
    // shard sub-tasks bypass the capacity bound (they are continuation
    // work for an already-admitted request) and the dose completes whole.
    let mut engine = Engine::builder()
        .devices(vec![
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::p100(),
        ])
        .queue_capacity(1)
        .start_paused()
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(3, 1))
        .unwrap();
    let ((first, rejected), report) = engine.serve(|client| {
        let ticket = client
            .submit("liver", RequestKind::Dose, payload.clone())
            .unwrap();
        let rejected = client
            .try_submit("liver", RequestKind::Dose, payload.clone())
            .expect_err("second request must shed at the full queue");
        client.resume();
        (ticket.wait(), rejected)
    });

    assert_eq!(rejected, rt_engine::RtError::QueueFull { capacity: 1 });
    assert_eq!(report.rejected_queue_full, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    let first = first.expect("admitted request completes");
    let bits: Vec<u64> = first.output.into_iter().map(f64::to_bits).collect();
    assert_eq!(bits, golden, "admitted dose diverged from unsharded");
    assert!(first.shards.is_some());
}

#[test]
fn batching_composes_with_sharding() {
    let liver = random_matrix(23, 800, 64, 24);
    let payloads: Vec<Vec<f64>> = (0..6)
        .map(|v| {
            (0..liver.ncols())
                .map(|j| ((v * 64 + j) * 11 % 23) as f64 * 0.04 + 0.1)
                .collect()
        })
        .collect();

    let goldens: Vec<Vec<u64>> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (out, _) = engine.serve(|c| {
            payloads
                .iter()
                .map(|p| {
                    c.call("liver", RequestKind::Dose, p.clone())
                        .unwrap()
                        .output
                        .into_iter()
                        .map(f64::to_bits)
                        .collect()
                })
                .collect::<Vec<_>>()
        });
        out
    };

    // One device hosting all 3 shards keeps the batch composition
    // deterministic: the dispatching worker drains all 6 queued mates
    // into one fan-out, which becomes 3 shard sub-tasks of 6 vectors
    // each — 3 launches total, not 18.
    let mut engine = Engine::builder()
        .device(DeviceSpec::a100())
        .start_paused()
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(3, 1))
        .unwrap();
    let (responses, report) = engine.serve(|client| {
        let tickets: Vec<_> = payloads
            .iter()
            .map(|p| {
                client
                    .submit("liver", RequestKind::Dose, p.clone())
                    .unwrap()
            })
            .collect();
        client.resume();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });

    assert_eq!(report.completed, 6);
    assert_eq!(
        report.launches, 3,
        "one launch per shard, shared by the batch"
    );
    for (r, golden) in responses.iter().zip(&goldens) {
        assert_eq!(r.batch_size, 6, "batch did not compose under fan-out");
        let sh = r.shards.as_ref().expect("sharded breakdown");
        assert_eq!(sh.shards.len(), 3);
        let bits: Vec<u64> = r.output.iter().map(|v| v.to_bits()).collect();
        assert_eq!(&bits, golden, "batched sharded dose diverged");
    }
}

#[test]
fn replica_groups_share_concurrent_traffic() {
    // R=2 × K=2 on a 4-device mixed pool: least-loaded dispatch must
    // spread overlapping fan-outs across both replica groups, and every
    // dose must still be bitwise identical to the single-device path.
    let liver = random_matrix(41, 900, 60, 24);
    let payloads: Vec<Vec<f64>> = (0..8)
        .map(|v| {
            (0..liver.ncols())
                .map(|j| ((v * 31 + j * 7) % 29) as f64 * 0.03 + 0.1)
                .collect()
        })
        .collect();

    let goldens: Vec<Vec<u64>> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (out, _) = engine.serve(|c| {
            payloads
                .iter()
                .map(|p| {
                    c.call("liver", RequestKind::Dose, p.clone())
                        .unwrap()
                        .output
                        .into_iter()
                        .map(f64::to_bits)
                        .collect()
                })
                .collect::<Vec<_>>()
        });
        out
    };

    // max_batch(1) keeps each request its own fan-out; per-device delays
    // hold every fan in flight long enough that the 4 dispatching
    // workers overlap and the least-loaded pick alternates groups.
    let mut engine = Engine::builder()
        .devices(vec![
            DeviceSpec::a100(),
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::p100(),
        ])
        .max_batch(1)
        .start_paused()
        .debug_device_delay_ms(0, 5.0)
        .debug_device_delay_ms(1, 5.0)
        .debug_device_delay_ms(2, 5.0)
        .debug_device_delay_ms(3, 5.0)
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(2, 2))
        .unwrap();
    assert_eq!(engine.plan_replica_count("liver"), Some(2));
    assert_eq!(engine.plan_shard_count("liver"), Some(2));

    let (responses, report) = engine.serve(|client| {
        let tickets: Vec<_> = payloads
            .iter()
            .map(|p| {
                client
                    .submit("liver", RequestKind::Dose, p.clone())
                    .unwrap()
            })
            .collect();
        client.resume();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });

    assert_eq!(report.completed, 8);
    for (r, golden) in responses.iter().zip(&goldens) {
        let bits: Vec<u64> = r.output.iter().map(|v| v.to_bits()).collect();
        assert_eq!(&bits, golden, "replicated dose diverged");
    }
    let placement = report.plans[0].placement.as_ref().expect("placed plan");
    assert_eq!(placement.replicas, 2);
    let served: Vec<u64> = placement.groups.iter().map(|g| g.served).collect();
    assert_eq!(served.iter().sum::<u64>(), 8, "every fan-out accounted");
    assert!(
        served.iter().all(|&s| s > 0),
        "least-loaded dispatch left a replica group idle: {served:?}"
    );
    // Groups are disjoint subsets of the pool.
    let mut members: Vec<&String> = placement
        .groups
        .iter()
        .flat_map(|g| g.devices.iter())
        .collect();
    assert_eq!(members.len(), 4);
    members.sort();
}

#[test]
fn deadline_shed_under_replica_fan_out_cancels_only_its_group() {
    // Two budgeted requests on an R=2 pool where one group contains a
    // stalled device: the fan-out routed there sheds as a unit, the
    // other group's fan-out completes, and no partial dose escapes.
    let liver = random_matrix(42, 900, 60, 24);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.019).sin().abs())
        .collect();

    let golden: Vec<u64> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (r, _) = engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect()
    };

    // Snake-dealt groups of [A100, A100, V100, P100]: group 0 gets the
    // first A100 + the P100 (stalled), group 1 the second A100 + V100.
    let mut engine = Engine::builder()
        .devices(vec![
            DeviceSpec::a100(),
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::p100(),
        ])
        .max_batch(1)
        .start_paused()
        .debug_device_delay_ms(3, 120.0)
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(2, 2))
        .unwrap();

    let (results, report) = engine.serve(|client| {
        let tickets: Vec<_> = (0..2)
            .map(|_| {
                client
                    .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 25.0)
                    .unwrap()
            })
            .collect();
        client.resume();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });

    assert_eq!(report.shed_deadline, 1, "exactly the stalled group sheds");
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    let mut shed = 0;
    for r in results {
        match r {
            Err(rt_engine::RtError::DeadlineExceeded { budget_ms, .. }) => {
                assert_eq!(budget_ms, 25.0);
                shed += 1;
            }
            Ok(resp) => {
                let bits: Vec<u64> = resp.output.into_iter().map(f64::to_bits).collect();
                assert_eq!(bits, golden, "surviving group's dose diverged");
            }
            Err(other) => panic!("expected DeadlineExceeded or success, got {other:?}"),
        }
    }
    assert_eq!(shed, 1);
}

#[test]
fn snapshot_cuts_skip_resharding_on_cold_start() {
    use rt_sparse::ShardPlan;

    let liver = random_matrix(43, 900, 60, 24);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.011).cos().abs())
        .collect();
    // Persist the *uniform* nnz-balanced cuts alongside the matrix.
    let stored_cuts = ShardPlan::build(&liver, 3).cut_points();
    let path = std::env::temp_dir().join(format!(
        "rt_engine_snapshot_cuts_{}.rtdm",
        std::process::id()
    ));
    {
        let mut file = std::fs::File::create(&path).unwrap();
        rt_sparse::save_csr_with_cuts(&liver, &stored_cuts, &mut file).unwrap();
    }

    let pool = || vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()];
    // Cold start from the snapshot: the stored cuts are reused verbatim.
    let mut from_snapshot = Engine::builder().devices(pool()).build().unwrap();
    from_snapshot
        .register_plan_snapshot_with("liver", &path, placed(3, 1))
        .unwrap();
    assert_eq!(
        from_snapshot.plan_shard_cuts("liver").unwrap(),
        stored_cuts,
        "snapshot cuts were re-derived instead of reused"
    );

    // Fresh registration on the same mixed pool weights its cuts by
    // device bandwidth — a genuinely different split.
    let mut fresh = Engine::builder().devices(pool()).build().unwrap();
    fresh
        .register_plan_with("liver", &liver, placed(3, 1))
        .unwrap();
    assert_ne!(
        fresh.plan_shard_cuts("liver").unwrap(),
        stored_cuts,
        "weighted cuts should differ from uniform cuts on a mixed pool"
    );

    // A shard count the stored cuts cannot satisfy falls back to the
    // weighted split.
    let mut mismatched = Engine::builder().devices(pool()).build().unwrap();
    mismatched
        .register_plan_snapshot_with("liver", &path, placed(2, 1))
        .unwrap();
    assert_eq!(mismatched.plan_shard_count("liver"), Some(2));

    // Cut provenance never changes a dose byte.
    let dose = |engine: &Engine| {
        let (r, _) = engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect::<Vec<u64>>()
    };
    let a = dose(&from_snapshot);
    assert_eq!(a, dose(&fresh));
    assert_eq!(a, dose(&mismatched));
    std::fs::remove_file(&path).ok();
}

#[test]
fn breakeven_autotuner_scales_shards_to_plan_size() {
    // On a 2×P100 pool, a ~1.3M-nnz plan streams long enough that
    // splitting beats the extra launch + gather; a small plan does not.
    // ShardSpec::Auto must pick K accordingly — and keep doses bitwise.
    let big = random_matrix(44, 4000, 600, 900);
    let small = random_matrix(45, 700, 80, 8);

    let mut engine = Engine::builder()
        .devices(vec![DeviceSpec::p100(), DeviceSpec::p100()])
        .build()
        .unwrap();
    let auto = ExecPolicy::builder()
        .shards(ShardSpec::Auto)
        .replicas(ReplicaSpec::Fixed(1))
        .build()
        .unwrap();
    engine.register_plan_with("big", &big, auto).unwrap();
    engine.register_plan_with("small", &small, auto).unwrap();

    assert_eq!(
        engine.plan_shard_count("big"),
        Some(2),
        "large plan should take both devices: {:?}",
        engine.plan_breakeven("big")
    );
    assert_eq!(
        engine.plan_shard_count("small"),
        Some(1),
        "small plan must stay whole: {:?}",
        engine.plan_breakeven("small")
    );
    // The evidence tables justify both picks.
    let big_be = engine.plan_breakeven("big").unwrap();
    assert!(big_be[1].modeled_seconds < big_be[0].modeled_seconds);
    let small_be = engine.plan_breakeven("small").unwrap();
    assert!(small_be[0].modeled_seconds < small_be[1].modeled_seconds);

    // Auto-sharded dose == unsharded dose, bit for bit.
    let payload: Vec<f64> = (0..big.ncols())
        .map(|j| ((j * 13 + 5) % 17) as f64 * 0.05 + 0.1)
        .collect();
    let golden: Vec<u64> = {
        let mut one = Engine::builder()
            .device(DeviceSpec::p100())
            .build()
            .unwrap();
        one.register_plan("big", &big).unwrap();
        let (r, _) = one.serve(|c| c.call("big", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect()
    };
    let (r, _) = engine.serve(|c| c.call("big", RequestKind::Dose, payload.clone()).unwrap());
    let bits: Vec<u64> = r.output.into_iter().map(f64::to_bits).collect();
    assert_eq!(bits, golden, "auto-sharded dose diverged");
}

/// The backward-pass counterpart of the R×K placement sweep: partitioned
/// gradients served through every replica/shard layout must be bitwise
/// identical to the single-device unplaced partitioned gradient, because
/// the transpose's per-bucket widths are pinned from the whole transpose
/// before any shard split.
#[test]
fn partitioned_gradients_bitwise_across_replicas_and_shards() {
    let liver = random_matrix(46, 1600, 220, 40);
    let partitioned = ExecPolicy::builder()
        .kernel_select(KernelSelect::Partitioned(PartitionStrategy::Heuristic))
        .build()
        .unwrap();
    let residual: Vec<f64> = (0..liver.nrows())
        .map(|j| ((j * 7 + 3) % 13) as f64 * 0.06 + 0.05)
        .collect();

    // Golden: one device, unplaced, grad-partitioned at the pinned
    // transpose widths.
    let golden: Vec<u64> = {
        let mut one = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        one.register_plan_with("liver", &liver, partitioned)
            .unwrap();
        assert!(
            one.plan_grad_row_plan("liver").is_some(),
            "partitioned plans must cache a transpose row plan"
        );
        let (r, _) = one.serve(|c| {
            c.call("liver", RequestKind::Gradient, residual.clone())
                .unwrap()
        });
        r.output.into_iter().map(f64::to_bits).collect()
    };

    let pool = vec![
        DeviceSpec::a100(),
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::p100(),
    ];
    for r_groups in 1..=2usize {
        for k in 1..=4usize {
            if r_groups * k > pool.len() {
                continue;
            }
            let policy = ExecPolicy::builder()
                .kernel_select(KernelSelect::Partitioned(PartitionStrategy::Heuristic))
                .shards(ShardSpec::Fixed(k))
                .replicas(ReplicaSpec::Fixed(r_groups))
                .build()
                .unwrap();
            let mut engine = Engine::builder().devices(pool.clone()).build().unwrap();
            engine.register_plan_with("liver", &liver, policy).unwrap();
            let (outs, report) = engine.serve(|c| {
                (0..3)
                    .map(|_| {
                        c.call("liver", RequestKind::Gradient, residual.clone())
                            .unwrap()
                            .output
                    })
                    .collect::<Vec<_>>()
            });
            for out in outs {
                let bits: Vec<u64> = out.into_iter().map(f64::to_bits).collect();
                assert_eq!(bits, golden, "R={r_groups} K={k} gradient diverged");
            }
            // The report carries the gradient direction's own selection.
            let plan = &report.plans[0];
            assert_eq!(
                plan.grad_tile_width,
                engine.plan_grad_tile_width("liver").unwrap(),
                "R={r_groups} K={k}"
            );
            assert!(
                !plan.grad_buckets.is_empty(),
                "R={r_groups} K={k}: partitioned plan reports grad buckets"
            );
        }
    }
}

#[test]
fn mixed_budget_batch_binds_on_each_members_own_deadline() {
    // Regression for the fan-out shed deadline: it used to be built
    // from the *oldest* submission paired with the batch's *minimum*
    // budget, so a loose-budget request that had waited a while was
    // cancelled the moment a tight-budget mate joined its batch — even
    // though the mate's own deadline (submitted + budget) was still far
    // away. The binding deadline must be min_i(submitted_i + budget_i).
    let liver = random_matrix(61, 800, 56, 36);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.017).sin().abs())
        .collect();

    let golden: Vec<u64> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (r, _) = engine.serve(|c| c.call("liver", RequestKind::Dose, payload.clone()).unwrap());
        r.output.into_iter().map(f64::to_bits).collect()
    };

    let mut engine = Engine::builder()
        .devices(vec![DeviceSpec::a100(), DeviceSpec::v100()])
        .start_paused()
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(2, 1))
        .unwrap();

    let (results, report) = engine.serve(|client| {
        // The loose request ages 600ms in the paused queue before the
        // tight mate arrives; under the old deadline the batch would be
        // cancelled at oldest + min-budget = 500ms — already in the
        // past when the workers resume.
        let loose = client
            .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 10_000.0)
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(600));
        let tight = client
            .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 500.0)
            .unwrap();
        client.resume();
        (loose.wait(), tight.wait())
    });

    assert_eq!(report.shed_deadline, 0, "no member's real deadline expired");
    assert_eq!(report.completed, 2);
    assert_eq!(report.failed, 0);
    // One merged fan-out batch of 2, K=2 physical launches.
    assert_eq!(report.batches, 1);
    assert_eq!(report.launches, 2);
    for r in [results.0, results.1] {
        let resp = r.expect("both batch mates complete before their own deadlines");
        let bits: Vec<u64> = resp.output.into_iter().map(f64::to_bits).collect();
        assert_eq!(bits, golden, "batched dose diverged from unsharded");
    }
}

#[test]
fn shed_fan_out_fails_each_slot_with_its_own_budget() {
    // When a fan-out genuinely sheds, every slot must report *its own*
    // budget_ms (the CAS winner used to stamp the fan-wide minimum on
    // all of them).
    let liver = random_matrix(62, 900, 60, 40);
    let payload: Vec<f64> = (0..liver.ncols())
        .map(|j| (j as f64 * 0.019).cos().abs())
        .collect();

    let mut engine = Engine::builder()
        .devices(vec![
            DeviceSpec::a100(),
            DeviceSpec::v100(),
            DeviceSpec::p100(),
        ])
        .start_paused()
        .debug_device_delay_ms(2, 300.0)
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(3, 1))
        .unwrap();

    let (results, report) = engine.serve(|client| {
        let loose = client
            .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 2_000.0)
            .unwrap();
        let tight = client
            .submit_with_deadline("liver", RequestKind::Dose, payload.clone(), 100.0)
            .unwrap();
        client.resume();
        (loose.wait(), tight.wait())
    });

    assert_eq!(report.shed_deadline, 2, "the whole fan-out sheds as a unit");
    assert_eq!(report.completed, 0);
    assert_eq!(report.failed, 0);
    for (r, own_budget) in [(results.0, 2_000.0), (results.1, 100.0)] {
        match r {
            Err(rt_engine::RtError::DeadlineExceeded {
                budget_ms,
                waited_ms,
            }) => {
                assert_eq!(budget_ms, own_budget, "slot must carry its own budget");
                assert!(waited_ms > 0.0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}

#[test]
fn drain_undrain_mid_traffic_keeps_doses_bitwise_identical() {
    // Maintenance sweep: drain and undrain devices while traffic is in
    // flight. Every re-deal swaps the placement epoch, but widths are
    // pinned from the whole matrix, so the dose bytes must match the
    // static single-device golden bit for bit at any drain timing.
    let liver = random_matrix(63, 1100, 64, 44);
    let prostate = random_matrix(64, 600, 72, 8);
    let n = 48;
    let order: Vec<usize> = (0..n).collect();

    let golden = run_pool(vec![DeviceSpec::a100()], &order, 1, &liver, &prostate);

    for (sweep, pause_ms) in [(0u64, 0u64), (1, 2), (2, 5)] {
        let work = workload(
            (liver.nrows(), liver.ncols()),
            (prostate.nrows(), prostate.ncols()),
        );
        let mut engine = Engine::builder()
            .devices(vec![
                DeviceSpec::a100(),
                DeviceSpec::a100(),
                DeviceSpec::v100(),
                DeviceSpec::p100(),
            ])
            .build()
            .unwrap();
        engine
            .register_plan_with("liver", &liver, placed(2, 2))
            .unwrap();
        engine
            .register_plan_with("prostate", &prostate, placed(2, 2))
            .unwrap();

        let (outputs, report) = engine.serve(|client| {
            let results: Vec<std::sync::Mutex<Option<Vec<f64>>>> =
                work.iter().map(|_| std::sync::Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for chunk in order.chunks(order.len().div_ceil(4)) {
                    let results = &results;
                    let work = &work;
                    s.spawn(move || {
                        for &id in chunk {
                            let w = &work[id];
                            let r = client
                                .call(w.plan, w.kind, w.payload.clone())
                                .expect("request served across drains");
                            *results[id].lock().unwrap() = Some(r.output);
                        }
                    });
                }
                // Maintenance from the main thread, racing the
                // submitters: take the P100 out, then an A100, bring
                // the A100 back, and leave the P100 drained.
                let nap = || std::thread::sleep(std::time::Duration::from_millis(pause_ms));
                nap();
                client.drain_device(3).unwrap();
                nap();
                client.drain_device(0).unwrap();
                nap();
                client.undrain_device(0).unwrap();
            });
            results
                .into_iter()
                .map(|m| m.into_inner().unwrap().unwrap())
                .collect::<Vec<_>>()
        });

        let bits: Vec<Vec<u64>> = outputs
            .into_iter()
            .map(|v| v.into_iter().map(f64::to_bits).collect())
            .collect();
        assert_eq!(bits, golden, "sweep {sweep}: drain changed dose bytes");
        assert_eq!(report.completed, n as u64, "sweep {sweep}");
        assert_eq!(report.failed, 0, "sweep {sweep}");
        let drained: Vec<bool> = report.devices.iter().map(|d| d.drained).collect();
        assert_eq!(drained, [false, false, false, true], "sweep {sweep}");
        for plan in &report.plans {
            let placement = plan.placement.as_ref().expect("placed plans");
            assert!(
                placement.rebalances >= 3,
                "sweep {sweep}: {} re-dealt {} times, expected one per drain event",
                plan.name,
                placement.rebalances
            );
        }
    }
}

#[test]
fn sustained_skew_triggers_a_rebalance_without_changing_doses() {
    // One replica group sits behind a stalled device; the EWMA tracker
    // must notice the starved group and re-deal the plan (epoch bump)
    // while every dose still matches the unsharded golden.
    let liver = random_matrix(65, 700, 48, 32);
    let payloads: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            (0..liver.ncols())
                .map(|j| ((i * 101 + j * 13) as f64 * 0.011).sin().abs())
                .collect()
        })
        .collect();

    let golden: Vec<Vec<u64>> = {
        let mut engine = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        engine.register_plan("liver", &liver).unwrap();
        let (outs, _) = engine.serve(|c| {
            payloads
                .iter()
                .map(|p| {
                    c.call("liver", RequestKind::Dose, p.clone())
                        .unwrap()
                        .output
                })
                .collect::<Vec<_>>()
        });
        outs.into_iter()
            .map(|v| v.into_iter().map(f64::to_bits).collect())
            .collect()
    };

    let mut engine = Engine::builder()
        .devices(vec![DeviceSpec::a100(), DeviceSpec::a100()])
        .max_batch(1)
        .debug_device_delay_ms(1, 40.0)
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(1, 2))
        .unwrap();

    let (outputs, report) = engine.serve(|client| {
        let results: Vec<std::sync::Mutex<Option<Vec<f64>>>> = payloads
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let ids: Vec<usize> = (0..payloads.len()).collect();
        std::thread::scope(|s| {
            for chunk in ids.chunks(15) {
                let results = &results;
                let payloads = &payloads;
                s.spawn(move || {
                    for &id in chunk {
                        let r = client
                            .call("liver", RequestKind::Dose, payloads[id].clone())
                            .unwrap();
                        *results[id].lock().unwrap() = Some(r.output);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().unwrap())
            .collect::<Vec<_>>()
    });

    let bits: Vec<Vec<u64>> = outputs
        .into_iter()
        .map(|v| v.into_iter().map(f64::to_bits).collect())
        .collect();
    assert_eq!(bits, golden, "skew rebalance changed dose bytes");
    assert_eq!(report.completed, 60);
    let placement = report.plans[0].placement.as_ref().unwrap();
    assert!(
        placement.rebalances >= 1,
        "sustained skew must trigger at least one re-deal, saw {}",
        placement.rebalances
    );
}

#[test]
fn drain_rejects_out_of_range_and_emptying_the_pool() {
    let liver = random_matrix(66, 400, 32, 16);
    let mut engine = Engine::builder()
        .devices(vec![DeviceSpec::a100(), DeviceSpec::v100()])
        .build()
        .unwrap();
    engine
        .register_plan_with("liver", &liver, placed(1, 2))
        .unwrap();

    assert!(engine.drain_device(5).is_err(), "out-of-range drain");
    assert!(engine.undrain_device(5).is_err(), "out-of-range undrain");

    engine.drain_device(0).unwrap();
    assert!(engine.device_drained(0));
    assert_eq!(engine.plan_rebalances("liver"), Some(1));
    // Idempotent: a second drain of the same device is a no-op.
    engine.drain_device(0).unwrap();
    assert_eq!(engine.plan_rebalances("liver"), Some(1));

    // The last live device can never be drained.
    assert!(
        engine.drain_device(1).is_err(),
        "draining the last live device must fail"
    );
    assert!(!engine.device_drained(1));

    engine.undrain_device(0).unwrap();
    assert!(!engine.device_drained(0));
    assert_eq!(engine.plan_rebalances("liver"), Some(2));
    engine.drain_device(1).unwrap();
    assert!(engine.device_drained(1));
}
