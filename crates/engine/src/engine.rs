//! The serving engine: device pool, worker threads, batching dispatch.
//!
//! # Architecture
//!
//! One worker thread per simulated device, all popping from one bounded
//! FIFO ([`BoundedQueue`]). A worker that pops a request immediately
//! gathers up to `max_batch - 1` queued *compatible* requests (same plan,
//! same operation) and executes them as one multi-vector launch sequence
//! ([`DoseCalculator::compute_dose_batch`]), so concurrent traffic for
//! the same matrix shares its bytes.
//!
//! Exactly one worker drives each device, and each worker owns that
//! device's calculators exclusively — launches for one device never
//! interleave, matching the one-stream-per-GPU execution model.
//!
//! # Determinism (§II-D)
//!
//! Scheduling is nondeterministic: which worker pops a request, which
//! requests share its batch, and which device executes them all vary run
//! to run. The *dose does not*: the batched kernel performs per-vector
//! arithmetic identical to the single-vector kernel (fixed reduction
//! tree, fixed traversal order), and no functional result depends on the
//! `DeviceSpec`. The integration tests assert bitwise-identical doses
//! across pool sizes 1/4/8 and shuffled submission orders.
//!
//! [`BoundedQueue`]: crate::queue::BoundedQueue
//! [`DoseCalculator::compute_dose_batch`]: rt_core::DoseCalculator::compute_dose_batch

use crate::metrics::{
    BatchSample, BreakEvenSelection, BucketSelection, EngineReport, Metrics, PlacementSelection,
    PlanSelection, PlanShard, ReplicaGroupSelection,
};
use crate::policy::{ExecPolicy, ReplicaSpec, ShardSpec};
use crate::queue::BoundedQueue;
use rt_core::{
    choose_shard_count, modeled_whole_seconds, BreakEvenPoint, BucketWidths, DoseCalculator,
    KernelChoice, KernelSelect, RtError, MAX_SPMM_BATCH,
};
use rt_gpusim::{
    gather_estimate, snake_partition_subset, DeviceSpec, LaunchReport, ShardReport, ShardedReport,
};
use rt_sparse::{Csr, RowPlan, ShardPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which operation a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// `dose = A w` — payload is a spot-weight vector (`ncols` long).
    Dose,
    /// `g = A^T r` — payload is a voxel residual (`nrows` long).
    Gradient,
}

/// A completed request: the output vector plus the launch report of the
/// batch that computed it.
#[derive(Clone, Debug)]
pub struct EngineResponse {
    /// Output vector: dose per voxel ([`RequestKind::Dose`]) or gradient
    /// per spot ([`RequestKind::Gradient`]).
    pub output: Vec<f64>,
    /// Merged launch report of the batch this request rode in (shared by
    /// every request of the batch).
    pub report: LaunchReport,
    /// Device that executed the batch.
    pub device: String,
    /// How many requests shared the batch (1 = no batching win).
    pub batch_size: usize,
    /// Milliseconds this request waited in the queue before dispatch.
    pub queue_ms: f64,
    /// Per-shard breakdown when the plan ran row-sharded across the
    /// pool: per-device counters, the modeled gather cost of landing
    /// each shard's rows, and the critical-path modeled time. `None`
    /// for fully-resident plans.
    pub shards: Option<ShardedReport>,
}

/// One request's reply slot: filled exactly once by a worker, awaited by
/// [`Ticket::wait`].
struct ReplySlot {
    state: Mutex<Option<Result<EngineResponse, RtError>>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, outcome: Result<EngineResponse, RtError>) {
        *self.state.lock().unwrap() = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<EngineResponse, RtError> {
        let mut g = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = g.take() {
                return outcome;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// Handle to an in-flight request.
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.slot.state.lock().unwrap();
        f.debug_struct("Ticket")
            .field("completed", &state.is_some())
            .finish()
    }
}

impl Ticket {
    /// Blocks until a worker completes (or sheds) the request.
    pub fn wait(self) -> Result<EngineResponse, RtError> {
        self.slot.wait()
    }
}

struct EngineRequest {
    plan: usize,
    kind: RequestKind,
    payload: Vec<f64>,
    submitted: Instant,
    /// Queue-wait budget; the request is shed at dispatch if exceeded.
    budget_ms: Option<f64>,
    slot: Arc<ReplySlot>,
}

/// What sits in the serve queue: an admitted request, or one shard
/// sub-task of a fanned-out batch (pinned to the shard's home device).
enum WorkItem {
    Request(EngineRequest),
    Shard(ShardTask),
}

/// One shard's slice of a fanned-out batch. Only the worker for
/// `device` may pop it — the shard's sub-matrix is resident there.
struct ShardTask {
    shard: usize,
    device: usize,
    fan: Arc<FanOut>,
}

/// Barrier-free completion tracker for one fanned-out batch: each shard
/// scatters its disjoint row range into `outputs` as it lands (any
/// completion order), and whichever shard decrements `remaining` to zero
/// merges the reports and fills every reply slot. Cancellation
/// (deadline expiry seen at shard dispatch, or a shard execution error)
/// flips `cancelled` with a CAS — the winner fails every slot, later
/// shards skip execution, and no partially-merged dose can ever escape.
struct FanOut {
    plan: usize,
    /// Replica group executing this fan-out (indexes `epoch.groups` and
    /// the per-plan, per-epoch load table).
    group: usize,
    /// The placement epoch this fan-out was dealt under. Shard indices
    /// resolve against *these* groups even if a rebalance swaps the
    /// plan's current epoch mid-flight — the `Arc` keeps the old
    /// generation's calculators alive until the last shard retires.
    epoch: Arc<PlacementEpoch>,
    kind: RequestKind,
    /// The batch members with their queue-wait at fan-out time.
    requests: Vec<(EngineRequest, f64)>,
    outputs: Mutex<Vec<Vec<f64>>>,
    remaining: AtomicUsize,
    cancelled: AtomicBool,
    /// Per-shard launch reports, pushed in completion order and sorted
    /// by shard index at merge time (the merged report is deterministic
    /// even though the landing order is not).
    reports: Mutex<Vec<ShardReport>>,
    /// Earliest true deadline in the batch — `min_i(submitted_i +
    /// budget_i)` over members that carry a budget — paired with the
    /// binding member's budget. The whole fan-out is shed as a unit
    /// when it expires before every shard has dispatched
    /// (all-or-nothing keeps the dose invariant simple), but no member
    /// is ever shed earlier than its *own* deadline: a mate's tighter
    /// budget binds only from that mate's later submission time.
    deadline: Option<(Instant, f64)>,
}

/// Worker start gate: an engine built with `start_paused` holds its
/// workers here until [`EngineClient::resume`] (or serve teardown), which
/// makes admission-control behavior deterministic to test.
struct Gate {
    paused: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new(paused: bool) -> Self {
        Gate {
            paused: Mutex::new(paused),
            cv: Condvar::new(),
        }
    }

    fn wait_open(&self) {
        let mut g = self.paused.lock().unwrap();
        while *g {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn open(&self) {
        *self.paused.lock().unwrap() = false;
        self.cv.notify_all();
    }
}

/// EWMA smoothing factor for the per-group served-share tracker.
const SKEW_EWMA_ALPHA: f64 = 0.25;
/// Completed fan-outs an epoch must accumulate before a skew verdict.
const SKEW_MIN_COMPLETIONS: u64 = 16;
/// A group whose served share falls below `SKEW_SHARE_FLOOR / R` while
/// still holding outstanding work is starved behind a slow member.
const SKEW_SHARE_FLOOR: f64 = 0.1;

/// Replica-group load counters for one placement epoch.
struct GroupLoads {
    /// Fan-outs currently in flight per replica group.
    outstanding: Vec<u64>,
    /// Fan-outs completed per replica group (the current epoch's row is
    /// reported as `placement.groups[].served`).
    served: Vec<u64>,
}

/// Per-plan replica-group load tracking for one serve session, keyed by
/// placement epoch: an in-flight fan-out retires against the epoch that
/// dispatched it even after a rebalance swaps the plan's current
/// generation. One mutex per plan: group selection and the outstanding
/// increment happen in a single critical section, so two workers
/// dispatching the same plan concurrently can never both pick the
/// "idle" group.
struct PlanLoads {
    epochs: HashMap<u64, GroupLoads>,
    /// EWMA of each group's share of completed fan-outs on
    /// `ewma_epoch` (indicator update): least-loaded routing bounds the
    /// *outstanding* skew at one fan-out, so sustained starvation shows
    /// up in the served share — a group stuck behind a slow device
    /// decays toward zero here while it still holds outstanding work.
    ewma_served: Vec<f64>,
    /// The newest epoch this plan has dispatched on; the EWMA resets
    /// when a rebalance moves dispatch to a new generation.
    ewma_epoch: u64,
    /// Completed fan-outs on `ewma_epoch` (hysteresis for the skew
    /// verdict).
    epoch_completions: u64,
}

struct ServeState {
    queue: BoundedQueue<WorkItem>,
    gate: Gate,
    metrics: Metrics,
    /// One entry per registered plan (empty vectors for unplaced plans).
    loads: Vec<Mutex<PlanLoads>>,
}

/// One row-range shard's residency: a calculator holding just the
/// sub-matrix (no transpose — the gradient direction has its own shard
/// set), pinned to its home device.
struct ShardUnit {
    /// Home device index into the *pool* (shard `s` of a replica group
    /// lives on the group's `s % group_size`-th member).
    device: usize,
    row_start: usize,
    row_end: usize,
    nnz: u64,
    /// Result bytes one output vector of this shard ships over the
    /// interconnect at gather time (8 bytes per non-empty row; empty
    /// rows scatter nothing).
    gather_bytes: u64,
    calc: DoseCalculator,
}

/// One replica group of a placed plan: a disjoint device subset holding
/// a full copy of the plan as `K` row-range shards (dose direction) plus
/// `K` transpose shards (gradient direction).
struct ReplicaGroup {
    /// Absolute pool device indices, fastest (highest modeled bandwidth)
    /// first — `devices[0]` is the group's reference device for the
    /// break-even model.
    devices: Vec<usize>,
    /// Row-range shards of the dose matrix, in row order.
    dose_shards: Vec<ShardUnit>,
    /// Row-range shards of the transpose, sharded by *its* rows (= spot
    /// columns of the dose matrix) so gradient outputs are disjoint too.
    grad_shards: Vec<ShardUnit>,
    /// Break-even evidence table ([`ShardSpec::Auto`] only): the modeled
    /// single-request seconds at every candidate shard count.
    breakeven: Vec<BreakEvenPoint>,
}

impl ReplicaGroup {
    fn shards_for(&self, kind: RequestKind) -> &[ShardUnit] {
        match kind {
            RequestKind::Dose => &self.dose_shards,
            RequestKind::Gradient => &self.grad_shards,
        }
    }
}

/// One immutable generation of a placed plan's resolved placement: `R`
/// disjoint replica groups, each serving whole requests independently.
/// Fan-outs pin the epoch they were dispatched under (`Arc`), so a live
/// rebalance never pulls shard calculators out from under an in-flight
/// batch.
struct PlacementEpoch {
    /// Monotone generation counter (0 = the registration-time deal).
    epoch: u64,
    groups: Vec<ReplicaGroup>,
}

/// A placed plan's placement slot: the current epoch behind a mutex'd
/// `Arc` (the lock is held only to clone or swap the pointer — never
/// across a shard build), plus the rebalance event counter reported as
/// `placement.rebalances`.
struct PlacementCell {
    /// Whether the per-group shard counts came from the break-even model
    /// rather than being forced.
    auto_shards: bool,
    current: Mutex<Arc<PlacementEpoch>>,
    rebalances: AtomicU64,
}

impl PlacementCell {
    fn snapshot(&self) -> Arc<PlacementEpoch> {
        Arc::clone(&self.current.lock().unwrap())
    }
}

/// Host-side copies of a placed plan's matrices, kept so a live
/// rebalance (drain, undrain, or sustained load skew) can rebuild shard
/// calculators over a new device subset. The autotuned widths are
/// pinned on the [`Plan`] from the whole matrix/transpose, so a re-deal
/// can never change the arithmetic — only where it runs.
struct PlacementSource {
    matrix: Csr<f64, u32>,
    transpose: Csr<f64, u32>,
    widths: Option<BucketWidths>,
    grad_widths: Option<BucketWidths>,
}

struct Plan {
    name: String,
    nrows: usize,
    ncols: usize,
    /// One calculator per pool device (`calcs[i]` lives on `devices[i]`),
    /// each holding the matrix and its transpose. Empty for placed
    /// plans — those hold only their per-group shards, cutting
    /// per-device residency.
    calcs: Vec<DoseCalculator>,
    /// Replica × shard placement (`None` for the classic fully-resident
    /// path — [`ShardSpec::Off`] with [`ReplicaSpec::Auto`]).
    placement: Option<PlacementCell>,
    /// Matrices a rebalance rebuilds shards from (placed plans only).
    source: Option<PlacementSource>,
    /// The policy this plan was registered under.
    policy: ExecPolicy,
    /// The autotuner's decision for this plan, made once at
    /// registration; every calculator runs at `choice.tile_width` (or,
    /// for partitioned plans, at the per-bucket widths in
    /// `choice.buckets`). Width pinning is what keeps placed doses
    /// bitwise identical to unsharded: every shard calculator inherits
    /// the whole-matrix decision, so each row's arithmetic is a function
    /// of its length alone, not of the shard or replica it landed in.
    choice: KernelChoice,
    /// The autotuner's independent decision for the gradient direction,
    /// made once at registration by running the same strategy on the
    /// transpose. Pinned from the whole transpose before any shard
    /// split, so sharded gradients stay bitwise identical to unsharded
    /// for any R/K/pool/completion order — the backward mirror of
    /// `choice`.
    grad_choice: KernelChoice,
    /// Row-partition execution plan, built once at registration and
    /// shared by every per-device calculator (partitioned plans only).
    row_plan: Option<Arc<RowPlan>>,
    /// Row-partition plan of the **transpose** (empty beamlet rows
    /// dropped, length-bucketed), built once at registration and shared
    /// by every per-device calculator's gradient path (partitioned plans
    /// only).
    grad_row_plan: Option<Arc<RowPlan>>,
}

impl Plan {
    /// Device bytes this plan pins on pool device `dev` under its
    /// current placement epoch.
    fn resident_bytes_on(&self, dev: usize) -> u64 {
        match &self.placement {
            Some(cell) => cell
                .snapshot()
                .groups
                .iter()
                .flat_map(|g| g.dose_shards.iter().chain(&g.grad_shards))
                .filter(|u| u.device == dev)
                .map(|u| u.calc.resident_bytes())
                .sum(),
            None => self.calcs[dev].resident_bytes(),
        }
    }
}

/// Configures an [`Engine`]; obtained from [`Engine::builder`].
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    devices: Vec<DeviceSpec>,
    queue_capacity: usize,
    max_batch: usize,
    threads_per_block: u32,
    default_deadline_ms: Option<f64>,
    max_request_len: Option<usize>,
    start_paused: bool,
    default_policy: ExecPolicy,
    debug_delays: Vec<(usize, f64)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            devices: Vec::new(),
            queue_capacity: 64,
            max_batch: MAX_SPMM_BATCH,
            threads_per_block: 512,
            default_deadline_ms: None,
            max_request_len: None,
            start_paused: false,
            default_policy: ExecPolicy::default(),
            debug_delays: Vec::new(),
        }
    }
}

impl EngineBuilder {
    /// Adds one device to the pool (one worker thread each).
    pub fn device(mut self, spec: DeviceSpec) -> Self {
        self.devices.push(spec);
        self
    }

    /// Adds several devices at once.
    pub fn devices(mut self, specs: impl IntoIterator<Item = DeviceSpec>) -> Self {
        self.devices.extend(specs);
        self
    }

    /// Bounded request-queue capacity (default 64; minimum 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Most requests a worker may merge into one launch sequence
    /// (default [`MAX_SPMM_BATCH`]; minimum 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Execution configuration for every plan's kernels (default 512).
    pub fn threads_per_block(mut self, tpb: u32) -> Self {
        self.threads_per_block = tpb;
        self
    }

    /// Queue-wait budget applied to requests submitted without an
    /// explicit deadline.
    pub fn default_deadline_ms(mut self, budget_ms: f64) -> Self {
        self.default_deadline_ms = Some(budget_ms);
        self
    }

    /// Rejects payloads longer than `max` at admission
    /// ([`RtError::RequestTooLarge`]).
    pub fn max_request_len(mut self, max: usize) -> Self {
        self.max_request_len = Some(max);
        self
    }

    /// Holds workers at serve start until [`EngineClient::resume`] —
    /// lets tests fill the queue deterministically.
    pub fn start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Execution policy applied to plans registered through
    /// [`Engine::register_plan`] (default [`ExecPolicy::default`]: the
    /// classic fully-resident engine). Per-plan policies via
    /// [`Engine::register_plan_with`] override this.
    pub fn default_policy(mut self, policy: ExecPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Test hook: delays worker `device` by `delay_ms` before it serves
    /// each popped shard sub-task, simulating a slow pool member so
    /// deadline-cancellation under fan-out is deterministic to test.
    #[doc(hidden)]
    pub fn debug_device_delay_ms(mut self, device: usize, delay_ms: f64) -> Self {
        self.debug_delays.push((device, delay_ms));
        self
    }

    /// Validates the configuration.
    pub fn build(self) -> Result<Engine, RtError> {
        if self.devices.is_empty() {
            return Err(RtError::EmptyDevicePool);
        }
        let tpb = self.threads_per_block;
        if !(32..=1024).contains(&tpb) || !tpb.is_multiple_of(32) {
            return Err(RtError::InvalidThreadsPerBlock(tpb));
        }
        self.default_policy.validate()?;
        let pool = self.devices.len();
        Ok(Engine {
            devices: self.devices,
            plans: Vec::new(),
            plan_index: HashMap::new(),
            drained: (0..pool).map(|_| AtomicBool::new(false)).collect(),
            rebalance_lock: Mutex::new(()),
            queue_capacity: self.queue_capacity,
            max_batch: self.max_batch,
            threads_per_block: tpb,
            default_deadline_ms: self.default_deadline_ms,
            max_request_len: self.max_request_len,
            start_paused: self.start_paused,
            default_policy: self.default_policy,
            debug_delays: self.debug_delays,
        })
    }
}

/// A multi-plan dose-calculation serving engine over a pool of simulated
/// devices.
///
/// ```
/// use rt_engine::{Engine, RequestKind};
/// use rt_gpusim::DeviceSpec;
/// use rt_sparse::Csr;
///
/// let m = Csr::from_rows(2, &[vec![(0, 1.0)], vec![(1, 0.5)]]).unwrap();
/// let mut engine = Engine::builder()
///     .device(DeviceSpec::a100())
///     .device(DeviceSpec::v100())
///     .build()
///     .unwrap();
/// engine.register_plan("demo", &m).unwrap();
/// let (dose, report) = engine.serve(|client| {
///     client
///         .call("demo", RequestKind::Dose, vec![1.0, 1.0])
///         .unwrap()
///         .output
/// });
/// assert_eq!(dose.len(), 2);
/// assert_eq!(report.completed, 1);
/// ```
pub struct Engine {
    devices: Vec<DeviceSpec>,
    plans: Vec<Plan>,
    /// Name → index into `plans`: submits resolve plans by name on the
    /// hot path, so the lookup must not rescan the plan list.
    plan_index: HashMap<String, usize>,
    /// Per-device drain flags. A drained device takes no new requests
    /// and no shard homes in new placement epochs, but still executes
    /// shard sub-tasks pinned to it by an older epoch — in-flight
    /// fan-outs finish where they started.
    drained: Vec<AtomicBool>,
    /// Serializes drain/undrain/skew re-deals so two triggers can never
    /// interleave their build-then-swap sequences.
    rebalance_lock: Mutex<()>,
    queue_capacity: usize,
    max_batch: usize,
    threads_per_block: u32,
    default_deadline_ms: Option<f64>,
    max_request_len: Option<usize>,
    start_paused: bool,
    default_policy: ExecPolicy,
    debug_delays: Vec<(usize, f64)>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field(
                "devices",
                &self.devices.iter().map(|d| d.name).collect::<Vec<_>>(),
            )
            .field("plans", &self.plan_names())
            .field("queue_capacity", &self.queue_capacity)
            .field("max_batch", &self.max_batch)
            .finish()
    }
}

impl Engine {
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Devices in the pool, in worker order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Registered plan names, in registration order.
    pub fn plan_names(&self) -> Vec<&str> {
        self.plans.iter().map(|p| p.name.as_str()).collect()
    }

    /// `(nvoxels, nspots)` of a registered plan.
    pub fn plan_dims(&self, name: &str) -> Option<(usize, usize)> {
        self.plan(name).map(|p| (p.nrows, p.ncols))
    }

    fn plan(&self, name: &str) -> Option<&Plan> {
        self.plan_index.get(name).map(|&i| &self.plans[i])
    }

    /// The tile width a registered plan's kernels run at.
    pub fn plan_tile_width(&self, name: &str) -> Option<u32> {
        self.plan(name).map(|p| p.choice.tile_width)
    }

    /// The full autotuner decision recorded for a registered plan.
    pub fn plan_choice(&self, name: &str) -> Option<&KernelChoice> {
        self.plan(name).map(|p| &p.choice)
    }

    /// The row-partition plan a registered plan dispatches through, if
    /// the engine was built with [`KernelSelect::Partitioned`].
    pub fn plan_row_plan(&self, name: &str) -> Option<&Arc<RowPlan>> {
        self.plan(name).and_then(|p| p.row_plan.as_ref())
    }

    /// The tile width a registered plan's gradient (transpose) kernels
    /// run at — selected independently of the dose direction.
    pub fn plan_grad_tile_width(&self, name: &str) -> Option<u32> {
        self.plan(name).map(|p| p.grad_choice.tile_width)
    }

    /// The autotuner decision recorded for a registered plan's gradient
    /// direction (the same strategy run on the transpose).
    pub fn plan_grad_choice(&self, name: &str) -> Option<&KernelChoice> {
        self.plan(name).map(|p| &p.grad_choice)
    }

    /// The transpose row-partition plan a registered plan's gradients
    /// dispatch through, if the policy selects [`KernelSelect::Partitioned`].
    pub fn plan_grad_row_plan(&self, name: &str) -> Option<&Arc<RowPlan>> {
        self.plan(name).and_then(|p| p.grad_row_plan.as_ref())
    }

    /// The default execution policy plans registered through
    /// [`Engine::register_plan`] get.
    pub fn default_policy(&self) -> ExecPolicy {
        self.default_policy
    }

    /// The execution policy a registered plan was placed under.
    pub fn plan_policy(&self, name: &str) -> Option<ExecPolicy> {
        self.plan(name).map(|p| p.policy)
    }

    /// Dose-direction shards per replica group a registered plan
    /// actually got under its current placement epoch (forced counts
    /// are clamped to the plan's rows); `None` when the plan runs the
    /// classic fully-resident path.
    pub fn plan_shard_count(&self, name: &str) -> Option<usize> {
        self.plan(name)
            .and_then(|p| p.placement.as_ref())
            .map(|cell| cell.snapshot().groups[0].dose_shards.len())
    }

    /// Replica groups a registered plan is currently dealt across;
    /// `None` when the plan runs the classic fully-resident path.
    pub fn plan_replica_count(&self, name: &str) -> Option<usize> {
        self.plan(name)
            .and_then(|p| p.placement.as_ref())
            .map(|cell| cell.snapshot().groups.len())
    }

    /// Rebalance events (drain, undrain, or skew-triggered re-deals) a
    /// registered plan's placement has absorbed; `None` for unplaced
    /// plans.
    pub fn plan_rebalances(&self, name: &str) -> Option<u64> {
        self.plan(name)
            .and_then(|p| p.placement.as_ref())
            .map(|cell| cell.rebalances.load(Ordering::SeqCst))
    }

    /// The break-even evidence table recorded for a registered plan's
    /// first replica group under its current placement epoch
    /// ([`ShardSpec::Auto`] plans only; empty for forced shard counts,
    /// `None` for unplaced plans).
    pub fn plan_breakeven(&self, name: &str) -> Option<Vec<BreakEvenPoint>> {
        self.plan(name)
            .and_then(|p| p.placement.as_ref())
            .map(|cell| cell.snapshot().groups[0].breakeven.clone())
    }

    /// Interior shard cut points of a registered plan's first replica
    /// group (`K - 1` row indices; empty for `K = 1`, `None` for
    /// unplaced plans). These are what
    /// [`rt_sparse::save_csr_with_cuts`] persists so a snapshot cold
    /// start can skip re-sharding.
    pub fn plan_shard_cuts(&self, name: &str) -> Option<Vec<usize>> {
        self.plan(name)
            .and_then(|p| p.placement.as_ref())
            .map(|cell| {
                cell.snapshot().groups[0]
                    .dose_shards
                    .iter()
                    .skip(1)
                    .map(|u| u.row_start)
                    .collect()
            })
    }

    /// Registers `matrix` under the plan name `name` with the engine's
    /// default policy ([`EngineBuilder::default_policy`]); see
    /// [`Engine::register_plan_with`].
    pub fn register_plan(&mut self, name: &str, matrix: &Csr<f64, u32>) -> Result<(), RtError> {
        self.register_plan_inner(name, matrix, self.default_policy, None)
    }

    /// Registers `matrix` under the plan name `name` with a per-plan
    /// execution policy.
    ///
    /// Registration is when the engine autotunes. The policy's
    /// [`KernelSelect`] picks the plan's tile width once (from row
    /// statistics, or by probing candidate widths on the first pool
    /// device); every per-device or per-shard calculator is built to
    /// run at it — pinned widths are what make placed doses bitwise
    /// identical to unsharded ones.
    ///
    /// An unplaced policy ([`ShardSpec::Off`] + [`ReplicaSpec::Auto`],
    /// the default) uploads the matrix and its transpose to every
    /// device. Any other combination *places* the plan: the pool is
    /// snake-dealt by modeled bandwidth into `R` disjoint replica
    /// groups, and each group holds the plan as `K` throughput-weighted
    /// row-range shards (`K` per the policy, or the break-even model
    /// under [`ShardSpec::Auto`]). Returns
    /// [`RtError::InvalidPlacement`] when a forced replica count
    /// exceeds the pool.
    pub fn register_plan_with(
        &mut self,
        name: &str,
        matrix: &Csr<f64, u32>,
        policy: ExecPolicy,
    ) -> Result<(), RtError> {
        self.register_plan_inner(name, matrix, policy, None)
    }

    fn register_plan_inner(
        &mut self,
        name: &str,
        matrix: &Csr<f64, u32>,
        policy: ExecPolicy,
        stored_cuts: Option<&[usize]>,
    ) -> Result<(), RtError> {
        if self.plan(name).is_some() {
            return Err(RtError::DuplicatePlan(name.to_string()));
        }
        policy.validate()?;
        let choice =
            policy
                .kernel_select
                .choose(&self.devices[0], matrix, self.threads_per_block)?;
        // Partitioned strategies: build the row plan once, apply the
        // per-bucket widths the autotuner picked, and share the plan
        // across every per-device calculator. (Bucket membership is a
        // function of row length, so sharded sub-matrices reuse the same
        // widths against their own row plans.)
        let partition = if matches!(policy.kernel_select, KernelSelect::Partitioned(_)) {
            Some((Arc::new(RowPlan::from_csr(matrix)), choice.bucket_widths()))
        } else {
            None
        };
        // The gradient direction gets its own decision: the same
        // strategy run on the transpose, whose row-length distribution
        // (beamlet rows) is unrelated to the dose direction's. Built
        // once here so the widths — and, for partitioned strategies, the
        // transpose RowPlan — are pinned from the whole transpose before
        // any shard split.
        let transposed = matrix.transpose();
        let grad_choice =
            policy
                .kernel_select
                .choose(&self.devices[0], &transposed, self.threads_per_block)?;
        let grad_partition = if matches!(policy.kernel_select, KernelSelect::Partitioned(_)) {
            Some((
                Arc::new(RowPlan::from_csr(&transposed)),
                grad_choice.bucket_widths(),
            ))
        } else {
            None
        };
        let unplaced = policy.shards == ShardSpec::Off && policy.replicas == ReplicaSpec::Auto;
        let (calcs, placement, source) = if unplaced {
            let calcs = self
                .devices
                .iter()
                .map(|d| {
                    let mut b = DoseCalculator::builder(matrix)
                        .device(d.clone())
                        .threads_per_block(self.threads_per_block)
                        .tile_width(choice.tile_width)
                        .grad_tile_width(grad_choice.tile_width)
                        .with_transpose();
                    if let Some((plan, widths)) = &partition {
                        b = b.partitioned_with_plan(plan.clone(), *widths);
                    }
                    if let Some((plan, widths)) = &grad_partition {
                        b = b.grad_partitioned_with_plan(plan.clone(), *widths);
                    }
                    b.build()
                })
                .collect::<Result<Vec<_>, _>>()?;
            (calcs, None, None)
        } else {
            let widths = partition.as_ref().map(|(_, w)| *w);
            let grad_widths = grad_partition.as_ref().map(|(_, w)| *w);
            let groups = self.place_groups(
                matrix,
                &transposed,
                &policy,
                &choice,
                &grad_choice,
                widths,
                grad_widths,
                stored_cuts,
                &self.live_devices(),
            )?;
            let cell = PlacementCell {
                auto_shards: policy.shards == ShardSpec::Auto,
                current: Mutex::new(Arc::new(PlacementEpoch { epoch: 0, groups })),
                rebalances: AtomicU64::new(0),
            };
            let source = PlacementSource {
                matrix: matrix.clone(),
                transpose: transposed.clone(),
                widths,
                grad_widths,
            };
            (Vec::new(), Some(cell), Some(source))
        };
        self.plan_index.insert(name.to_string(), self.plans.len());
        self.plans.push(Plan {
            name: name.to_string(),
            nrows: matrix.nrows(),
            ncols: matrix.ncols(),
            calcs,
            placement,
            source,
            policy,
            choice,
            grad_choice,
            row_plan: partition.map(|(plan, _)| plan),
            grad_row_plan: grad_partition.map(|(plan, _)| plan),
        });
        Ok(())
    }

    /// Resolves a placed policy into replica groups with resident shard
    /// calculators, dealt over the `live` device subset (the whole pool
    /// at registration; the surviving members during a drain re-deal).
    /// The break-even model re-runs against the live members, so a
    /// shrunken group may legitimately pick a smaller `K` than the full
    /// pool would have.
    #[allow(clippy::too_many_arguments)] // both directions' pinned decisions
    fn place_groups(
        &self,
        matrix: &Csr<f64, u32>,
        transpose: &Csr<f64, u32>,
        policy: &ExecPolicy,
        choice: &KernelChoice,
        grad_choice: &KernelChoice,
        widths: Option<BucketWidths>,
        grad_widths: Option<BucketWidths>,
        stored_cuts: Option<&[usize]>,
        live: &[usize],
    ) -> Result<Vec<ReplicaGroup>, RtError> {
        let pool = self.devices.len();
        let live_n = live.len();
        let weights: Vec<f64> = self.devices.iter().map(|d| d.effective_dram_bw()).collect();
        let nonempty = nonempty_rows(matrix);
        let r = match policy.replicas {
            ReplicaSpec::Fixed(r) => {
                if r > pool {
                    return Err(RtError::InvalidPlacement(format!(
                        "{r} replica groups requested but the pool has {pool} devices"
                    )));
                }
                // A transient drain can shrink the live pool below a
                // forced R: clamp — the undrain re-deal restores full
                // replication.
                r.min(live_n)
            }
            ReplicaSpec::Auto => {
                // Derive R from the shard count the plan would take on
                // the live pool: enough groups that each can hold a
                // complete shard set.
                let k_target = match policy.shards {
                    ShardSpec::Off => 1,
                    ShardSpec::Fixed(k) => k,
                    ShardSpec::Auto => {
                        let sorted: Vec<DeviceSpec> = snake_partition_subset(&weights, live, 1)
                            .remove(0)
                            .into_iter()
                            .map(|d| self.devices[d].clone())
                            .collect();
                        let whole = self.whole_seconds_for(&sorted[0], matrix, choice);
                        choose_shard_count(&sorted, whole, nonempty, live_n).k
                    }
                };
                (live_n / k_target.min(live_n)).max(1)
            }
        };
        // Snake-deal the live devices by modeled bandwidth so the R
        // groups are matched in strength; each group lists its members
        // fastest first.
        let memberships = snake_partition_subset(&weights, live, r);
        // The gradient runs `A^T r` as a forward SpMV on the transpose,
        // so the transpose shards by its own rows and the gradient
        // outputs stay disjoint. It runs at the gradient direction's own
        // pinned decision (width table chosen on the whole transpose,
        // never the dose partition — the transpose has its own shape),
        // matching the fully-resident gradient path bit for bit.
        let mut groups = Vec::with_capacity(memberships.len());
        for members in memberships {
            let (k, breakeven) = match policy.shards {
                ShardSpec::Off => (1, Vec::new()),
                ShardSpec::Fixed(k) => (k, Vec::new()),
                ShardSpec::Auto => {
                    let specs: Vec<DeviceSpec> =
                        members.iter().map(|&d| self.devices[d].clone()).collect();
                    let whole = self.whole_seconds_for(&specs[0], matrix, choice);
                    let be = choose_shard_count(&specs, whole, nonempty, specs.len());
                    (be.k, be.candidates)
                }
            };
            let dose_shards =
                self.build_group_units(matrix, &members, k, choice, widths, stored_cuts)?;
            let grad_shards =
                self.build_group_units(transpose, &members, k, grad_choice, grad_widths, None)?;
            groups.push(ReplicaGroup {
                devices: members,
                dose_shards,
                grad_shards,
                breakeven,
            });
        }
        Ok(groups)
    }

    /// Pool devices not currently drained.
    fn live_devices(&self) -> Vec<usize> {
        (0..self.devices.len())
            .filter(|&d| !self.drained[d].load(Ordering::SeqCst))
            .collect()
    }

    /// Whether pool device `d` is currently drained.
    pub fn device_drained(&self, d: usize) -> bool {
        self.drained
            .get(d)
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// Marks pool device `d` ineligible for new work: its worker stops
    /// popping requests, no new placement epoch homes shards on it, and
    /// every placed plan currently holding shards there is re-dealt
    /// over the surviving devices. Shard sub-tasks already pinned by an
    /// older epoch still execute, so in-flight fan-outs finish where
    /// they started — and because every epoch's widths are pinned from
    /// the whole matrix, the dose bytes are identical either way.
    ///
    /// Idempotent. Fails with [`RtError::InvalidPlacement`] when `d` is
    /// out of range or draining it would leave the pool empty.
    pub fn drain_device(&self, d: usize) -> Result<(), RtError> {
        if d >= self.devices.len() {
            return Err(RtError::InvalidPlacement(format!(
                "drain target {d} out of range for a {}-device pool",
                self.devices.len()
            )));
        }
        let _serialize = self.rebalance_lock.lock().unwrap();
        if self.drained[d].load(Ordering::SeqCst) {
            return Ok(());
        }
        let live: Vec<usize> = (0..self.devices.len())
            .filter(|&i| i != d && !self.drained[i].load(Ordering::SeqCst))
            .collect();
        if live.is_empty() {
            return Err(RtError::InvalidPlacement(format!(
                "cannot drain device {d}: it is the last live device in the pool"
            )));
        }
        self.drained[d].store(true, Ordering::SeqCst);
        for idx in 0..self.plans.len() {
            let uses_d = self.plans[idx].placement.as_ref().is_some_and(|cell| {
                cell.snapshot()
                    .groups
                    .iter()
                    .any(|g| g.devices.contains(&d))
            });
            if uses_d {
                self.redeal_plan(idx, &live)?;
            }
        }
        Ok(())
    }

    /// Returns a drained device to service and re-deals every placed
    /// plan over the grown pool. Idempotent; fails with
    /// [`RtError::InvalidPlacement`] when `d` is out of range.
    pub fn undrain_device(&self, d: usize) -> Result<(), RtError> {
        if d >= self.devices.len() {
            return Err(RtError::InvalidPlacement(format!(
                "undrain target {d} out of range for a {}-device pool",
                self.devices.len()
            )));
        }
        let _serialize = self.rebalance_lock.lock().unwrap();
        if !self.drained[d].swap(false, Ordering::SeqCst) {
            return Ok(());
        }
        let live = self.live_devices();
        for idx in 0..self.plans.len() {
            if self.plans[idx].placement.is_some() {
                self.redeal_plan(idx, &live)?;
            }
        }
        Ok(())
    }

    /// Skew-triggered re-deal: `try_lock` so a worker thread never
    /// blocks behind a drain already in progress (the drain's own
    /// re-deal supersedes this one anyway).
    fn rebalance_plan(&self, plan_idx: usize) {
        let Ok(_serialize) = self.rebalance_lock.try_lock() else {
            return;
        };
        let live = self.live_devices();
        // Build errors can't reach here (the same inputs placed cleanly
        // at registration), but a worker must never panic.
        let _ = self.redeal_plan(plan_idx, &live);
    }

    /// Re-deals one placed plan's replica groups over `live` and swaps
    /// the new epoch in. The shard build runs *before* the cell lock is
    /// taken, so dispatchers are never blocked behind calculator
    /// construction; callers hold `rebalance_lock`.
    fn redeal_plan(&self, plan_idx: usize, live: &[usize]) -> Result<(), RtError> {
        let plan = &self.plans[plan_idx];
        let (Some(cell), Some(src)) = (&plan.placement, &plan.source) else {
            return Ok(());
        };
        let groups = self.place_groups(
            &src.matrix,
            &src.transpose,
            &plan.policy,
            &plan.choice,
            &plan.grad_choice,
            src.widths,
            src.grad_widths,
            None,
            live,
        )?;
        let mut cur = cell.current.lock().unwrap();
        *cur = Arc::new(PlacementEpoch {
            epoch: cur.epoch + 1,
            groups,
        });
        cell.rebalances.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Splits `matrix` into `k` row-range shards weighted by each home
    /// device's modeled bandwidth (shard `s` homes on the group's
    /// `s % group_size`-th member) and builds one calculator per shard.
    /// Stored snapshot cuts short-circuit the split when they match the
    /// resolved shard count. With `widths`, each shard dispatches
    /// through the bucketed partition of its own sub-matrix at the
    /// plan's pinned per-bucket widths.
    fn build_group_units(
        &self,
        matrix: &Csr<f64, u32>,
        members: &[usize],
        k: usize,
        choice: &KernelChoice,
        widths: Option<BucketWidths>,
        stored_cuts: Option<&[usize]>,
    ) -> Result<Vec<ShardUnit>, RtError> {
        let n = members.len();
        let plan = match stored_cuts {
            Some(cuts) if cuts.len() + 1 == k => ShardPlan::from_cuts(matrix, cuts),
            _ => {
                let group_weights: Vec<f64> = (0..k)
                    .map(|i| self.devices[members[i % n]].effective_dram_bw())
                    .collect();
                ShardPlan::build_weighted(matrix, &group_weights)
            }
        };
        plan.shards()
            .iter()
            .map(|shard| {
                let device = members[shard.index % n];
                let mut b = DoseCalculator::builder(&shard.matrix)
                    .device(self.devices[device].clone())
                    .threads_per_block(self.threads_per_block)
                    .tile_width(choice.tile_width);
                if let Some(w) = widths {
                    b = b.partitioned_with_plan(shard.plan.clone(), w);
                }
                Ok(ShardUnit {
                    device,
                    row_start: shard.row_start,
                    row_end: shard.row_end,
                    nnz: shard.nnz() as u64,
                    gather_bytes: shard.gather_bytes(),
                    calc: b.build()?,
                })
            })
            .collect()
    }

    /// Modeled seconds of one whole-matrix SpMV on `reference`, the
    /// break-even model's dominant input. A measured probe
    /// ([`KernelSelect::MeasuredProbe`]) already timed the chosen width
    /// on the first pool device, so that figure is rescaled to the
    /// reference by modeled bandwidth; other strategies fall back to the
    /// analytic traffic estimate ([`modeled_whole_seconds`], binary16
    /// values + `u32` column indices).
    fn whole_seconds_for(
        &self,
        reference: &DeviceSpec,
        matrix: &Csr<f64, u32>,
        choice: &KernelChoice,
    ) -> f64 {
        match choice
            .candidates
            .iter()
            .find(|c| c.tile_width == choice.tile_width)
        {
            Some(c) => {
                c.modeled_seconds * self.devices[0].effective_dram_bw()
                    / reference.effective_dram_bw()
            }
            None => modeled_whole_seconds(
                reference,
                matrix.nrows(),
                matrix.ncols(),
                matrix.nnz(),
                2,
                4,
            ),
        }
    }

    /// Loads an RTDM snapshot from disk and registers it with the
    /// engine's default policy ([`RtError::Snapshot`] /
    /// [`RtError::Sparse`] on malformed files).
    pub fn register_plan_snapshot(
        &mut self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), RtError> {
        self.register_plan_snapshot_with(name, path, self.default_policy)
    }

    /// Loads an RTDM snapshot from disk and registers it with a
    /// per-plan execution policy. A v2 snapshot written by
    /// [`rt_sparse::save_csr_with_cuts`] carries its shard cut points;
    /// when they match the shard count the policy resolves to, the cold
    /// start reuses them and skips the nnz-prefix re-shard sweep.
    pub fn register_plan_snapshot_with(
        &mut self,
        name: &str,
        path: impl AsRef<std::path::Path>,
        policy: ExecPolicy,
    ) -> Result<(), RtError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)
            .map_err(|e| RtError::Snapshot(format!("{}: {e}", path.display())))?;
        let (matrix, cuts): (Csr<f64, u32>, _) = rt_sparse::load_csr_with_cuts(&mut file)?;
        self.register_plan_inner(name, &matrix, policy, cuts.as_deref())
    }

    /// Runs a serve session: spawns one worker per device, hands the
    /// closure an [`EngineClient`], and on closure return drains the
    /// queue, joins the workers and snapshots the [`EngineReport`].
    pub fn serve<R>(&self, f: impl FnOnce(&EngineClient<'_>) -> R) -> (R, EngineReport) {
        let names: Vec<&str> = self.devices.iter().map(|d| d.name).collect();
        let state = ServeState {
            queue: BoundedQueue::new(self.queue_capacity),
            gate: Gate::new(self.start_paused),
            metrics: Metrics::new(&names),
            loads: self
                .plans
                .iter()
                .map(|p| {
                    let (groups, epoch) = p.placement.as_ref().map_or((0, 0), |cell| {
                        let cur = cell.snapshot();
                        (cur.groups.len(), cur.epoch)
                    });
                    Mutex::new(PlanLoads {
                        epochs: HashMap::new(),
                        ewma_served: vec![
                            if groups > 0 { 1.0 / groups as f64 } else { 0.0 };
                            groups
                        ],
                        ewma_epoch: epoch,
                        epoch_completions: 0,
                    })
                })
                .collect(),
        };
        let out = std::thread::scope(|s| {
            for dev in 0..self.devices.len() {
                let state = &state;
                s.spawn(move || self.worker(dev, state));
            }
            let client = EngineClient {
                engine: self,
                state: &state,
            };
            let r = f(&client);
            // End of session: no more submissions; wake paused workers so
            // they drain what remains and exit.
            state.queue.close();
            state.gate.open();
            r
        });
        let mut report = state
            .metrics
            .report(self.queue_capacity, state.queue.max_depth());
        report.plans = self
            .plans
            .iter()
            .enumerate()
            .map(|(plan_idx, p)| {
                let placed = p.placement.as_ref().map(|cell| cell.snapshot());
                PlanSelection {
                    name: p.name.clone(),
                    tile_width: p.choice.tile_width,
                    mode: p.choice.mode.to_string(),
                    avg_nnz_nonempty: p.choice.avg_nnz_nonempty,
                    grad_tile_width: p.grad_choice.tile_width,
                    buckets: p
                        .choice
                        .buckets
                        .iter()
                        .filter(|bc| bc.rows > 0)
                        .map(|bc| BucketSelection {
                            min_len: bc.min_len,
                            max_len: bc.max_len,
                            rows: bc.rows,
                            tile_width: bc.tile_width,
                            lanes_active_frac: bc.lanes_active_frac,
                        })
                        .collect(),
                    grad_buckets: p
                        .grad_choice
                        .buckets
                        .iter()
                        .filter(|bc| bc.rows > 0)
                        .map(|bc| BucketSelection {
                            min_len: bc.min_len,
                            max_len: bc.max_len,
                            rows: bc.rows,
                            tile_width: bc.tile_width,
                            lanes_active_frac: bc.lanes_active_frac,
                        })
                        .collect(),
                    shards: placed
                        .as_ref()
                        .map(|pl| {
                            pl.groups[0]
                                .dose_shards
                                .iter()
                                .enumerate()
                                .map(|(i, u)| PlanShard {
                                    shard: i,
                                    device: self.devices[u.device].name.to_string(),
                                    row_start: u.row_start as u64,
                                    rows: (u.row_end - u.row_start) as u64,
                                    nnz: u.nnz,
                                    resident_bytes: u.calc.resident_bytes(),
                                })
                                .collect()
                        })
                        .unwrap_or_default(),
                    placement: placed.as_ref().map(|pl| {
                        // Served tallies are per-epoch; the report shows the
                        // current epoch's row (zeros if nothing dispatched
                        // on it yet).
                        let served: Vec<u64> = state.loads[plan_idx]
                            .lock()
                            .unwrap()
                            .epochs
                            .get(&pl.epoch)
                            .map(|e| e.served.clone())
                            .unwrap_or_else(|| vec![0; pl.groups.len()]);
                        PlacementSelection {
                            replicas: pl.groups.len(),
                            shards_per_replica: pl.groups[0].dose_shards.len(),
                            auto_shards: p.placement.as_ref().is_some_and(|cell| cell.auto_shards),
                            rebalances: p
                                .placement
                                .as_ref()
                                .map_or(0, |cell| cell.rebalances.load(Ordering::SeqCst)),
                            groups: pl
                                .groups
                                .iter()
                                .enumerate()
                                .map(|(g, grp)| ReplicaGroupSelection {
                                    group: g,
                                    devices: grp
                                        .devices
                                        .iter()
                                        .map(|&d| self.devices[d].name.to_string())
                                        .collect(),
                                    shards: grp.dose_shards.len(),
                                    served: served[g],
                                })
                                .collect(),
                            breakeven: pl.groups[0]
                                .breakeven
                                .iter()
                                .map(|b| BreakEvenSelection {
                                    k: b.k,
                                    modeled_seconds: b.modeled_seconds,
                                })
                                .collect(),
                        }
                    }),
                }
            })
            .collect();
        for (dev, d) in report.devices.iter_mut().enumerate() {
            d.resident_bytes = self.plans.iter().map(|p| p.resident_bytes_on(dev)).sum();
            d.drained = self.drained[dev].load(Ordering::SeqCst);
        }
        (out, report)
    }

    /// One device's worker loop: pop a request (any, unless this device
    /// is drained) or a shard sub-task pinned to this device, then
    /// dispatch it. A drained worker still serves its pinned shard
    /// sub-tasks — older placement epochs may have homed shards here,
    /// and their in-flight fan-outs must finish where they started.
    fn worker(&self, dev: usize, state: &ServeState) {
        loop {
            state.gate.wait_open();
            let Some(item) = state.queue.pop_matching(|it| match it {
                WorkItem::Request(_) => !self.drained[dev].load(Ordering::SeqCst),
                WorkItem::Shard(t) => t.device == dev,
            }) else {
                return;
            };
            match item {
                WorkItem::Request(first) => self.dispatch_request(dev, first, state),
                WorkItem::Shard(task) => self.run_shard(dev, task, state),
            }
        }
    }

    /// Gathers batch mates, sheds expired requests, then either executes
    /// on this device's fully-resident calculator or fans the batch out
    /// into per-shard sub-tasks across the pool.
    fn dispatch_request(&self, dev: usize, first: EngineRequest, state: &ServeState) {
        let (plan_idx, kind) = (first.plan, first.kind);
        let mut batch = vec![first];
        if self.max_batch > 1 {
            let mates = state.queue.drain_matching(
                self.max_batch - 1,
                |it| matches!(it, WorkItem::Request(r) if r.plan == plan_idx && r.kind == kind),
            );
            batch.extend(mates.into_iter().map(|it| match it {
                WorkItem::Request(r) => r,
                WorkItem::Shard(_) => unreachable!("predicate admits requests only"),
            }));
        }

        let dispatch = Instant::now();
        let mut sample = empty_sample(dev);
        let mut live = Vec::with_capacity(batch.len());
        for req in batch {
            let waited_ms = ms(dispatch - req.submitted);
            match req.budget_ms {
                Some(budget) if waited_ms > budget => {
                    sample.shed_deadline += 1;
                    req.slot.complete(Err(RtError::DeadlineExceeded {
                        budget_ms: budget,
                        waited_ms,
                    }));
                }
                _ => live.push((req, waited_ms)),
            }
        }

        if live.is_empty() {
            state.metrics.record_batch(sample);
            return;
        }
        let plan = &self.plans[plan_idx];
        if let Some(cell) = &plan.placement {
            // Pin the placement epoch for this fan-out before group
            // selection: a rebalance swapping the cell after this point
            // only affects *later* dispatches.
            let epoch = cell.snapshot();
            let r = epoch.groups.len();
            // Least-loaded replica group, ties to the lowest index.
            // Selection and the outstanding increment share one critical
            // section so concurrent dispatchers never double-book the
            // idle group.
            let group = {
                let mut loads = state.loads[plan_idx].lock().unwrap();
                if epoch.epoch > loads.ewma_epoch {
                    // First dispatch on a new generation: reset the
                    // skew tracker to a balanced prior.
                    loads.ewma_epoch = epoch.epoch;
                    loads.ewma_served = vec![1.0 / r as f64; r];
                    loads.epoch_completions = 0;
                }
                let entry = loads
                    .epochs
                    .entry(epoch.epoch)
                    .or_insert_with(|| GroupLoads {
                        outstanding: vec![0; r],
                        served: vec![0; r],
                    });
                let g = (0..r)
                    .min_by_key(|&g| entry.outstanding[g])
                    .expect("a placement has at least one group");
                entry.outstanding[g] += 1;
                g
            };
            // The binding deadline is the earliest member's *true*
            // deadline (`submitted_i + budget_i`), never the oldest
            // submission paired with the batch's minimum budget — a
            // mate's tight budget binds only from that mate's own,
            // later submission time.
            let deadline = live
                .iter()
                .filter_map(|(req, _)| {
                    req.budget_ms
                        .map(|b| (req.submitted + Duration::from_secs_f64(b / 1e3), b))
                })
                .min_by(|a, b| a.0.cmp(&b.0));
            let shards = epoch.groups[group].shards_for(kind);
            let fan = Arc::new(FanOut {
                plan: plan_idx,
                group,
                epoch: Arc::clone(&epoch),
                kind,
                outputs: Mutex::new(vec![
                    vec![
                        0.0;
                        match kind {
                            RequestKind::Dose => plan.nrows,
                            RequestKind::Gradient => plan.ncols,
                        }
                    ];
                    live.len()
                ]),
                remaining: AtomicUsize::new(shards.len()),
                cancelled: AtomicBool::new(false),
                reports: Mutex::new(Vec::with_capacity(shards.len())),
                deadline,
                requests: live,
            });
            // Register the fan-out *before* its sub-tasks exist so no
            // worker can observe closed+empty and exit in between.
            state.queue.inflight_inc();
            state
                .queue
                .push_all_internal(shards.iter().enumerate().map(|(s, u)| {
                    WorkItem::Shard(ShardTask {
                        shard: s,
                        device: u.device,
                        fan: Arc::clone(&fan),
                    })
                }));
            state.metrics.record_batch(sample);
            return;
        }

        let calc = &plan.calcs[dev];
        let inputs: Vec<&[f64]> = live.iter().map(|(r, _)| r.payload.as_slice()).collect();
        let result = match kind {
            RequestKind::Dose => calc.compute_dose_batch(&inputs),
            RequestKind::Gradient => calc.compute_gradient_batch(&inputs),
        };
        match result {
            Ok(batch_result) => {
                sample.launches = 1;
                sample.batches = 1;
                sample.batch_size = live.len() as u64;
                sample.completed = live.len() as u64;
                sample.modeled_seconds = batch_result.report.estimate.seconds;
                let report = batch_result.report;
                for ((req, waited_ms), output) in live.into_iter().zip(batch_result.outputs) {
                    sample
                        .timings
                        .push((waited_ms, ms(req.submitted.elapsed())));
                    req.slot.complete(Ok(EngineResponse {
                        output,
                        report: report.clone(),
                        device: self.devices[dev].name.to_string(),
                        batch_size: sample.batch_size as usize,
                        queue_ms: waited_ms,
                        shards: None,
                    }));
                }
            }
            Err(e) => {
                // Unreachable through validated admission, but a
                // worker must never panic: fail the whole batch.
                sample.failed = live.len() as u64;
                for (req, _) in live {
                    req.slot.complete(Err(e.clone()));
                }
            }
        }
        state.metrics.record_batch(sample);
    }

    /// Executes one shard sub-task on its home device: deadline check,
    /// batched sub-SpMV, disjoint scatter, and — when this shard is the
    /// last to land — report merge and reply completion.
    fn run_shard(&self, dev: usize, task: ShardTask, state: &ServeState) {
        if let Some(&(_, delay_ms)) = self.debug_delays.iter().find(|(d, _)| *d == dev) {
            std::thread::sleep(Duration::from_secs_f64(delay_ms / 1e3));
        }
        let fan = &task.fan;
        let plan = &self.plans[fan.plan];
        // Resolve the shard against the epoch this fan-out was dealt
        // under, not the plan's current placement — a rebalance may have
        // swapped the cell while this sub-task sat in the queue.
        let unit = &fan.epoch.groups[fan.group].shards_for(fan.kind)[task.shard];
        let mut sample = empty_sample(dev);

        // A deadline that expired while sub-tasks sat behind a slow
        // device sheds the *whole* fan-out: the CAS winner fails every
        // slot, everyone else (including shards already computed) just
        // retires. A partially-merged dose can never be returned.
        if !fan.cancelled.load(Ordering::SeqCst) {
            if let Some((deadline, binding_budget)) = fan.deadline {
                if Instant::now() > deadline
                    && fan
                        .cancelled
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    sample.shed_deadline = fan.requests.len() as u64;
                    for (req, _) in &fan.requests {
                        // Each member reports *its own* budget; a mate
                        // that carried none inherits the binding
                        // member's.
                        req.slot.complete(Err(RtError::DeadlineExceeded {
                            budget_ms: req.budget_ms.unwrap_or(binding_budget),
                            waited_ms: ms(req.submitted.elapsed()),
                        }));
                    }
                }
            }
        }
        if fan.cancelled.load(Ordering::SeqCst) {
            if fan.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.retire_fan(fan, state, false);
            }
            state.metrics.record_batch(sample);
            return;
        }

        let inputs: Vec<&[f64]> = fan
            .requests
            .iter()
            .map(|(r, _)| r.payload.as_slice())
            .collect();
        // Both directions run as a *forward* batched SpMV: gradient
        // shards hold rows of the transpose.
        match unit.calc.compute_dose_batch(&inputs) {
            Ok(br) => {
                {
                    let mut out = fan.outputs.lock().unwrap();
                    for (v, part) in br.outputs.iter().enumerate() {
                        out[v][unit.row_start..unit.row_end].copy_from_slice(part);
                    }
                }
                // One *physical* launch sequence on this device; the
                // fan-out's request batch is counted once, at merge
                // time, so sharding never inflates the batch metrics.
                sample.launches = 1;
                sample.modeled_seconds = br.report.estimate.seconds;
                let spec = &self.devices[unit.device];
                let gather_bytes = unit.gather_bytes * inputs.len() as u64;
                fan.reports.lock().unwrap().push(ShardReport {
                    shard: task.shard,
                    device: spec.name.to_string(),
                    row_start: unit.row_start as u64,
                    rows: (unit.row_end - unit.row_start) as u64,
                    nnz: unit.nnz,
                    dispatch: if unit.calc.is_partitioned() {
                        "bucketed".to_string()
                    } else {
                        format!("w={}", unit.calc.tile_width())
                    },
                    stats: br.report.stats.clone(),
                    estimate: br.report.estimate.clone(),
                    gather_bytes,
                    gather_seconds: gather_estimate(spec, gather_bytes),
                });
                if fan.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let completed = !fan.cancelled.load(Ordering::SeqCst);
                    self.retire_fan(fan, state, completed);
                    if completed {
                        self.complete_fan(plan, fan, &mut sample);
                    }
                }
            }
            Err(e) => {
                if fan
                    .cancelled
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    sample.failed = fan.requests.len() as u64;
                    for (req, _) in &fan.requests {
                        req.slot.complete(Err(e.clone()));
                    }
                }
                if fan.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    self.retire_fan(fan, state, false);
                }
            }
        }
        state.metrics.record_batch(sample);
    }

    /// Last shard of a fan-out retired (completed, shed, or failed):
    /// release the queue's in-flight hold and return the replica
    /// group's load slot in the epoch it was dealt under, counting
    /// completed fan-outs toward its served tally — and, on the current
    /// epoch, feed the EWMA skew tracker. A group whose served share
    /// has decayed below `SKEW_SHARE_FLOOR / R` while it still holds
    /// outstanding work is starved behind a slow member: the plan is
    /// re-dealt over the live devices (epoch swap), which also resets
    /// the tracker.
    fn retire_fan(&self, fan: &FanOut, state: &ServeState, completed: bool) {
        state.queue.inflight_dec();
        let skewed = {
            let mut loads = state.loads[fan.plan].lock().unwrap();
            let entry = loads
                .epochs
                .get_mut(&fan.epoch.epoch)
                .expect("dispatch created this epoch's load row");
            entry.outstanding[fan.group] -= 1;
            if completed {
                entry.served[fan.group] += 1;
            }
            if completed && fan.epoch.epoch == loads.ewma_epoch && loads.ewma_served.len() >= 2 {
                loads.epoch_completions += 1;
                let group = fan.group;
                for (g, share) in loads.ewma_served.iter_mut().enumerate() {
                    let hit = if g == group { 1.0 } else { 0.0 };
                    *share = (1.0 - SKEW_EWMA_ALPHA) * *share + SKEW_EWMA_ALPHA * hit;
                }
                let r = loads.ewma_served.len() as f64;
                let entry = &loads.epochs[&fan.epoch.epoch];
                loads.epoch_completions >= SKEW_MIN_COMPLETIONS
                    && loads
                        .ewma_served
                        .iter()
                        .enumerate()
                        .any(|(g, &share)| share < SKEW_SHARE_FLOOR / r && entry.outstanding[g] > 0)
            } else {
                false
            }
        };
        if skewed {
            self.rebalance_plan(fan.plan);
        }
    }

    /// Last shard landed: sort the per-shard reports into row order,
    /// merge counters, model the critical path (slowest compute + gather
    /// over the interconnect), and complete every reply slot.
    fn complete_fan(&self, plan: &Plan, fan: &Arc<FanOut>, sample: &mut BatchSample) {
        let mut reports = std::mem::take(&mut *fan.reports.lock().unwrap());
        reports.sort_by_key(|r| r.shard);
        // Engine calculators always run the production profile.
        let kernel = "Half/double";
        let sharded = ShardedReport::new(kernel, reports);
        // The merged LaunchReport carries accumulated counters with the
        // critical-path time, bound/frac_peak_bw taken from the shard on
        // that path.
        let critical = sharded
            .shards
            .iter()
            .max_by(|a, b| {
                (a.estimate.seconds + a.gather_seconds)
                    .total_cmp(&(b.estimate.seconds + b.gather_seconds))
            })
            .expect("a fan-out has at least one shard");
        let mut estimate = critical.estimate.clone();
        estimate.seconds = sharded.modeled_seconds;
        if estimate.seconds > 0.0 {
            estimate.gflops = sharded.stats.flops as f64 / estimate.seconds / 1e9;
            estimate.dram_bw_gbps = (sharded.stats.dram_read_bytes + sharded.stats.dram_write_bytes)
                as f64
                / estimate.seconds
                / 1e9;
        }
        let device = sharded.devices.join("+");
        // The merged report carries the direction-correct width: the
        // gradient direction runs at its own pinned decision.
        let fan_width = match fan.kind {
            RequestKind::Dose => plan.choice.tile_width,
            RequestKind::Gradient => plan.grad_choice.tile_width,
        };
        let report = LaunchReport::new(kernel, device.clone(), sharded.stats.clone(), estimate)
            .with_tile_width(fan_width);
        let outputs = std::mem::take(&mut *fan.outputs.lock().unwrap());
        sample.completed = fan.requests.len() as u64;
        // The fan-out's request batch counts once — here, at merge —
        // regardless of how many shards executed it.
        sample.batches = 1;
        sample.batch_size = fan.requests.len() as u64;
        for ((req, waited_ms), output) in fan.requests.iter().zip(outputs) {
            sample
                .timings
                .push((*waited_ms, ms(req.submitted.elapsed())));
            req.slot.complete(Ok(EngineResponse {
                output,
                report: report.clone(),
                device: device.clone(),
                batch_size: fan.requests.len(),
                queue_ms: *waited_ms,
                shards: Some(sharded.clone()),
            }));
        }
    }
}

/// A zeroed [`BatchSample`] for worker `dev`.
fn empty_sample(dev: usize) -> BatchSample {
    BatchSample {
        device: dev,
        completed: 0,
        shed_deadline: 0,
        failed: 0,
        launches: 0,
        batches: 0,
        batch_size: 0,
        modeled_seconds: 0.0,
        timings: Vec::new(),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Rows that scatter result bytes at gather time (empty rows ship
/// nothing over the interconnect).
fn nonempty_rows(matrix: &Csr<f64, u32>) -> usize {
    matrix.row_ptr().windows(2).filter(|w| w[1] > w[0]).count()
}

/// Submission handle passed to the [`Engine::serve`] closure. Cheap to
/// share by reference across submitter threads.
pub struct EngineClient<'a> {
    engine: &'a Engine,
    state: &'a ServeState,
}

impl EngineClient<'_> {
    /// Validates a submission and builds the queue entry.
    fn prepare(
        &self,
        plan: &str,
        kind: RequestKind,
        payload: Vec<f64>,
        budget_ms: Option<f64>,
    ) -> Result<EngineRequest, RtError> {
        let idx = *self
            .engine
            .plan_index
            .get(plan)
            .ok_or_else(|| RtError::UnknownPlan(plan.to_string()))?;
        let p = &self.engine.plans[idx];
        if let Some(max) = self.engine.max_request_len {
            if payload.len() > max {
                return Err(RtError::RequestTooLarge {
                    len: payload.len(),
                    max,
                });
            }
        }
        let (what, expected) = match kind {
            RequestKind::Dose => ("weights", p.ncols),
            RequestKind::Gradient => ("residual", p.nrows),
        };
        if payload.len() != expected {
            return Err(RtError::DimensionMismatch {
                what,
                expected,
                actual: payload.len(),
            });
        }
        Ok(EngineRequest {
            plan: idx,
            kind,
            payload,
            submitted: Instant::now(),
            budget_ms: budget_ms.or(self.engine.default_deadline_ms),
            slot: ReplySlot::new(),
        })
    }

    fn enqueue(&self, req: EngineRequest, blocking: bool) -> Result<Ticket, RtError> {
        let ticket = Ticket {
            slot: Arc::clone(&req.slot),
        };
        let item = WorkItem::Request(req);
        let pushed = if blocking {
            self.state.queue.push(item)
        } else {
            self.state.queue.try_push(item)
        };
        match pushed {
            Ok(()) => {
                self.state.metrics.note_submitted();
                Ok(ticket)
            }
            Err(e) => {
                if matches!(e, RtError::QueueFull { .. }) {
                    self.state.metrics.note_rejected_full();
                }
                Err(e)
            }
        }
    }

    /// Submits a request, blocking while the queue is full
    /// (backpressure).
    pub fn submit(
        &self,
        plan: &str,
        kind: RequestKind,
        payload: Vec<f64>,
    ) -> Result<Ticket, RtError> {
        let req = self.prepare(plan, kind, payload, None)?;
        self.enqueue(req, true)
    }

    /// Like [`EngineClient::submit`] with an explicit queue-wait budget:
    /// the request is shed with [`RtError::DeadlineExceeded`] if no
    /// worker dispatches it within `budget_ms`.
    pub fn submit_with_deadline(
        &self,
        plan: &str,
        kind: RequestKind,
        payload: Vec<f64>,
        budget_ms: f64,
    ) -> Result<Ticket, RtError> {
        let req = self.prepare(plan, kind, payload, Some(budget_ms))?;
        self.enqueue(req, true)
    }

    /// Non-blocking submit: sheds with [`RtError::QueueFull`] instead of
    /// waiting for queue space.
    pub fn try_submit(
        &self,
        plan: &str,
        kind: RequestKind,
        payload: Vec<f64>,
    ) -> Result<Ticket, RtError> {
        let req = self.prepare(plan, kind, payload, None)?;
        self.enqueue(req, false)
    }

    /// Synchronous round trip: submit and wait for the response.
    pub fn call(
        &self,
        plan: &str,
        kind: RequestKind,
        payload: Vec<f64>,
    ) -> Result<EngineResponse, RtError> {
        self.submit(plan, kind, payload)?.wait()
    }

    /// Drains pool device `d` for maintenance mid-session: no new
    /// requests or shard homes land on it, every placed plan holding
    /// shards there is re-dealt over the surviving devices, and
    /// in-flight fan-outs finish on their old placement epoch. See
    /// [`Engine::drain_device`].
    pub fn drain_device(&self, d: usize) -> Result<(), RtError> {
        self.engine.drain_device(d)
    }

    /// Returns a drained device to service and re-deals every placed
    /// plan over the grown pool. See [`Engine::undrain_device`].
    pub fn undrain_device(&self, d: usize) -> Result<(), RtError> {
        self.engine.undrain_device(d)
    }

    /// Releases workers held by [`EngineBuilder::start_paused`].
    pub fn resume(&self) {
        self.state.gate.open();
    }

    /// Stops admission: subsequent submissions fail with
    /// [`RtError::EngineShutdown`]; already-queued requests still drain.
    pub fn shutdown(&self) {
        self.state.queue.close();
        self.state.gate.open();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> Csr<f64, u32> {
        Csr::from_rows(
            3,
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![(1, 0.5)],
                vec![(0, 0.25), (1, 1.5), (2, 0.125)],
                vec![(2, 3.0)],
            ],
        )
        .unwrap()
    }

    fn engine_one_device() -> Engine {
        let mut e = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        e.register_plan("demo", &small_matrix()).unwrap();
        e
    }

    #[test]
    fn builder_requires_devices() {
        assert_eq!(
            Engine::builder().build().unwrap_err(),
            RtError::EmptyDevicePool
        );
        assert_eq!(
            Engine::builder()
                .device(DeviceSpec::a100())
                .threads_per_block(100)
                .build()
                .unwrap_err(),
            RtError::InvalidThreadsPerBlock(100)
        );
    }

    #[test]
    fn duplicate_and_unknown_plans() {
        let mut e = engine_one_device();
        assert_eq!(
            e.register_plan("demo", &small_matrix()).unwrap_err(),
            RtError::DuplicatePlan("demo".to_string())
        );
        assert_eq!(e.plan_names(), vec!["demo"]);
        assert_eq!(e.plan_dims("demo"), Some((4, 3)));
        assert_eq!(e.plan_dims("nope"), None);
        let (err, _) = e.serve(|c| c.call("nope", RequestKind::Dose, vec![1.0; 3]).unwrap_err());
        assert_eq!(err, RtError::UnknownPlan("nope".to_string()));
    }

    #[test]
    fn dose_and_gradient_round_trip() {
        let e = engine_one_device();
        let ((dose, grad), report) = e.serve(|c| {
            let d = c
                .call("demo", RequestKind::Dose, vec![1.0, 1.0, 1.0])
                .unwrap();
            let g = c
                .call("demo", RequestKind::Gradient, vec![1.0, 0.0, 1.0, 0.0])
                .unwrap();
            assert_eq!(d.device, "A100");
            assert!(d.report.estimate.seconds > 0.0);
            assert!(d.queue_ms >= 0.0);
            (d.output, g.output)
        });
        assert_eq!(dose.len(), 4);
        assert_eq!(grad.len(), 3);
        assert_eq!(report.completed, 2);
        assert_eq!(report.submitted, 2);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn dimension_and_size_validation() {
        let mut e = Engine::builder()
            .device(DeviceSpec::a100())
            .max_request_len(3)
            .build()
            .unwrap();
        e.register_plan("demo", &small_matrix()).unwrap();
        let _ = e.serve(|c| {
            assert_eq!(
                c.submit("demo", RequestKind::Dose, vec![0.0; 2])
                    .unwrap_err(),
                RtError::DimensionMismatch {
                    what: "weights",
                    expected: 3,
                    actual: 2
                }
            );
            // The gradient payload is 4 long, over the 3-element limit.
            assert_eq!(
                c.submit("demo", RequestKind::Gradient, vec![0.0; 4])
                    .unwrap_err(),
                RtError::RequestTooLarge { len: 4, max: 3 }
            );
        });
    }

    #[test]
    fn shutdown_stops_admission_but_drains() {
        let e = engine_one_device();
        let (outcome, report) = e.serve(|c| {
            let t = c.submit("demo", RequestKind::Dose, vec![1.0; 3]).unwrap();
            c.shutdown();
            assert_eq!(
                c.submit("demo", RequestKind::Dose, vec![1.0; 3])
                    .unwrap_err(),
                RtError::EngineShutdown
            );
            t.wait()
        });
        assert!(outcome.is_ok());
        assert_eq!(report.completed, 1);
        assert_eq!(report.submitted, 1);
    }

    #[test]
    fn paused_engine_batches_deterministically() {
        let mut e = Engine::builder()
            .device(DeviceSpec::a100())
            .max_batch(8)
            .start_paused()
            .build()
            .unwrap();
        e.register_plan("demo", &small_matrix()).unwrap();
        let (outputs, report) = e.serve(|c| {
            let tickets: Vec<Ticket> = (0..8)
                .map(|i| {
                    c.submit("demo", RequestKind::Dose, vec![i as f64 * 0.1; 3])
                        .unwrap()
                })
                .collect();
            c.resume();
            tickets
                .into_iter()
                .map(|t| t.wait().unwrap())
                .collect::<Vec<_>>()
        });
        // All 8 queued before any worker ran: one launch, batch of 8.
        assert_eq!(report.launches, 1);
        assert_eq!(report.max_batch, 8);
        assert_eq!(report.completed, 8);
        assert_eq!(report.queue_max_depth, 8);
        assert!((report.avg_batch() - 8.0).abs() < 1e-12);
        for r in &outputs {
            assert_eq!(r.batch_size, 8);
        }
    }
}
