//! `rt-engine` — a multi-plan dose-calculation serving engine.
//!
//! A clinic runs many optimizations at once: several planners iterating
//! on different patients, each issuing a forward dose SpMV and a gradient
//! back-projection per iteration. This crate serves that traffic on a
//! pool of simulated GPUs:
//!
//! * **Device pool** — one worker thread per [`DeviceSpec`]
//!   (e.g. 2×A100 + 1×V100), each owning exclusive per-plan
//!   [`DoseCalculator`]s for its device.
//! * **Multi-plan registry** — [`Engine::register_plan`] uploads a dose
//!   deposition matrix (and its transpose) to every device; requests name
//!   their plan.
//! * **Request batching** — a worker that dequeues a request gathers
//!   queued compatible requests (same plan, same operation) into one
//!   multi-vector launch, sharing the matrix bytes
//!   ([`rt_core::vector_csr_spmm`]).
//! * **Row-sharded multi-device dispatch** —
//!   [`EngineBuilder::shards`] splits each plan into nnz-balanced
//!   row-range shards, one pool device each (~K× less resident memory
//!   per device), and one request then executes cooperatively across
//!   the whole pool: the dispatching worker fans it out into per-shard
//!   sub-tasks, each home device computes its rows, and a barrier-free
//!   tracker scatters the disjoint results into one bitwise-exact dose.
//! * **Admission control** — a bounded queue: [`EngineClient::submit`]
//!   blocks when full (backpressure), [`EngineClient::try_submit`] sheds
//!   with [`RtError::QueueFull`]; per-request deadlines shed stale work
//!   at dispatch with [`RtError::DeadlineExceeded`].
//! * **Observability** — every response carries a [`LaunchReport`]
//!   (counters + modeled time); each serve session produces an
//!   [`EngineReport`] (throughput, latency, queue depth) exportable as
//!   JSON.
//!
//! **Determinism (§II-D):** per-plan doses are bitwise identical
//! regardless of worker count, request interleaving, batch composition,
//! or device assignment — the property that makes serving clinically
//! acceptable at all. See `tests/determinism.rs`.
//!
//! Everything is `std`: scoped threads, `Mutex` + `Condvar`. No async
//! runtime, no extra dependencies.
//!
//! [`DeviceSpec`]: rt_gpusim::DeviceSpec
//! [`DoseCalculator`]: rt_core::DoseCalculator
//! [`LaunchReport`]: rt_gpusim::LaunchReport
//! [`RtError::QueueFull`]: rt_core::RtError::QueueFull
//! [`RtError::DeadlineExceeded`]: rt_core::RtError::DeadlineExceeded

mod engine;
mod metrics;
mod optim;
mod queue;

pub use engine::{Engine, EngineBuilder, EngineClient, EngineResponse, RequestKind, Ticket};
pub use metrics::{BucketSelection, DeviceReport, EngineReport, PlanSelection, PlanShard};
pub use optim::ServedDoseEngine;
pub use rt_core::{KernelChoice, KernelSelect, PartitionStrategy, RtError};
pub use rt_gpusim::{ShardReport, ShardedReport};
