//! `rt-engine` — a multi-plan dose-calculation serving engine.
//!
//! A clinic runs many optimizations at once: several planners iterating
//! on different patients, each issuing a forward dose SpMV and a gradient
//! back-projection per iteration. This crate serves that traffic on a
//! pool of simulated GPUs:
//!
//! * **Device pool** — one worker thread per [`DeviceSpec`]
//!   (e.g. 2×A100 + 1×V100), each owning exclusive per-plan
//!   [`DoseCalculator`]s for its device.
//! * **Multi-plan registry** — [`Engine::register_plan`] uploads a dose
//!   deposition matrix (and its transpose) to every device; requests name
//!   their plan.
//! * **Request batching** — a worker that dequeues a request gathers
//!   queued compatible requests (same plan, same operation) into one
//!   multi-vector launch, sharing the matrix bytes
//!   ([`rt_core::vector_csr_spmm`]).
//! * **Per-plan execution policy** — [`Engine::register_plan_with`]
//!   takes an [`ExecPolicy`] (kernel selection × sharding × replication),
//!   so plans on the same engine can run completely different layouts.
//! * **Replica × shard placement** — a placed plan is dealt across `R`
//!   disjoint replica groups of the pool (snake-dealt by modeled device
//!   bandwidth, so groups are matched in strength), each holding `K`
//!   throughput-weighted row-range shards. `K` comes from a break-even
//!   model ([`rt_core::choose_shard_count`]) under [`ShardSpec::Auto`] —
//!   small plans stay whole, large plans split until the next shard's
//!   launch + gather overhead outweighs its bandwidth. Dispatch picks
//!   the least-loaded group per request; within a group the request fans
//!   out into per-shard sub-tasks whose disjoint results scatter into
//!   one bitwise-exact dose.
//! * **Admission control** — a bounded queue: [`EngineClient::submit`]
//!   blocks when full (backpressure), [`EngineClient::try_submit`] sheds
//!   with [`RtError::QueueFull`]; per-request deadlines shed stale work
//!   at dispatch with [`RtError::DeadlineExceeded`].
//! * **Observability** — every response carries a [`LaunchReport`]
//!   (counters + modeled time); each serve session produces an
//!   [`EngineReport`] (throughput, latency, queue depth) exportable as
//!   JSON.
//!
//! **Determinism (§II-D):** per-plan doses are bitwise identical
//! regardless of worker count, request interleaving, batch composition,
//! or device assignment — the property that makes serving clinically
//! acceptable at all. See `tests/determinism.rs`.
//!
//! Everything is `std`: scoped threads, `Mutex` + `Condvar`. No async
//! runtime, no extra dependencies.
//!
//! [`DeviceSpec`]: rt_gpusim::DeviceSpec
//! [`DoseCalculator`]: rt_core::DoseCalculator
//! [`LaunchReport`]: rt_gpusim::LaunchReport
//! [`RtError::QueueFull`]: rt_core::RtError::QueueFull
//! [`RtError::DeadlineExceeded`]: rt_core::RtError::DeadlineExceeded

mod engine;
mod metrics;
mod optim;
mod policy;
mod queue;

pub use engine::{Engine, EngineBuilder, EngineClient, EngineResponse, RequestKind, Ticket};
pub use metrics::{
    BreakEvenSelection, BucketSelection, DeviceReport, EngineReport, PlacementSelection,
    PlanSelection, PlanShard, ReplicaGroupSelection,
};
pub use optim::ServedDoseEngine;
pub use policy::{ExecPolicy, ExecPolicyBuilder, ReplicaSpec, ShardSpec};
pub use rt_core::{BreakEvenPoint, KernelChoice, KernelSelect, PartitionStrategy, RtError};
pub use rt_gpusim::{ShardReport, ShardedReport};
