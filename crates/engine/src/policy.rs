//! Per-plan execution policy: every knob that decides *how* a plan runs.
//!
//! Before this module, execution configuration was scattered across the
//! engine builder (`shards`, `kernel_select`) and applied uniformly to
//! every plan. [`ExecPolicy`] collapses those knobs into one validated
//! value that travels with the plan — [`crate::Engine::register_plan_with`]
//! accepts a policy per plan, so a small prostate matrix can stay fully
//! resident while an 800k-row liver beam on the same engine is placed as
//! replicas × shards.
//!
//! The three axes:
//!
//! * **kernel selection** ([`rt_core::KernelSelect`]) — how tile widths
//!   are picked at registration (fixed width, heuristic, measured probe,
//!   bucketed partition).
//! * **sharding** ([`ShardSpec`]) — whether one request is split into
//!   row-range shards executed cooperatively, and whether the shard
//!   count is forced or chosen by the break-even model
//!   ([`rt_core::choose_shard_count`]).
//! * **replication** ([`ReplicaSpec`]) — how many independent copies of
//!   the plan's residency the pool holds. Each replica group serves
//!   whole requests; more groups mean more concurrent requests, fewer
//!   mean more devices cooperating on each one.
//!
//! Construction is builder-style and `Result`-based like the engine
//! itself: [`ExecPolicy::builder`] validates tile widths and counts at
//! [`ExecPolicyBuilder::build`], so an invalid policy is unrepresentable
//! downstream.

use rt_core::{KernelSelect, RtError};

/// How (and whether) a plan is row-sharded within each replica group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardSpec {
    /// No sharding: the plan is fully resident per device (classic
    /// serving; each request runs on one device). The default.
    #[default]
    Off,
    /// Let the break-even model pick the shard count per replica group —
    /// small plans resolve to 1 shard, large plans split until the next
    /// shard's launch + gather overhead outweighs its bandwidth.
    Auto,
    /// Force exactly this many shards per replica group (clamped per
    /// plan to its row count). Counts above the group size stack shards
    /// round-robin on the group's devices.
    Fixed(usize),
}

/// How many replica groups a placed plan is dealt across.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplicaSpec {
    /// Derive the group count from the resolved shard count: the pool is
    /// divided into `pool / K` groups so every group can hold a full
    /// shard set. With [`ShardSpec::Off`] this is the classic
    /// fully-resident engine. The default.
    #[default]
    Auto,
    /// Force exactly this many replica groups (must not exceed the
    /// pool size; checked at plan registration).
    Fixed(usize),
}

/// A validated per-plan execution policy; see the module docs.
///
/// Obtained from [`ExecPolicy::builder`]; the default policy
/// (`ExecPolicy::default()`) is heuristic width selection, no sharding,
/// auto replicas — exactly the pre-policy engine's behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    pub(crate) kernel_select: KernelSelect,
    pub(crate) shards: ShardSpec,
    pub(crate) replicas: ReplicaSpec,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            kernel_select: KernelSelect::Heuristic,
            shards: ShardSpec::Off,
            replicas: ReplicaSpec::Auto,
        }
    }
}

impl ExecPolicy {
    pub fn builder() -> ExecPolicyBuilder {
        ExecPolicyBuilder {
            policy: ExecPolicy::default(),
        }
    }

    /// Tile-width selection strategy applied at plan registration.
    pub fn kernel_select(&self) -> KernelSelect {
        self.kernel_select
    }

    pub fn shards(&self) -> ShardSpec {
        self.shards
    }

    pub fn replicas(&self) -> ReplicaSpec {
        self.replicas
    }

    /// Re-checks the invariants [`ExecPolicyBuilder::build`] enforces
    /// (the engine revalidates at registration so a policy constructed
    /// or mutated outside the builder cannot smuggle invalid fields
    /// through).
    pub(crate) fn validate(&self) -> Result<(), RtError> {
        if let KernelSelect::Fixed(w) = self.kernel_select {
            if !rt_gpusim::TILE_WIDTHS.contains(&w) {
                return Err(RtError::InvalidTileWidth(w));
            }
        }
        if self.shards == ShardSpec::Fixed(0) {
            return Err(RtError::InvalidPlacement(
                "shard count must be at least 1".to_string(),
            ));
        }
        if self.replicas == ReplicaSpec::Fixed(0) {
            return Err(RtError::InvalidPlacement(
                "replica count must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Builds an [`ExecPolicy`]; obtained from [`ExecPolicy::builder`].
#[derive(Clone, Debug)]
pub struct ExecPolicyBuilder {
    policy: ExecPolicy,
}

impl ExecPolicyBuilder {
    /// Tile-width selection strategy (default
    /// [`KernelSelect::Heuristic`]).
    pub fn kernel_select(mut self, select: KernelSelect) -> Self {
        self.policy.kernel_select = select;
        self
    }

    /// Pin a fixed tile width — shorthand for
    /// `kernel_select(KernelSelect::Fixed(w))`; `32` is the paper's
    /// warp-per-row kernel.
    pub fn tile_width(self, w: u32) -> Self {
        self.kernel_select(KernelSelect::Fixed(w))
    }

    /// Sharding axis (default [`ShardSpec::Off`]).
    pub fn shards(mut self, spec: ShardSpec) -> Self {
        self.policy.shards = spec;
        self
    }

    /// Replication axis (default [`ReplicaSpec::Auto`]).
    pub fn replicas(mut self, spec: ReplicaSpec) -> Self {
        self.policy.replicas = spec;
        self
    }

    /// Validates the policy: fixed tile widths must be in
    /// [`rt_gpusim::TILE_WIDTHS`], forced shard/replica counts must be
    /// at least 1 (pool-size checks happen at plan registration, where
    /// the pool is known).
    pub fn build(self) -> Result<ExecPolicy, RtError> {
        self.policy.validate()?;
        Ok(self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_classic_engine() {
        let p = ExecPolicy::default();
        assert_eq!(p.kernel_select(), KernelSelect::Heuristic);
        assert_eq!(p.shards(), ShardSpec::Off);
        assert_eq!(p.replicas(), ReplicaSpec::Auto);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_validates_tile_width() {
        assert!(ExecPolicy::builder().tile_width(8).build().is_ok());
        assert_eq!(
            ExecPolicy::builder().tile_width(7).build().unwrap_err(),
            RtError::InvalidTileWidth(7)
        );
    }

    #[test]
    fn builder_rejects_zero_counts() {
        assert_eq!(
            ExecPolicy::builder()
                .shards(ShardSpec::Fixed(0))
                .build()
                .unwrap_err()
                .kind(),
            "invalid_placement"
        );
        assert_eq!(
            ExecPolicy::builder()
                .replicas(ReplicaSpec::Fixed(0))
                .build()
                .unwrap_err()
                .kind(),
            "invalid_placement"
        );
    }

    #[test]
    fn axes_compose() {
        let p = ExecPolicy::builder()
            .kernel_select(KernelSelect::MeasuredProbe)
            .shards(ShardSpec::Auto)
            .replicas(ReplicaSpec::Fixed(2))
            .build()
            .unwrap();
        assert_eq!(p.kernel_select(), KernelSelect::MeasuredProbe);
        assert_eq!(p.shards(), ShardSpec::Auto);
        assert_eq!(p.replicas(), ReplicaSpec::Fixed(2));
    }
}
