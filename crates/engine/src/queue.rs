//! Bounded MPMC request queue with blocking and non-blocking admission.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the workspace's `parking_lot`
//! shim has no condvar). Two admission paths implement the engine's two
//! load-control policies:
//!
//! * [`BoundedQueue::push`] **blocks** the submitter while the queue is
//!   full — backpressure propagates to the client.
//! * [`BoundedQueue::try_push`] **fails fast** with
//!   [`RtError::QueueFull`] — load is shed at admission.
//!
//! Closing the queue wakes everyone: pending pushes fail with
//! [`RtError::EngineShutdown`], pops drain the remaining items and then
//! return `None`.

use rt_core::RtError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth (an engine-report gauge).
    max_depth: usize,
}

pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues, blocking while the queue is at capacity (backpressure).
    pub fn push(&self, item: T) -> Result<(), RtError> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(RtError::EngineShutdown);
            }
            if g.items.len() < self.capacity {
                break;
            }
            g = self.not_full.wait(g).unwrap();
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues or fails immediately — [`RtError::QueueFull`] at
    /// capacity, [`RtError::EngineShutdown`] after close.
    pub fn try_push(&self, item: T) -> Result<(), RtError> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(RtError::EngineShutdown);
        }
        if g.items.len() >= self.capacity {
            return Err(RtError::QueueFull {
                capacity: self.capacity,
            });
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_all();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Removes up to `max` queued items matching `pred`, preserving FIFO
    /// order among both the taken and the remaining items. Non-blocking —
    /// this is how a worker gathers batch mates for the request it just
    /// popped.
    pub fn drain_matching(&self, max: usize, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut g = self.inner.lock().unwrap();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < g.items.len() && taken.len() < max {
            if pred(&g.items[i]) {
                taken.push(g.items.remove(i).unwrap());
            } else {
                i += 1;
            }
        }
        drop(g);
        if !taken.is_empty() {
            self.not_full.notify_all();
        }
        taken
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// remains and then return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn max_depth(&self) -> usize {
        self.inner.lock().unwrap().max_depth
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(
            q.try_push(3).unwrap_err(),
            RtError::QueueFull { capacity: 2 }
        );
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert_eq!(q.push(12).unwrap_err(), RtError::EngineShutdown);
        assert_eq!(q.try_push(12).unwrap_err(), RtError::EngineShutdown);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        thread::scope(|s| {
            s.spawn(|| {
                // Blocks until the main thread pops.
                q.push(2).unwrap();
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1));
            // The blocked push completes and the item arrives.
            assert_eq!(q.pop(), Some(2));
        });
    }

    #[test]
    fn pop_blocks_until_item_or_close() {
        let q = BoundedQueue::new(4);
        thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.push(7).unwrap();
            assert_eq!(h.join().unwrap(), Some(7));
            let h = s.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn drain_matching_preserves_order() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.push(v).unwrap();
        }
        let even = q.drain_matching(2, |v| v % 2 == 0);
        assert_eq!(even, vec![2, 4]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(6));
    }
}
