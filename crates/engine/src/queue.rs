//! Bounded MPMC request queue with blocking and non-blocking admission.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the workspace's `parking_lot`
//! shim has no condvar). Two admission paths implement the engine's two
//! load-control policies:
//!
//! * [`BoundedQueue::push`] **blocks** the submitter while the queue is
//!   full — backpressure propagates to the client.
//! * [`BoundedQueue::try_push`] **fails fast** with
//!   [`RtError::QueueFull`] — load is shed at admission.
//!
//! Closing the queue wakes everyone: pending pushes fail with
//! [`RtError::EngineShutdown`], pops drain the remaining items and then
//! return `None`.
//!
//! Row-sharded dispatch adds two internal paths on top of admission:
//! [`BoundedQueue::push_all_internal`] enqueues shard sub-tasks for an
//! already-admitted request (exempt from capacity and close — see its
//! doc), and [`BoundedQueue::pop_matching`] lets each worker pop only
//! requests or sub-tasks pinned to its device, staying parked after
//! close while a fan-out is still in flight.

use rt_core::RtError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue depth (an engine-report gauge).
    /// Counts internal shard sub-tasks as well as admitted requests.
    max_depth: usize,
    /// Fan-outs currently in flight (created but not yet fully drained).
    /// While nonzero, matching pops keep blocking after close instead of
    /// returning `None` — a worker must not exit while shard sub-tasks
    /// for its device may still be enqueued.
    inflight: usize,
}

pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                max_depth: 0,
                inflight: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues, blocking while the queue is at capacity (backpressure).
    pub fn push(&self, item: T) -> Result<(), RtError> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(RtError::EngineShutdown);
            }
            if g.items.len() < self.capacity {
                break;
            }
            g = self.not_full.wait(g).unwrap();
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        // notify_all, not notify_one: poppers are *selective*
        // (`pop_matching`), so a single wakeup could land on a worker
        // whose predicate rejects the new item — e.g. a drained device
        // refusing requests — which would re-sleep and strand the item.
        self.not_empty.notify_all();
        Ok(())
    }

    /// Enqueues or fails immediately — [`RtError::QueueFull`] at
    /// capacity, [`RtError::EngineShutdown`] after close.
    pub fn try_push(&self, item: T) -> Result<(), RtError> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(RtError::EngineShutdown);
        }
        if g.items.len() >= self.capacity {
            return Err(RtError::QueueFull {
                capacity: self.capacity,
            });
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        // Same selective-popper rationale as `push`.
        self.not_empty.notify_all();
        Ok(())
    }

    /// Enqueues continuation work (shard sub-tasks) for requests that are
    /// already admitted: exempt from both the capacity bound and the
    /// closed flag. Capacity exemption keeps fan-out deadlock-free (every
    /// worker could otherwise block pushing sub-tasks into a queue only
    /// workers drain); close exemption preserves the drain guarantee
    /// (queued requests popped after shutdown still fan out and
    /// complete). The item count is bounded by in-flight fan-outs, which
    /// the bounded *request* admission already limits.
    pub fn push_all_internal(&self, items: impl IntoIterator<Item = T>) {
        let mut g = self.inner.lock().unwrap();
        for item in items {
            g.items.push_back(item);
        }
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.not_empty.notify_all();
    }

    /// Dequeues the oldest item matching `pred` (FIFO among matches; the
    /// rest keep their order), blocking while none matches. Returns
    /// `None` once the queue is closed, no match remains, *and* no
    /// fan-out is in flight — an in-flight fan-out may still enqueue
    /// shard sub-tasks this popper is pinned to.
    pub fn pop_matching(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(i) = g.items.iter().position(&pred) {
                let item = g.items.remove(i).unwrap();
                drop(g);
                self.not_full.notify_all();
                return Some(item);
            }
            if g.closed && g.inflight == 0 {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Registers a fan-out whose shard sub-tasks may still be enqueued.
    pub fn inflight_inc(&self) {
        self.inner.lock().unwrap().inflight += 1;
    }

    /// Retires a fan-out; wakes blocked poppers so workers can re-check
    /// their exit condition once the last fan-out drains after close.
    pub fn inflight_dec(&self) {
        let mut g = self.inner.lock().unwrap();
        g.inflight -= 1;
        let wake = g.inflight == 0;
        drop(g);
        if wake {
            self.not_empty.notify_all();
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    #[cfg(test)]
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_all();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Removes up to `max` queued items matching `pred`, preserving FIFO
    /// order among both the taken and the remaining items. Non-blocking —
    /// this is how a worker gathers batch mates for the request it just
    /// popped.
    pub fn drain_matching(&self, max: usize, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut g = self.inner.lock().unwrap();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < g.items.len() && taken.len() < max {
            if pred(&g.items[i]) {
                taken.push(g.items.remove(i).unwrap());
            } else {
                i += 1;
            }
        }
        drop(g);
        if !taken.is_empty() {
            self.not_full.notify_all();
        }
        taken
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// remains and then return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    pub fn max_depth(&self) -> usize {
        self.inner.lock().unwrap().max_depth
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(
            q.try_push(3).unwrap_err(),
            RtError::QueueFull { capacity: 2 }
        );
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        assert_eq!(q.push(12).unwrap_err(), RtError::EngineShutdown);
        assert_eq!(q.try_push(12).unwrap_err(), RtError::EngineShutdown);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        thread::scope(|s| {
            s.spawn(|| {
                // Blocks until the main thread pops.
                q.push(2).unwrap();
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(q.pop(), Some(1));
            // The blocked push completes and the item arrives.
            assert_eq!(q.pop(), Some(2));
        });
    }

    #[test]
    fn pop_blocks_until_item_or_close() {
        let q = BoundedQueue::new(4);
        thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.push(7).unwrap();
            assert_eq!(h.join().unwrap(), Some(7));
            let h = s.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn pop_matching_skips_non_matching_and_respects_inflight() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        // Takes the first even item, leaving the rest in order.
        assert_eq!(q.pop_matching(|v| v % 2 == 0), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));

        // Closed + empty + an in-flight fan-out: the popper must block
        // (sub-tasks may still arrive), then drain them after they land.
        q.inflight_inc();
        q.close();
        thread::scope(|s| {
            let h = s.spawn(|| q.pop_matching(|v| v % 2 == 0));
            thread::sleep(Duration::from_millis(20));
            q.push_all_internal([4]);
            assert_eq!(h.join().unwrap(), Some(4));
            let h = s.spawn(|| q.pop_matching(|v| v % 2 == 0));
            thread::sleep(Duration::from_millis(20));
            // Retiring the last fan-out releases the blocked popper.
            q.inflight_dec();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn push_all_internal_ignores_capacity_and_close() {
        let q = BoundedQueue::new(1);
        q.push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11).unwrap_err(), RtError::EngineShutdown);
        q.push_all_internal([20, 21]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(21));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_matching_preserves_order() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.push(v).unwrap();
        }
        let even = q.drain_matching(2, |v| v % 2 == 0);
        assert_eq!(even, vec![2, 4]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(6));
    }
}
