//! Bridges the serving engine to the optimizer: a [`DoseEngine`] whose
//! forward and backward SpMVs are served requests, so a plan optimization
//! can run *against* a live engine and share device time (and batches)
//! with other traffic.

use crate::{EngineClient, RequestKind};
use rt_core::RtError;
use rt_optim::DoseEngine;
use std::cell::Cell;

/// A [`DoseEngine`] backed by one registered plan of a serving engine.
///
/// Construction validates the plan name; after that, every request this
/// adapter issues is correctly shaped, so the infallible [`DoseEngine`]
/// trait methods cannot hit a validation error. (An engine shutdown mid-
/// optimization is a caller protocol violation and panics — the adapter
/// borrows the client, so the session outlives it by construction.)
pub struct ServedDoseEngine<'c, 'e> {
    client: &'c EngineClient<'e>,
    plan: String,
    nrows: usize,
    ncols: usize,
    seconds: Cell<f64>,
}

impl<'c, 'e> ServedDoseEngine<'c, 'e> {
    /// Binds to a registered plan ([`RtError::UnknownPlan`] otherwise).
    pub fn new(
        client: &'c EngineClient<'e>,
        plan: &str,
        dims: (usize, usize),
    ) -> ServedDoseEngine<'c, 'e> {
        ServedDoseEngine {
            client,
            plan: plan.to_string(),
            nrows: dims.0,
            ncols: dims.1,
            seconds: Cell::new(0.0),
        }
    }

    fn call(&self, kind: RequestKind, payload: Vec<f64>) -> Result<Vec<f64>, RtError> {
        let r = self.client.call(&self.plan, kind, payload)?;
        self.seconds
            .set(self.seconds.get() + r.report.estimate.seconds);
        Ok(r.output)
    }
}

impl DoseEngine for ServedDoseEngine<'_, '_> {
    fn nvoxels(&self) -> usize {
        self.nrows
    }

    fn nspots(&self) -> usize {
        self.ncols
    }

    fn dose(&self, weights: &[f64]) -> Vec<f64> {
        self.call(RequestKind::Dose, weights.to_vec())
            .expect("serve session ended while an optimization was driving it")
    }

    fn backproject(&self, residual: &[f64]) -> Vec<f64> {
        self.call(RequestKind::Gradient, residual.to_vec())
            .expect("serve session ended while an optimization was driving it")
    }

    fn modeled_seconds(&self) -> f64 {
        self.seconds.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use rt_gpusim::DeviceSpec;
    use rt_sparse::Csr;

    #[test]
    fn served_engine_matches_direct_calculator() {
        let m = Csr::from_rows(
            3,
            &[
                vec![(0, 1.0), (1, 0.5)],
                vec![(1, 2.0)],
                vec![(0, 0.25), (2, 1.5)],
                vec![],
            ],
        )
        .unwrap();
        let mut e = Engine::builder()
            .device(DeviceSpec::a100())
            .build()
            .unwrap();
        e.register_plan("p", &m).unwrap();

        // The engine may have autotuned the plan off warp-per-row; the
        // direct calculator must run at the same width to match bitwise.
        let direct = rt_core::DoseCalculator::builder(&m)
            .tile_width(e.plan_tile_width("p").unwrap())
            .with_transpose()
            .build()
            .unwrap();
        let w = [0.7, 1.3, 0.4];
        let r = [1.0, 0.0, 1.0, 0.0];

        let ((dose, grad, modeled), _) = e.serve(|c| {
            let served = ServedDoseEngine::new(c, "p", e.plan_dims("p").unwrap());
            assert_eq!(served.nvoxels(), 4);
            assert_eq!(served.nspots(), 3);
            (
                served.dose(&w),
                served.backproject(&r),
                served.modeled_seconds(),
            )
        });
        assert_eq!(dose, direct.compute_dose(&w).unwrap().dose);
        assert_eq!(grad, direct.compute_gradient_term(&r).unwrap());
        assert!(modeled > 0.0);
    }
}
