//! Engine-level serving counters and the exportable JSON report.
//!
//! Workers and clients record into a shared [`Metrics`] (one mutex, one
//! batched update per launch — not per request); [`Metrics::report`]
//! snapshots it into the public [`EngineReport`], whose hand-rolled
//! [`EngineReport::to_json`] matches the `LaunchReport` house style
//! (stable keys, two-space indent).

use rt_gpusim::report::json_string;
use std::sync::Mutex;
use std::time::Instant;

/// Per-device tallies (one worker thread serves one device).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceReport {
    pub name: String,
    /// Requests completed successfully on this device. For sharded plans
    /// the completion is attributed to the device whose shard landed
    /// last.
    pub requests: u64,
    /// Batched kernel-launch sequences executed (one per shard sub-task
    /// for sharded plans).
    pub launches: u64,
    /// Modeled GPU seconds accumulated from launch reports.
    pub modeled_seconds: f64,
    /// Plan bytes resident on this device (matrices + transposes, or
    /// just this device's shards for row-sharded plans). Attached by the
    /// engine after the metrics snapshot.
    pub resident_bytes: u64,
    /// Whether the device was drained (out for maintenance) when the
    /// report was taken: no new requests or shard homes land on it,
    /// though in-flight fan-outs from older placement epochs may still
    /// have executed here. Attached by the engine after the metrics
    /// snapshot.
    pub drained: bool,
}

/// One registered plan's autotuned kernel selection, carried in the
/// serve report so operators can see which tile width each plan runs at.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanSelection {
    pub name: String,
    /// Cooperative-group tile width the plan's dose-direction kernels
    /// run at (for partitioned plans: the widest populated bucket).
    pub tile_width: u32,
    /// Tile width the gradient (transpose) kernels run at — an
    /// independent decision made by running the same strategy on the
    /// whole transpose.
    pub grad_tile_width: u32,
    /// Selection strategy that picked it ("fixed", "heuristic", "probe",
    /// "partitioned-heuristic", "partitioned-probe").
    pub mode: String,
    /// Average stored entries per non-empty row of the plan's matrix.
    pub avg_nnz_nonempty: f64,
    /// Per-bucket width selections (partitioned plans only; empty for
    /// whole-matrix dispatch). Only populated buckets appear.
    pub buckets: Vec<BucketSelection>,
    /// Per-bucket width selections for the gradient direction, from the
    /// transpose's own row plan (partitioned plans only). Only populated
    /// buckets appear.
    pub grad_buckets: Vec<BucketSelection>,
    /// Row-range shards of the dose matrix, in row order (placed plans
    /// only; for replicated plans these are replica group 0's shards —
    /// other groups may cut differently when their device mix differs).
    /// Empty when the plan is fully resident on every device.
    pub shards: Vec<PlanShard>,
    /// Replica × shard placement of the plan (placed plans only; `None`
    /// when the plan runs the classic fully-resident path).
    pub placement: Option<PlacementSelection>,
}

/// How a placed plan was laid out across the pool and how the replica
/// groups shared the session's traffic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlacementSelection {
    /// Number of replica groups.
    pub replicas: usize,
    /// Shards per replica group (group 0's count; forced counts are
    /// clamped per plan to its row count).
    pub shards_per_replica: usize,
    /// Whether the shard count came from the break-even model
    /// ([`ShardSpec::Auto`]) rather than being forced.
    ///
    /// [`ShardSpec::Auto`]: crate::ShardSpec::Auto
    pub auto_shards: bool,
    /// Rebalance events this plan's placement absorbed over its
    /// lifetime: drain/undrain re-deals plus skew-triggered re-deals,
    /// each an atomic epoch swap.
    pub rebalances: u64,
    /// Per-group membership and served-request tallies (the current
    /// placement epoch's groups; served counts are per-epoch).
    pub groups: Vec<ReplicaGroupSelection>,
    /// Break-even evidence table for group 0 (auto-sharded plans only):
    /// the modeled single-request seconds at every candidate shard
    /// count.
    pub breakeven: Vec<BreakEvenSelection>,
}

/// One replica group's membership and traffic share.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplicaGroupSelection {
    pub group: usize,
    /// Member device names, fastest first (absolute pool members; groups
    /// are disjoint).
    pub devices: Vec<String>,
    /// Shards this group holds.
    pub shards: usize,
    /// Fanned-out request batches this group completed during the
    /// session (dispatch picks the least-loaded group, so these should
    /// stay balanced under concurrent load).
    pub served: u64,
}

/// One row of the break-even table ([`rt_core::BreakEvenPoint`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BreakEvenSelection {
    pub k: usize,
    pub modeled_seconds: f64,
}

/// One row-range shard of a row-sharded plan: where its rows live and
/// what it costs to keep there.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanShard {
    /// Shard index (also its position in the dose scatter).
    pub shard: usize,
    /// Home device of the shard's sub-matrix.
    pub device: String,
    /// First row of the shard's contiguous range.
    pub row_start: u64,
    /// Rows in the range.
    pub rows: u64,
    /// Stored entries in the sub-matrix.
    pub nnz: u64,
    /// Device bytes the shard pins on its home device (dose direction).
    pub resident_bytes: u64,
}

/// One row-length bucket's width selection inside a partitioned plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BucketSelection {
    /// Inclusive row-length range of the bucket (`max_len == u32::MAX`
    /// renders as the open-ended ">32" bucket).
    pub min_len: u32,
    pub max_len: u32,
    /// Non-empty rows routed to this bucket.
    pub rows: u64,
    /// Tile width the bucket's launch runs at.
    pub tile_width: u32,
    /// Fraction of scheduled lanes carrying a nonzero at that width
    /// (empty rows are eliminated before bucketing, so they never count
    /// as occupied — or scheduled — lane slots here).
    pub lanes_active_frac: f64,
}

/// Snapshot of one [`Engine::serve`] session, exportable as JSON.
///
/// [`Engine::serve`]: crate::Engine::serve
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineReport {
    /// Wall-clock duration of the serve session in milliseconds.
    pub elapsed_ms: f64,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests shed at admission ([`RtError::QueueFull`]).
    ///
    /// [`RtError::QueueFull`]: rt_core::RtError::QueueFull
    pub rejected_queue_full: u64,
    /// Requests shed at dispatch because their deadline had expired.
    pub shed_deadline: u64,
    /// Requests that failed in execution with some other error.
    pub failed: u64,
    /// Physical kernel-launch sequences executed across all devices: a
    /// fan-out contributes one per shard, an unsharded batch exactly
    /// one.
    pub launches: u64,
    /// Completed request *batches*: a fanned-out batch counts once (at
    /// merge), no matter how many shards executed it — the denominator
    /// of [`EngineReport::avg_batch`], so sharding never deflates the
    /// batching win.
    pub batches: u64,
    /// Largest batch observed (requests per batch).
    pub max_batch: u64,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// High-water mark of the queue depth.
    pub queue_max_depth: usize,
    /// Mean/max milliseconds requests waited in the queue.
    pub wait_ms_mean: f64,
    pub wait_ms_max: f64,
    /// Mean/max submit-to-completion latency in milliseconds.
    pub latency_ms_mean: f64,
    pub latency_ms_max: f64,
    /// Modeled GPU seconds across all devices.
    pub modeled_gpu_seconds: f64,
    /// Per-device breakdown, in pool order.
    pub devices: Vec<DeviceReport>,
    /// Per-plan kernel selection, in registration order (attached by the
    /// engine after the metrics snapshot).
    pub plans: Vec<PlanSelection>,
}

impl EngineReport {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.elapsed_ms / 1e3)
        }
    }

    /// Mean requests per completed batch (the batching win; 1.0 = no
    /// batching). A fanned-out batch counts once here even though it
    /// ran as `K` per-shard launches.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Stable JSON encoding (same house style as
    /// [`rt_gpusim::LaunchReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"elapsed_ms\": {:.3},\n", self.elapsed_ms));
        out.push_str(&format!(
            "  \"throughput_rps\": {:.2},\n",
            self.throughput_rps()
        ));
        out.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!(
            "  \"rejected_queue_full\": {},\n",
            self.rejected_queue_full
        ));
        out.push_str(&format!("  \"shed_deadline\": {},\n", self.shed_deadline));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"launches\": {},\n", self.launches));
        out.push_str(&format!("  \"batches\": {},\n", self.batches));
        out.push_str(&format!("  \"avg_batch\": {:.2},\n", self.avg_batch()));
        out.push_str(&format!("  \"max_batch\": {},\n", self.max_batch));
        out.push_str(&format!(
            "  \"queue\": {{\"capacity\": {}, \"max_depth\": {}}},\n",
            self.queue_capacity, self.queue_max_depth
        ));
        out.push_str(&format!(
            "  \"wait_ms\": {{\"mean\": {:.3}, \"max\": {:.3}}},\n",
            self.wait_ms_mean, self.wait_ms_max
        ));
        out.push_str(&format!(
            "  \"latency_ms\": {{\"mean\": {:.3}, \"max\": {:.3}}},\n",
            self.latency_ms_mean, self.latency_ms_max
        ));
        out.push_str(&format!(
            "  \"modeled_gpu_seconds\": {:.6e},\n",
            self.modeled_gpu_seconds
        ));
        out.push_str("  \"devices\": [");
        for (i, d) in self.devices.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": {}, \"requests\": {}, \"launches\": {}, \"modeled_seconds\": {:.6e}, \"resident_bytes\": {}, \"drained\": {}}}",
                json_string(&d.name),
                d.requests,
                d.launches,
                d.modeled_seconds,
                d.resident_bytes,
                d.drained
            ));
        }
        if !self.devices.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"plans\": [");
        for (i, p) in self.plans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": {}, \"tile_width\": {}, \"grad_tile_width\": {}, \"mode\": {}, \"avg_nnz_nonempty\": {:.2}, \"buckets\": [",
                json_string(&p.name),
                p.tile_width,
                p.grad_tile_width,
                json_string(&p.mode),
                p.avg_nnz_nonempty
            ));
            for (j, b) in p.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"min_len\": {}, \"max_len\": {}, \"rows\": {}, \"tile_width\": {}, \"lanes_active_frac\": {:.4}}}",
                    b.min_len, b.max_len, b.rows, b.tile_width, b.lanes_active_frac
                ));
            }
            out.push_str("], \"grad_buckets\": [");
            for (j, b) in p.grad_buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"min_len\": {}, \"max_len\": {}, \"rows\": {}, \"tile_width\": {}, \"lanes_active_frac\": {:.4}}}",
                    b.min_len, b.max_len, b.rows, b.tile_width, b.lanes_active_frac
                ));
            }
            out.push_str("], \"shards\": [");
            for (j, sh) in p.shards.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"shard\": {}, \"device\": {}, \"row_start\": {}, \"rows\": {}, \"nnz\": {}, \"resident_bytes\": {}}}",
                    sh.shard,
                    json_string(&sh.device),
                    sh.row_start,
                    sh.rows,
                    sh.nnz,
                    sh.resident_bytes
                ));
            }
            out.push_str("], \"placement\": ");
            match &p.placement {
                None => out.push_str("null"),
                Some(pl) => {
                    out.push_str(&format!(
                        "{{\"replicas\": {}, \"shards_per_replica\": {}, \"auto_shards\": {}, \"rebalances\": {}, \"groups\": [",
                        pl.replicas, pl.shards_per_replica, pl.auto_shards, pl.rebalances
                    ));
                    for (j, g) in pl.groups.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let members = g
                            .devices
                            .iter()
                            .map(|d| json_string(d))
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "{{\"group\": {}, \"devices\": [{}], \"shards\": {}, \"served\": {}}}",
                            g.group, members, g.shards, g.served
                        ));
                    }
                    out.push_str("], \"breakeven\": [");
                    for (j, b) in pl.breakeven.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"k\": {}, \"modeled_seconds\": {:.6e}}}",
                            b.k, b.modeled_seconds
                        ));
                    }
                    out.push_str("]}");
                }
            }
            out.push('}');
        }
        if !self.plans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

#[derive(Default)]
struct Inner {
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    shed_deadline: u64,
    failed: u64,
    launches: u64,
    batches: u64,
    max_batch: u64,
    wait_ms_sum: f64,
    wait_ms_max: f64,
    latency_ms_sum: f64,
    latency_ms_max: f64,
    latency_samples: u64,
    devices: Vec<DeviceReport>,
}

/// Shared counter block for one serve session.
pub(crate) struct Metrics {
    inner: Mutex<Inner>,
    started: Instant,
}

/// One worker's deltas for one executed batch, merged under a single
/// lock acquisition.
pub(crate) struct BatchSample {
    pub device: usize,
    pub completed: u64,
    pub shed_deadline: u64,
    pub failed: u64,
    /// Physical kernel-launch sequences this worker executed (one per
    /// shard sub-task; 0 when the whole batch was shed before launch).
    pub launches: u64,
    /// Completed request batches this sample accounts for: 1 on the
    /// unsharded path and on the fan-out *merge*, 0 on every other
    /// shard sub-task — so a fan-out's batch counts exactly once.
    pub batches: u64,
    pub batch_size: u64,
    pub modeled_seconds: f64,
    /// (wait_ms, latency_ms) per completed request.
    pub timings: Vec<(f64, f64)>,
}

impl Metrics {
    pub fn new(device_names: &[&str]) -> Self {
        Metrics {
            inner: Mutex::new(Inner {
                devices: device_names
                    .iter()
                    .map(|n| DeviceReport {
                        name: n.to_string(),
                        ..Default::default()
                    })
                    .collect(),
                ..Default::default()
            }),
            started: Instant::now(),
        }
    }

    pub fn note_submitted(&self) {
        self.inner.lock().unwrap().submitted += 1;
    }

    pub fn note_rejected_full(&self) {
        self.inner.lock().unwrap().rejected_queue_full += 1;
    }

    pub fn record_batch(&self, s: BatchSample) {
        let mut g = self.inner.lock().unwrap();
        g.completed += s.completed;
        g.shed_deadline += s.shed_deadline;
        g.failed += s.failed;
        g.launches += s.launches;
        g.batches += s.batches;
        g.max_batch = g.max_batch.max(s.batch_size);
        for (wait, latency) in &s.timings {
            g.wait_ms_sum += wait;
            g.wait_ms_max = g.wait_ms_max.max(*wait);
            g.latency_ms_sum += latency;
            g.latency_ms_max = g.latency_ms_max.max(*latency);
            g.latency_samples += 1;
        }
        let d = &mut g.devices[s.device];
        d.requests += s.completed;
        d.launches += s.launches;
        d.modeled_seconds += s.modeled_seconds;
    }

    pub fn report(&self, queue_capacity: usize, queue_max_depth: usize) -> EngineReport {
        let g = self.inner.lock().unwrap();
        let n = g.latency_samples.max(1) as f64;
        EngineReport {
            elapsed_ms: self.started.elapsed().as_secs_f64() * 1e3,
            submitted: g.submitted,
            completed: g.completed,
            rejected_queue_full: g.rejected_queue_full,
            shed_deadline: g.shed_deadline,
            failed: g.failed,
            launches: g.launches,
            batches: g.batches,
            max_batch: g.max_batch,
            queue_capacity,
            queue_max_depth,
            wait_ms_mean: g.wait_ms_sum / n,
            wait_ms_max: g.wait_ms_max,
            latency_ms_mean: g.latency_ms_sum / n,
            latency_ms_max: g.latency_ms_max,
            modeled_gpu_seconds: g.devices.iter().map(|d| d.modeled_seconds).sum(),
            devices: g.devices.clone(),
            plans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_batches() {
        let m = Metrics::new(&["A100", "V100"]);
        m.note_submitted();
        m.note_submitted();
        m.note_submitted();
        m.note_rejected_full();
        m.record_batch(BatchSample {
            device: 0,
            completed: 2,
            shed_deadline: 1,
            failed: 0,
            launches: 1,
            batches: 1,
            batch_size: 2,
            modeled_seconds: 0.5,
            timings: vec![(1.0, 3.0), (2.0, 5.0)],
        });
        let r = m.report(8, 3);
        assert_eq!(r.submitted, 3);
        assert_eq!(r.completed, 2);
        assert_eq!(r.rejected_queue_full, 1);
        assert_eq!(r.shed_deadline, 1);
        assert_eq!(r.launches, 1);
        assert_eq!(r.batches, 1);
        assert_eq!(r.max_batch, 2);
        assert_eq!(r.queue_capacity, 8);
        assert_eq!(r.queue_max_depth, 3);
        assert!((r.wait_ms_mean - 1.5).abs() < 1e-12);
        assert!((r.latency_ms_max - 5.0).abs() < 1e-12);
        assert!((r.modeled_gpu_seconds - 0.5).abs() < 1e-12);
        assert_eq!(r.devices[0].requests, 2);
        assert_eq!(r.devices[1].requests, 0);
        assert!((r.avg_batch() - 2.0).abs() < 1e-12);
        assert!(r.throughput_rps() >= 0.0);
    }

    #[test]
    fn fan_out_batches_count_once_but_launches_per_shard() {
        let m = Metrics::new(&["A100", "V100"]);
        // One 4-request batch fanned out as two shard sub-tasks: the
        // non-merging shard is a physical launch only...
        m.record_batch(BatchSample {
            device: 0,
            completed: 0,
            shed_deadline: 0,
            failed: 0,
            launches: 1,
            batches: 0,
            batch_size: 0,
            modeled_seconds: 0.1,
            timings: Vec::new(),
        });
        // ...and the merging shard carries the batch and completions.
        m.record_batch(BatchSample {
            device: 1,
            completed: 4,
            shed_deadline: 0,
            failed: 0,
            launches: 1,
            batches: 1,
            batch_size: 4,
            modeled_seconds: 0.1,
            timings: vec![(0.1, 0.2); 4],
        });
        let r = m.report(8, 4);
        assert_eq!(r.launches, 2, "one physical launch per shard");
        assert_eq!(r.batches, 1, "the fan-out batch counts once");
        assert!((r.avg_batch() - 4.0).abs() < 1e-12);
        assert_eq!(r.max_batch, 4);
    }

    #[test]
    fn json_has_stable_keys() {
        let m = Metrics::new(&["A100"]);
        let j = m.report(4, 0).to_json();
        for key in [
            "\"elapsed_ms\"",
            "\"throughput_rps\"",
            "\"submitted\"",
            "\"completed\"",
            "\"rejected_queue_full\"",
            "\"shed_deadline\"",
            "\"launches\"",
            "\"batches\"",
            "\"avg_batch\"",
            "\"drained\"",
            "\"queue\"",
            "\"wait_ms\"",
            "\"latency_ms\"",
            "\"modeled_gpu_seconds\"",
            "\"devices\"",
            "\"A100\"",
            "\"plans\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn plan_selections_render_in_json() {
        let m = Metrics::new(&["A100"]);
        let mut r = m.report(4, 0);
        r.plans.push(PlanSelection {
            name: "prostate".into(),
            tile_width: 4,
            grad_tile_width: 8,
            mode: "heuristic".into(),
            avg_nnz_nonempty: 4.5,
            buckets: Vec::new(),
            grad_buckets: Vec::new(),
            shards: Vec::new(),
            placement: None,
        });
        let j = r.to_json();
        assert!(j.contains("\"prostate\""));
        assert!(j.contains("\"tile_width\": 4"));
        assert!(j.contains("\"grad_tile_width\": 8"));
        assert!(j.contains("\"heuristic\""));
        assert!(j.contains("\"buckets\": []"));
        assert!(j.contains("\"grad_buckets\": []"));
        assert!(j.contains("\"shards\": []"));
        assert!(j.contains("\"placement\": null"));
    }

    #[test]
    fn shard_blocks_and_resident_bytes_render_in_json() {
        let m = Metrics::new(&["A100", "V100"]);
        let mut r = m.report(4, 0);
        r.devices[0].resident_bytes = 4096;
        r.plans.push(PlanSelection {
            name: "liver".into(),
            tile_width: 32,
            grad_tile_width: 32,
            mode: "fixed".into(),
            avg_nnz_nonempty: 12.0,
            buckets: Vec::new(),
            grad_buckets: Vec::new(),
            shards: vec![
                PlanShard {
                    shard: 0,
                    device: "A100".into(),
                    row_start: 0,
                    rows: 500,
                    nnz: 9000,
                    resident_bytes: 2048,
                },
                PlanShard {
                    shard: 1,
                    device: "V100".into(),
                    row_start: 500,
                    rows: 700,
                    nnz: 8800,
                    resident_bytes: 2000,
                },
            ],
            placement: None,
        });
        let j = r.to_json();
        assert!(j.contains("\"resident_bytes\": 4096"));
        assert!(j.contains(
            "\"shards\": [{\"shard\": 0, \"device\": \"A100\", \"row_start\": 0, \"rows\": 500, \"nnz\": 9000, \"resident_bytes\": 2048}, "
        ));
        assert!(j.contains("{\"shard\": 1, \"device\": \"V100\""));
    }

    #[test]
    fn bucket_selections_render_in_json() {
        let m = Metrics::new(&["A100"]);
        let mut r = m.report(4, 0);
        r.plans.push(PlanSelection {
            name: "liver".into(),
            tile_width: 32,
            grad_tile_width: 16,
            mode: "partitioned-heuristic".into(),
            avg_nnz_nonempty: 2.1,
            buckets: vec![
                BucketSelection {
                    min_len: 1,
                    max_len: 2,
                    rows: 1000,
                    tile_width: 2,
                    lanes_active_frac: 0.75,
                },
                BucketSelection {
                    min_len: 33,
                    max_len: u32::MAX,
                    rows: 8,
                    tile_width: 32,
                    lanes_active_frac: 0.9912,
                },
            ],
            grad_buckets: vec![BucketSelection {
                min_len: 9,
                max_len: 16,
                rows: 140,
                tile_width: 16,
                lanes_active_frac: 0.8125,
            }],
            shards: Vec::new(),
            placement: None,
        });
        let j = r.to_json();
        assert!(j.contains("\"partitioned-heuristic\""));
        assert!(j.contains(
            "\"buckets\": [{\"min_len\": 1, \"max_len\": 2, \"rows\": 1000, \"tile_width\": 2, \"lanes_active_frac\": 0.7500}, "
        ));
        assert!(j.contains("\"lanes_active_frac\": 0.9912"));
        assert!(j.contains(
            "\"grad_buckets\": [{\"min_len\": 9, \"max_len\": 16, \"rows\": 140, \"tile_width\": 16, \"lanes_active_frac\": 0.8125}]"
        ));
    }

    #[test]
    fn placement_renders_in_json() {
        let m = Metrics::new(&["A100", "A100", "V100", "P100"]);
        let mut r = m.report(4, 0);
        r.plans.push(PlanSelection {
            name: "liver".into(),
            tile_width: 32,
            grad_tile_width: 32,
            mode: "heuristic".into(),
            avg_nnz_nonempty: 12.0,
            buckets: Vec::new(),
            grad_buckets: Vec::new(),
            shards: Vec::new(),
            placement: Some(PlacementSelection {
                replicas: 2,
                shards_per_replica: 2,
                auto_shards: true,
                rebalances: 3,
                groups: vec![
                    ReplicaGroupSelection {
                        group: 0,
                        devices: vec!["A100".into(), "P100".into()],
                        shards: 2,
                        served: 3,
                    },
                    ReplicaGroupSelection {
                        group: 1,
                        devices: vec!["A100".into(), "V100".into()],
                        shards: 2,
                        served: 2,
                    },
                ],
                breakeven: vec![
                    BreakEvenSelection {
                        k: 1,
                        modeled_seconds: 3.3e-5,
                    },
                    BreakEvenSelection {
                        k: 2,
                        modeled_seconds: 2.1e-5,
                    },
                ],
            }),
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"placement\": {\"replicas\": 2, \"shards_per_replica\": 2, \"auto_shards\": true, \"rebalances\": 3, \"groups\": [{\"group\": 0, \"devices\": [\"A100\", \"P100\"], \"shards\": 2, \"served\": 3}, "
        ));
        assert!(j.contains(
            "{\"group\": 1, \"devices\": [\"A100\", \"V100\"], \"shards\": 2, \"served\": 2}"
        ));
        assert!(j.contains("\"breakeven\": [{\"k\": 1, \"modeled_seconds\": 3.300000e-5}, {\"k\": 2, \"modeled_seconds\": 2.100000e-5}]"));
    }
}
