//! Roofline analysis (Williams, Waterman, Patterson 2009) — Figure 3.
//!
//! A kernel's attainable performance is bounded by
//! `min(peak_flops, operational_intensity * peak_bandwidth)`. The paper
//! measures operational intensity (OI) with Nsight's `dram_bytes`
//! counter and validates it against an analytic upper bound assuming an
//! infinite cache (§V): for the Half/double CSR SpMV,
//!
//! ```text
//! traffic = 6*nnz + 12*nr + 8*nc   bytes   (2B value + 4B index per nnz,
//!                                           4B row-ptr + 8B output per row,
//!                                           8B input per column)
//! flops   = 2*nnz
//! OI      = 2*nnz / (6*nnz + 12*nr + 8*nc)   ~ 0.332 for liver beam 1
//! ```
//!
//! This crate provides the model (ceilings + attainable performance),
//! the paper's analytic OI bounds for every kernel configuration, and a
//! [`RooflinePoint`] builder that pairs measured simulator counters with
//! a modeled time estimate.

use rt_gpusim::{DeviceSpec, KernelProfile, KernelStats, Precision, TimeEstimate};

/// Byte cost per matrix element of a CSR SpMV configuration.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CsrTrafficModel {
    /// Bytes per non-zero for the stored value.
    pub value_bytes: usize,
    /// Bytes per non-zero for the column index.
    pub index_bytes: usize,
    /// Bytes per element of the input vector.
    pub x_bytes: usize,
    /// Bytes per element of the output vector.
    pub y_bytes: usize,
}

impl CsrTrafficModel {
    /// The paper's Half/double configuration: f16 values, u32 indices,
    /// f64 vectors.
    pub fn half_double() -> Self {
        CsrTrafficModel {
            value_bytes: 2,
            index_bytes: 4,
            x_bytes: 8,
            y_bytes: 8,
        }
    }

    /// Pure single precision (the library-comparison configuration).
    pub fn single() -> Self {
        CsrTrafficModel {
            value_bytes: 4,
            index_bytes: 4,
            x_bytes: 4,
            y_bytes: 4,
        }
    }

    /// Half values with 16-bit column indices — the paper's future-work
    /// proposal (§V).
    pub fn half_double_u16() -> Self {
        CsrTrafficModel {
            value_bytes: 2,
            index_bytes: 2,
            x_bytes: 8,
            y_bytes: 8,
        }
    }

    /// Minimum DRAM traffic in bytes for an `nr x nc` matrix with `nnz`
    /// stored entries, under the paper's infinite-cache assumption:
    /// every byte read once, one extra 4-byte row-pointer load per row,
    /// the whole output written.
    pub fn min_traffic_bytes(&self, nnz: u64, nr: u64, nc: u64) -> u64 {
        (self.value_bytes + self.index_bytes) as u64 * nnz
            + (4 + self.y_bytes as u64) * nr
            + self.x_bytes as u64 * nc
    }

    /// Analytic upper bound on operational intensity (FLOP per DRAM
    /// byte): `2*nnz / min_traffic`.
    pub fn oi_upper_bound(&self, nnz: u64, nr: u64, nc: u64) -> f64 {
        2.0 * nnz as f64 / self.min_traffic_bytes(nnz, nr, nc) as f64
    }
}

/// The roofline: a compute ceiling and a memory ceiling.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Roofline {
    pub peak_flops: f64,
    pub peak_bw: f64,
    pub device: String,
    pub precision: Precision,
}

impl Roofline {
    pub fn for_device(spec: &DeviceSpec, precision: Precision) -> Self {
        Roofline {
            peak_flops: spec.peak_flops(precision),
            peak_bw: spec.dram_bw,
            device: spec.name.to_string(),
            precision,
        }
    }

    /// Attainable FLOP/s at operational intensity `oi`.
    pub fn attainable(&self, oi: f64) -> f64 {
        (oi * self.peak_bw).min(self.peak_flops)
    }

    /// The ridge point: the OI where the kernel stops being
    /// memory-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.peak_bw
    }

    /// True if a kernel at OI `oi` is under the memory slope.
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge()
    }

    /// Samples the roofline curve at logarithmically spaced OIs, for
    /// plotting (Figure 3's ceilings).
    pub fn curve(&self, oi_min: f64, oi_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(oi_min > 0.0 && oi_max > oi_min && points >= 2);
        (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1) as f64;
                let oi = oi_min * (oi_max / oi_min).powf(t);
                (oi, self.attainable(oi))
            })
            .collect()
    }
}

/// One kernel's position on the roofline plot.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RooflinePoint {
    pub kernel: String,
    pub case: String,
    /// Measured operational intensity (from simulator DRAM counters).
    pub oi: f64,
    /// Modeled achieved GFLOP/s.
    pub gflops: f64,
    /// Attainable GFLOP/s at this OI (the roof overhead this point).
    pub attainable_gflops: f64,
    /// Fraction of attainable achieved.
    pub efficiency: f64,
}

impl RooflinePoint {
    /// Builds a point from measured counters and a time estimate.
    pub fn from_stats(
        kernel: &str,
        case: &str,
        roof: &Roofline,
        stats: &KernelStats,
        estimate: &TimeEstimate,
    ) -> Self {
        let oi = stats.operational_intensity();
        let attainable = roof.attainable(oi);
        RooflinePoint {
            kernel: kernel.to_string(),
            case: case.to_string(),
            oi,
            gflops: estimate.gflops,
            attainable_gflops: attainable / 1e9,
            efficiency: estimate.gflops * 1e9 / attainable,
        }
    }
}

/// Convenience: measured counters -> modeled estimate -> roofline point.
pub fn analyze(
    kernel_name: &str,
    case: &str,
    spec: &DeviceSpec,
    profile: &KernelProfile,
    stats: &KernelStats,
) -> RooflinePoint {
    let estimate = rt_gpusim::timing::estimate(spec, profile, stats);
    let roof = Roofline::for_device(spec, profile.precision);
    RooflinePoint::from_stats(kernel_name, case, &roof, stats, &estimate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_oi_bound_for_liver_beam_1() {
        // Table I: liver 1 = 2.97e6 rows, 6.80e4 cols, 1.48e9 nnz.
        // §V computes an OI upper bound of 0.332 for Half/double.
        let oi = CsrTrafficModel::half_double().oi_upper_bound(1_480_000_000, 2_970_000, 68_000);
        assert!((oi - 0.332).abs() < 0.002, "OI bound {oi}");
    }

    #[test]
    fn single_precision_has_lower_oi() {
        let hd = CsrTrafficModel::half_double();
        let sp = CsrTrafficModel::single();
        let (nnz, nr, nc) = (1_480_000_000, 2_970_000, 68_000);
        assert!(sp.oi_upper_bound(nnz, nr, nc) < hd.oi_upper_bound(nnz, nr, nc));
    }

    #[test]
    fn u16_indices_raise_oi() {
        let hd = CsrTrafficModel::half_double();
        let h16 = CsrTrafficModel::half_double_u16();
        let (nnz, nr, nc) = (95_000_000, 1_030_000, 5_090);
        let gain = h16.oi_upper_bound(nnz, nr, nc) / hd.oi_upper_bound(nnz, nr, nc);
        // 6 bytes/nnz -> 4 bytes/nnz: roughly a 1.5x OI gain.
        assert!((1.3..1.6).contains(&gain), "gain {gain}");
    }

    #[test]
    fn roofline_geometry() {
        let spec = DeviceSpec::a100();
        let roof = Roofline::for_device(&spec, Precision::Double);
        // SpMV-like OI is far under the ridge.
        assert!(roof.is_memory_bound(0.33));
        assert!((roof.ridge() - 9.7e12 / 1555e9).abs() < 1e-9);
        // On the memory slope, attainable = oi * bw.
        assert_eq!(roof.attainable(0.1), 0.1 * 1555e9);
        // Far right, compute-bound.
        assert_eq!(roof.attainable(1e6), 9.7e12);
    }

    #[test]
    fn curve_is_monotonic_and_capped() {
        let roof = Roofline::for_device(&DeviceSpec::a100(), Precision::Single);
        let curve = roof.curve(0.01, 1e4, 64);
        assert_eq!(curve.len(), 64);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, roof.peak_flops);
    }

    #[test]
    fn point_efficiency_is_bounded() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("test", Precision::Double);
        let stats = KernelStats {
            flops: 2_000_000,
            dram_read_bytes: 6_000_000,
            l2_read_misses: 187_500,
            warps: 10_000,
            blocks: 700,
            threads_per_block: 512,
            ..Default::default()
        };
        let p = analyze("test", "case", &spec, &profile, &stats);
        assert!(p.oi > 0.0);
        assert!(
            p.efficiency > 0.0 && p.efficiency <= 1.05,
            "eff {}",
            p.efficiency
        );
        assert!(p.gflops <= p.attainable_gflops * 1.05);
    }
}
