//! Analytic pencil-beam dose engine.
//!
//! For each spot, marches through the phantom along the beam axis
//! accumulating water-equivalent depth, evaluates the straggling-smeared
//! Bragg curve on the central axis and spreads it laterally with the
//! depth-dependent Gaussian. This is the fast engine used to generate the
//! large Table I matrices; [`McNoiseModel`] optionally perturbs the
//! result to mimic the Monte Carlo noise the paper describes (which
//! "can lead to an artificial increase of the non-zero values in the
//! dose deposition matrix", §II-A).

use crate::beam::{Beam, BeamAxis, Spot};
use crate::phantom::Phantom;
use crate::physics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maps beam-relative coordinates (depth step, lateral u, lateral v) to
/// grid coordinates for each axis. `u` is y for x-beams and x for
/// y-beams; `v` is always z.
pub(crate) struct AxisView {
    pub axis: BeamAxis,
    pub depth_len: usize,
    pub u_len: usize,
    pub v_len: usize,
}

impl AxisView {
    pub fn new(axis: BeamAxis, grid: crate::grid::DoseGrid) -> Self {
        let (depth_len, u_len) = match axis {
            BeamAxis::XPlus | BeamAxis::XMinus => (grid.nx, grid.ny),
            BeamAxis::YPlus | BeamAxis::YMinus => (grid.ny, grid.nx),
        };
        AxisView {
            axis,
            depth_len,
            u_len,
            v_len: grid.nz,
        }
    }

    /// Grid coordinates of (depth step, u, v).
    #[inline]
    pub fn coords(&self, step: usize, u: usize, v: usize) -> (usize, usize, usize) {
        match self.axis {
            BeamAxis::XPlus => (step, u, v),
            BeamAxis::XMinus => (self.depth_len - 1 - step, u, v),
            BeamAxis::YPlus => (u, step, v),
            BeamAxis::YMinus => (u, self.depth_len - 1 - step, v),
        }
    }
}

/// Monte Carlo noise model applied on top of the analytic engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McNoiseModel {
    /// Relative noise at the column's peak dose (noise scales like
    /// `1/sqrt(dose)`, Poisson-style, so low-dose voxels are noisier).
    pub rel_sigma_at_peak: f64,
    /// Probability that a voxel adjacent to the dose envelope receives a
    /// small stray dose — the nnz inflation the paper mentions.
    pub halo_probability: f64,
    /// Stray dose magnitude relative to the column peak.
    pub halo_rel_dose: f64,
    /// Base RNG seed (combined with the spot index for determinism).
    pub seed: u64,
}

impl Default for McNoiseModel {
    fn default() -> Self {
        McNoiseModel {
            rel_sigma_at_peak: 0.01,
            halo_probability: 0.35,
            halo_rel_dose: 2e-4,
            seed: 0xD05E,
        }
    }
}

/// The analytic engine.
#[derive(Clone, Debug)]
pub struct PencilBeamEngine {
    /// Entries below `rel_threshold * column_peak` are dropped.
    pub rel_threshold: f64,
    /// Optional MC-noise emulation.
    pub noise: Option<McNoiseModel>,
}

impl Default for PencilBeamEngine {
    fn default() -> Self {
        PencilBeamEngine {
            rel_threshold: 1e-3,
            noise: None,
        }
    }
}

impl PencilBeamEngine {
    pub fn with_noise(noise: McNoiseModel) -> Self {
        PencilBeamEngine {
            rel_threshold: 1e-3,
            noise: Some(noise),
        }
    }

    /// Computes one spot's dose column: `(flattened voxel, dose)` pairs
    /// sorted by voxel index. Deterministic (the noise RNG is seeded from
    /// the spot index).
    pub fn spot_column(
        &self,
        phantom: &Phantom,
        beam: &Beam,
        spot: &Spot,
        spot_index: usize,
    ) -> Vec<(usize, f64)> {
        let grid = phantom.grid();
        let vox = grid.voxel_mm;
        let view = AxisView::new(beam.axis, grid);

        let cu = spot.u_mm / vox - 0.5; // voxel-center coordinates
        let cv = spot.v_mm / vox - 0.5;
        let straggle = physics::range_straggling(spot.range_mm);

        let mut entries: Vec<(usize, f64)> = Vec::new();
        let mut peak = 0.0f64;
        let mut weq = 0.0f64;

        let cui = (cu.round() as isize).clamp(0, view.u_len as isize - 1) as usize;
        let cvi = (cv.round() as isize).clamp(0, view.v_len as isize - 1) as usize;

        for step in 0..view.depth_len {
            // Water-equivalent depth at this voxel's center, using the
            // density along the central axis.
            let (x, y, z) = view.coords(step, cui, cvi);
            let half = 0.5 * phantom.density_at(x, y, z) * vox;
            let d_center = weq + half;
            weq += 2.0 * half;

            if d_center > spot.range_mm + 6.0 * straggle {
                break; // past the distal falloff: nothing left to deposit
            }

            let axis_dose = physics::bragg_dose(d_center, spot.range_mm);
            if axis_dose <= 0.0 {
                continue;
            }
            let sigma_mm = physics::lateral_sigma(d_center, spot.range_mm, beam.sigma0_mm);
            let sigma_vox = sigma_mm / vox;
            let norm = axis_dose / (2.0 * core::f64::consts::PI * sigma_mm * sigma_mm);
            let reach = (3.0 * sigma_vox).ceil() as isize;

            let u_lo = ((cu - reach as f64).floor() as isize).max(0) as usize;
            let u_hi = ((cu + reach as f64).ceil() as isize).min(view.u_len as isize - 1) as usize;
            let v_lo = ((cv - reach as f64).floor() as isize).max(0) as usize;
            let v_hi = ((cv + reach as f64).ceil() as isize).min(view.v_len as isize - 1) as usize;

            let inv_2s2 = 1.0 / (2.0 * sigma_vox * sigma_vox);
            for v in v_lo..=v_hi {
                let dv = v as f64 - cv;
                for u in u_lo..=u_hi {
                    let du = u as f64 - cu;
                    let r2 = du * du + dv * dv;
                    let w = norm * (-r2 * inv_2s2).exp();
                    if w > 0.0 {
                        let (x, y, z) = view.coords(step, u, v);
                        entries.push((grid.index(x, y, z), w));
                        peak = peak.max(w);
                    }
                }
            }
        }

        // Threshold relative to the column peak.
        let cutoff = self.rel_threshold * peak;
        entries.retain(|&(_, w)| w >= cutoff);

        if let Some(noise) = self.noise {
            self.apply_noise(&noise, &mut entries, peak, spot_index, grid);
        }

        entries.sort_unstable_by_key(|&(v, _)| v);
        entries.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        entries
    }

    fn apply_noise(
        &self,
        noise: &McNoiseModel,
        entries: &mut Vec<(usize, f64)>,
        peak: f64,
        spot_index: usize,
        grid: crate::grid::DoseGrid,
    ) {
        if peak <= 0.0 || entries.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(
            noise.seed ^ (spot_index as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );

        // Poisson-style multiplicative perturbation.
        for (_, w) in entries.iter_mut() {
            let rel = noise.rel_sigma_at_peak * (peak / *w).sqrt();
            // Box-Muller normal from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..core::f64::consts::TAU);
            let g = (-2.0 * u1.ln()).sqrt() * u2.cos();
            *w = (*w * (1.0 + rel * g)).max(peak * 1e-9);
        }

        // Stray halo: voxels one step (+x) past each existing entry may
        // pick up a tiny scattered dose, inflating nnz like real MC noise.
        let mut halo = Vec::new();
        for &(idx, _) in entries.iter() {
            if rng.gen_bool(noise.halo_probability) {
                let neighbor = idx + 1;
                if neighbor < grid.len() {
                    halo.push((
                        neighbor,
                        peak * noise.halo_rel_dose * rng.gen_range(0.2..1.0),
                    ));
                }
            }
        }
        entries.extend(halo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::SpotGridConfig;
    use crate::grid::DoseGrid;
    use crate::phantom::{Ellipsoid, Material};

    fn setup() -> (Phantom, Beam) {
        let grid = DoseGrid::new(40, 24, 24, 2.5);
        let mut p = Phantom::uniform(grid, Material::Water);
        p.set_target(Ellipsoid {
            center: (20.0, 12.0, 12.0),
            radii: (6.0, 5.0, 5.0),
        });
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        (p, b)
    }

    #[test]
    fn column_is_sorted_and_in_bounds() {
        let (p, b) = setup();
        let eng = PencilBeamEngine::default();
        let col = eng.spot_column(&p, &b, &b.spots[0], 0);
        assert!(!col.is_empty());
        assert!(col.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(col.iter().all(|&(v, _)| v < p.grid().len()));
        assert!(col.iter().all(|&(_, w)| w > 0.0));
    }

    #[test]
    fn dose_peaks_near_spot_range() {
        let (p, b) = setup();
        let eng = PencilBeamEngine::default();
        // Pick a mid-target spot.
        let spot = b.spots[b.spots.len() / 2];
        let col = eng.spot_column(&p, &b, &spot, 0);
        let (peak_vox, _) = col
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let (x, _, _) = p.grid().coords(peak_vox);
        let depth_mm = (x as f64 + 0.5) * p.grid().voxel_mm;
        assert!(
            (depth_mm - spot.range_mm).abs() < 10.0,
            "peak at {depth_mm} mm for range {} mm",
            spot.range_mm
        );
    }

    #[test]
    fn column_has_contiguous_runs_along_x() {
        // The property RsCompressed exploits: many consecutive voxel
        // indices.
        let (p, b) = setup();
        let eng = PencilBeamEngine::default();
        let col = eng.spot_column(&p, &b, &b.spots[0], 0);
        let runs = col.windows(2).filter(|w| w[1].0 != w[0].0 + 1).count() + 1;
        let avg_run = col.len() as f64 / runs as f64;
        assert!(
            avg_run > 2.0,
            "avg run {avg_run} from {} entries",
            col.len()
        );
    }

    #[test]
    fn threshold_controls_sparsity() {
        let (p, b) = setup();
        let loose = PencilBeamEngine {
            rel_threshold: 1e-4,
            noise: None,
        };
        let tight = PencilBeamEngine {
            rel_threshold: 1e-1,
            noise: None,
        };
        let spot = b.spots[0];
        assert!(
            loose.spot_column(&p, &b, &spot, 0).len() > tight.spot_column(&p, &b, &spot, 0).len()
        );
    }

    #[test]
    fn noise_inflates_nnz_and_is_deterministic() {
        let (p, b) = setup();
        let clean = PencilBeamEngine::default();
        let noisy = PencilBeamEngine::with_noise(McNoiseModel::default());
        let spot = b.spots[0];
        let c = clean.spot_column(&p, &b, &spot, 7);
        let n1 = noisy.spot_column(&p, &b, &spot, 7);
        let n2 = noisy.spot_column(&p, &b, &spot, 7);
        assert!(
            n1.len() > c.len(),
            "noise should add entries: {} vs {}",
            n1.len(),
            c.len()
        );
        assert_eq!(n1, n2, "noise must be deterministic per spot");
        // Different spot index -> different noise.
        let n3 = noisy.spot_column(&p, &b, &spot, 8);
        assert_ne!(n1, n3);
    }

    #[test]
    fn denser_material_shortens_penetration() {
        let grid = DoseGrid::new(60, 16, 16, 2.5);
        let mut water = Phantom::uniform(grid, Material::Water);
        water.set_target(Ellipsoid {
            center: (30.0, 8.0, 8.0),
            radii: (5.0, 4.0, 4.0),
        });
        let mut bone = Phantom::uniform(grid, Material::Bone);
        bone.set_target(Ellipsoid {
            center: (30.0, 8.0, 8.0),
            radii: (5.0, 4.0, 4.0),
        });
        let beam = Beam::covering_target(&water, BeamAxis::XPlus, SpotGridConfig::default());
        let spot = Spot {
            u_mm: 20.0,
            v_mm: 20.0,
            range_mm: 80.0,
        };
        let eng = PencilBeamEngine::default();
        let deepest = |phantom: &Phantom| {
            eng.spot_column(phantom, &beam, &spot, 0)
                .iter()
                .map(|&(v, _)| grid.coords(v).0)
                .max()
                .unwrap()
        };
        assert!(
            deepest(&bone) < deepest(&water),
            "bone {} vs water {}",
            deepest(&bone),
            deepest(&water)
        );
    }

    #[test]
    fn all_four_beam_axes_deposit_in_the_target() {
        use crate::beam::BeamAxis::*;
        let grid = DoseGrid::new(30, 30, 24, 3.0);
        let mut p = Phantom::uniform(grid, Material::SoftTissue);
        let target = Ellipsoid {
            center: (15.0, 15.0, 12.0),
            radii: (5.0, 5.0, 4.0),
        };
        p.set_target(target);
        let eng = PencilBeamEngine::default();
        for axis in [XPlus, XMinus, YPlus, YMinus] {
            let b = Beam::covering_target(&p, axis, SpotGridConfig::default());
            assert!(b.num_spots() > 10, "{axis:?}: {} spots", b.num_spots());
            // A mid-layer spot must deposit dose inside the target.
            let spot = b.spots[b.spots.len() / 2];
            let col = eng.spot_column(&p, &b, &spot, 0);
            assert!(!col.is_empty(), "{axis:?}: empty column");
            let hits_target = col.iter().any(|&(v, _)| {
                let (x, y, z) = grid.coords(v);
                target.contains(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5)
            });
            assert!(hits_target, "{axis:?}: no dose in target");
        }
    }

    #[test]
    fn opposite_beam_marches_backwards() {
        let (p, _) = setup();
        let cfg = SpotGridConfig::default();
        let bplus = Beam::covering_target(&p, BeamAxis::XPlus, cfg);
        let bminus = Beam::covering_target(&p, BeamAxis::XMinus, cfg);
        let eng = PencilBeamEngine::default();
        let shallow = Spot {
            u_mm: 30.0,
            v_mm: 30.0,
            range_mm: 25.0,
        };
        let cp = eng.spot_column(&p, &bplus, &shallow, 0);
        let cm = eng.spot_column(&p, &bminus, &shallow, 0);
        let max_x_plus = cp.iter().map(|&(v, _)| p.grid().coords(v).0).max().unwrap();
        let min_x_minus = cm.iter().map(|&(v, _)| p.grid().coords(v).0).min().unwrap();
        // A shallow +x spot stays in the near half; a shallow -x spot in
        // the far half.
        assert!(max_x_plus < 20, "max x {max_x_plus}");
        assert!(min_x_minus >= 20, "min x {min_x_minus}");
    }
}
