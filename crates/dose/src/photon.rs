//! Photon pencil-beam dose model — the other major treatment modality
//! the paper mentions (§II-A: "different treatment modalities, such as
//! photon and proton treatments, will result in matrices with different
//! characteristics because the dose deposition and physics differ").
//!
//! Photon depth dose has no Bragg peak: after a short build-up region it
//! decays exponentially and the beam *exits* the patient, so a photon
//! beamlet touches every voxel along its line — photon dose deposition
//! matrices have longer columns, fewer empty rows and higher density
//! than proton ones. This module provides the physics and a beamlet
//! engine compatible with [`DoseMatrixBuilder`]'s column convention, so
//! the structural contrast can be generated and measured (see the
//! `photon_vs_proton` test).
//!
//! Model: `D(d) = (1 - exp(-beta d)) * exp(-mu d)` — a build-up term
//! (electron equilibrium over the first ~15 mm at 6 MV) times linear
//! attenuation (`mu ~ 0.005/mm` water at 6 MV), with the same lateral
//! Gaussian treatment as the proton engine (photon penumbra grows
//! roughly linearly with depth).
//!
//! [`DoseMatrixBuilder`]: crate::matrix::DoseMatrixBuilder

use crate::beam::Beam;
use crate::pencil::AxisView;
use crate::phantom::Phantom;

/// Linear attenuation coefficient of water at ~6 MV, per mm.
pub const MU_6MV: f64 = 0.005;
/// Build-up constant: dose reaches ~95% of equilibrium by ~15 mm.
pub const BETA_6MV: f64 = 0.2;

/// Photon depth-dose (arbitrary units) at water-equivalent depth `d_mm`.
pub fn photon_depth_dose(d_mm: f64) -> f64 {
    (1.0 - (-BETA_6MV * d_mm).exp()) * (-MU_6MV * d_mm).exp()
}

/// Photon lateral penumbra sigma (mm) at depth `d_mm`.
pub fn photon_lateral_sigma(d_mm: f64, sigma0_mm: f64) -> f64 {
    sigma0_mm + 0.012 * d_mm
}

/// Analytic photon beamlet engine. The `range_mm` of a [`Spot`] is
/// ignored (photons have no range) — each lateral spot position defines
/// one beamlet, as in fluence-map optimization.
///
/// [`Spot`]: crate::beam::Spot
#[derive(Clone, Debug)]
pub struct PhotonBeamletEngine {
    /// Entries below `rel_threshold * column_peak` are dropped.
    pub rel_threshold: f64,
}

impl Default for PhotonBeamletEngine {
    fn default() -> Self {
        PhotonBeamletEngine {
            rel_threshold: 1e-3,
        }
    }
}

impl PhotonBeamletEngine {
    /// Computes one beamlet's dose column, sorted by voxel index.
    pub fn beamlet_column(
        &self,
        phantom: &Phantom,
        beam: &Beam,
        spot: &crate::beam::Spot,
    ) -> Vec<(usize, f64)> {
        let grid = phantom.grid();
        let vox = grid.voxel_mm;
        let view = AxisView::new(beam.axis, grid);

        let cu = spot.u_mm / vox - 0.5;
        let cv = spot.v_mm / vox - 0.5;
        let cui = (cu.round() as isize).clamp(0, view.u_len as isize - 1) as usize;
        let cvi = (cv.round() as isize).clamp(0, view.v_len as isize - 1) as usize;

        let mut entries: Vec<(usize, f64)> = Vec::new();
        let mut peak = 0.0f64;
        let mut weq = 0.0f64;

        for step in 0..view.depth_len {
            let (x, y, z) = view.coords(step, cui, cvi);
            let half = 0.5 * phantom.density_at(x, y, z) * vox;
            let d_center = weq + half;
            weq += 2.0 * half;

            let axis_dose = photon_depth_dose(d_center);
            if axis_dose <= 0.0 {
                continue;
            }
            let sigma_mm = photon_lateral_sigma(d_center, beam.sigma0_mm);
            let sigma_vox = sigma_mm / vox;
            let norm = axis_dose / (2.0 * core::f64::consts::PI * sigma_mm * sigma_mm);
            let reach = (3.0 * sigma_vox).ceil() as isize;

            let u_lo = ((cu - reach as f64).floor() as isize).max(0) as usize;
            let u_hi = ((cu + reach as f64).ceil() as isize).min(view.u_len as isize - 1) as usize;
            let v_lo = ((cv - reach as f64).floor() as isize).max(0) as usize;
            let v_hi = ((cv + reach as f64).ceil() as isize).min(view.v_len as isize - 1) as usize;

            let inv_2s2 = 1.0 / (2.0 * sigma_vox * sigma_vox);
            for v in v_lo..=v_hi {
                let dv = v as f64 - cv;
                for u in u_lo..=u_hi {
                    let du = u as f64 - cu;
                    let w = norm * (-(du * du + dv * dv) * inv_2s2).exp();
                    if w > 0.0 {
                        let (x, y, z) = view.coords(step, u, v);
                        entries.push((grid.index(x, y, z), w));
                        peak = peak.max(w);
                    }
                }
            }
        }

        let cutoff = self.rel_threshold * peak;
        entries.retain(|&(_, w)| w >= cutoff);
        entries.sort_unstable_by_key(|&(v, _)| v);
        entries.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{BeamAxis, Spot, SpotGridConfig};
    use crate::grid::DoseGrid;
    use crate::pencil::PencilBeamEngine;
    use crate::phantom::{Ellipsoid, Material};

    fn setup() -> (Phantom, Beam) {
        let grid = DoseGrid::new(48, 20, 20, 3.0);
        let mut p = Phantom::uniform(grid, Material::Water);
        p.set_target(Ellipsoid {
            center: (24.0, 10.0, 10.0),
            radii: (6.0, 5.0, 5.0),
        });
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        (p, b)
    }

    #[test]
    fn depth_dose_has_buildup_then_exponential_decay() {
        // Build-up: dose rises over the first centimetre...
        assert!(photon_depth_dose(2.0) < photon_depth_dose(10.0));
        // ...peaks around 10-20 mm (the 6 MV d_max)...
        let dmax = (0..300)
            .map(|i| i as f64)
            .max_by(|&a, &b| photon_depth_dose(a).total_cmp(&photon_depth_dose(b)))
            .unwrap();
        assert!((8.0..25.0).contains(&dmax), "d_max {dmax}");
        // ...then decays but never vanishes (the beam exits the patient).
        assert!(photon_depth_dose(200.0) < photon_depth_dose(dmax));
        assert!(photon_depth_dose(300.0) > 0.05 * photon_depth_dose(dmax));
    }

    #[test]
    fn photon_columns_are_longer_than_proton_columns() {
        // The §II-A modality contrast: no Bragg stop means the photon
        // beamlet deposits along the full depth.
        let (p, b) = setup();
        let spot = Spot {
            u_mm: 30.0,
            v_mm: 30.0,
            range_mm: 70.0,
        };
        let photon = PhotonBeamletEngine::default().beamlet_column(&p, &b, &spot);
        let proton = PencilBeamEngine::default().spot_column(&p, &b, &spot, 0);
        let grid = p.grid();
        let max_depth =
            |col: &[(usize, f64)]| col.iter().map(|&(v, _)| grid.coords(v).0).max().unwrap();
        assert!(!photon.is_empty() && !proton.is_empty());
        // The proton column stops at its range (~70 mm = voxel 23); the
        // photon column reaches the far side of the phantom.
        assert!(
            max_depth(&proton) < 30,
            "proton depth {}",
            max_depth(&proton)
        );
        assert_eq!(max_depth(&photon), grid.nx - 1);
        assert!(photon.len() > proton.len());
    }

    #[test]
    fn photon_column_is_sorted_and_positive() {
        let (p, b) = setup();
        let col = PhotonBeamletEngine::default().beamlet_column(&p, &b, &b.spots[0]);
        assert!(col.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(col.iter().all(|&(_, w)| w > 0.0));
    }

    #[test]
    fn photon_matrix_is_denser_than_proton_matrix() {
        // Assemble small matrices with both engines over the same beam
        // and compare density — the Table I footnote made concrete.
        let (p, b) = setup();
        let photon_engine = PhotonBeamletEngine::default();
        let spot_major: Vec<Vec<(usize, f64)>> = b
            .spots
            .iter()
            .step_by(7) // a subset for speed
            .map(|s| photon_engine.beamlet_column(&p, &b, s))
            .collect();
        let photon = rt_sparse::Csr::<f64, u32>::from_rows(p.grid().len(), &spot_major)
            .unwrap()
            .transpose();

        let proton_engine = PencilBeamEngine::default();
        let spot_major: Vec<Vec<(usize, f64)>> = b
            .spots
            .iter()
            .step_by(7)
            .enumerate()
            .map(|(i, s)| proton_engine.spot_column(&p, &b, s, i))
            .collect();
        let proton = rt_sparse::Csr::<f64, u32>::from_rows(p.grid().len(), &spot_major)
            .unwrap()
            .transpose();

        assert!(
            photon.density() > 1.5 * proton.density(),
            "photon {} vs proton {}",
            photon.density(),
            proton.density()
        );
    }
}
