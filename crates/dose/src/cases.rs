//! The liver and prostate test cases of Table I, at simulation scale.
//!
//! The paper's matrices come from clinical CT data at full clinical
//! resolution (liver: 2.97e6 voxels x ~6.8e4 spots, 1.3–1.8e9 non-zeros
//! per beam — 8–11 GB each). We reproduce them at a documented geometric
//! scale: the dose grid is coarsened (fewer rows) and the spot grid
//! widened (fewer columns) such that the *intensive* statistics that
//! drive kernel behaviour are preserved —
//!
//! * the ~70% empty-row fraction,
//! * the heavy-tailed row-length distribution and its liver-vs-prostate
//!   contrast (long rows vs short rows),
//! * density within the paper's 0.6–2% band (up to the documented scale
//!   distortion),
//! * the row >> column skew,
//!
//! while the *extensive* counters (nnz, rows) are extrapolated back to
//! the Table I values via [`DoseCase::extrapolation`] when feeding the
//! timing model (the simulated L2 is scaled by the same factor, see
//! `rt_gpusim::DeviceSpec::scaled_l2`). EXPERIMENTS.md reports generated
//! vs paper statistics for all six beams.

use crate::beam::{Beam, BeamAxis, SpotGridConfig};
use crate::grid::DoseGrid;
use crate::matrix::{DoseMatrixBuilder, EngineKind};
use crate::pencil::{McNoiseModel, PencilBeamEngine};
use crate::phantom::{Ellipsoid, Material, Phantom};
use rt_sparse::Csr;

/// Reference row of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaperRow {
    pub rows: f64,
    pub cols: f64,
    pub nnz: f64,
    pub nonzero_ratio_pct: f64,
    pub size_gb: f64,
}

/// Table I, verbatim.
pub const PAPER_TABLE1: [(&str, PaperRow); 6] = [
    (
        "Liver 1",
        PaperRow {
            rows: 2.97e6,
            cols: 6.80e4,
            nnz: 1.48e9,
            nonzero_ratio_pct: 0.73,
            size_gb: 8.880,
        },
    ),
    (
        "Liver 2",
        PaperRow {
            rows: 2.97e6,
            cols: 6.77e4,
            nnz: 1.28e9,
            nonzero_ratio_pct: 0.64,
            size_gb: 7.672,
        },
    ),
    (
        "Liver 3",
        PaperRow {
            rows: 2.97e6,
            cols: 6.99e4,
            nnz: 1.39e9,
            nonzero_ratio_pct: 0.67,
            size_gb: 8.368,
        },
    ),
    (
        "Liver 4",
        PaperRow {
            rows: 2.97e6,
            cols: 6.32e4,
            nnz: 1.84e9,
            nonzero_ratio_pct: 0.98,
            size_gb: 11.04,
        },
    ),
    (
        "Prostate 1",
        PaperRow {
            rows: 1.03e6,
            cols: 5.09e3,
            nnz: 9.50e7,
            nonzero_ratio_pct: 1.81,
            size_gb: 0.5744,
        },
    ),
    (
        "Prostate 2",
        PaperRow {
            rows: 1.03e6,
            cols: 4.96e3,
            nnz: 9.51e7,
            nonzero_ratio_pct: 1.86,
            size_gb: 0.5747,
        },
    ),
];

/// How much to shrink the generated cases relative to the default
/// simulation scale (which is itself far below clinical scale).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleConfig {
    /// Divides the voxel count (1.0 = default simulation scale, larger =
    /// smaller/faster matrices for tests).
    pub shrink: f64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig { shrink: 1.0 }
    }
}

impl ScaleConfig {
    /// A very small configuration for unit tests (sub-second generation).
    pub fn tiny() -> Self {
        ScaleConfig { shrink: 24.0 }
    }

    fn dim(&self, d: usize) -> usize {
        ((d as f64 / self.shrink.cbrt()).round() as usize).max(8)
    }

    fn spacing(&self, s: f64) -> f64 {
        s * self.shrink.cbrt()
    }
}

/// A generated beam matrix plus its Table I reference.
#[derive(Clone, Debug)]
pub struct DoseCase {
    pub name: String,
    /// `voxels x spots` dose deposition matrix, full precision.
    pub matrix: Csr<f64, u32>,
    /// The dose grid the rows are flattened from.
    pub grid: DoseGrid,
    /// The corresponding Table I row.
    pub paper: PaperRow,
}

impl DoseCase {
    /// Factor by which to extrapolate extensive counters (traffic, flops,
    /// warps) measured on this matrix up to the paper-scale problem:
    /// ratio of clinical to generated non-zeros (traffic is
    /// nnz-dominated; see the paper's own operational-intensity model).
    pub fn extrapolation(&self) -> f64 {
        self.paper.nnz / self.matrix.nnz() as f64
    }

    /// L2-scale factor to pair with [`DoseCase::extrapolation`]: the
    /// simulated device's cache is shrunk by the same ratio so capacity
    /// relations (matrix >> L2 > input vector) are preserved.
    pub fn l2_scale(&self) -> f64 {
        self.extrapolation().max(1.0)
    }
}

/// Case descriptor used by the generators.
#[derive(Clone, Debug)]
pub struct CaseSpec {
    pub name: &'static str,
    pub grid: DoseGrid,
    pub target: Ellipsoid,
    pub organ: Material,
    pub beams: Vec<BeamAxis>,
    pub spot_cfg: SpotGridConfig,
}

fn build_case(spec: &CaseSpec, table_offset: usize, noise: Option<McNoiseModel>) -> Vec<DoseCase> {
    let mut phantom = Phantom::uniform(spec.grid, Material::SoftTissue);
    phantom.paint_ellipsoid(spec.target, spec.organ);
    phantom.set_target(spec.target);

    let engine = PencilBeamEngine {
        rel_threshold: 1e-3,
        noise,
    };
    let builder = DoseMatrixBuilder::new(EngineKind::Pencil(engine));

    spec.beams
        .iter()
        .enumerate()
        .map(|(i, &axis)| {
            let beam = Beam::covering_target(&phantom, axis, spec.spot_cfg);
            let matrix = builder.build(&phantom, &beam);
            let (name, paper) = PAPER_TABLE1[table_offset + i];
            DoseCase {
                name: name.to_string(),
                matrix,
                grid: spec.grid,
                paper,
            }
        })
        .collect()
}

/// The liver case's spot-grid parameters at a given scale (exposed so
/// experiments can rebuild the exact beam geometry, e.g. Figure 1).
pub fn liver_spot_config(scale: ScaleConfig) -> SpotGridConfig {
    SpotGridConfig {
        lateral_spacing_mm: scale.spacing(2.8),
        layer_spacing_mm: scale.spacing(4.0),
        margin_mm: 6.0,
        sigma0_mm: 5.0,
    }
}

/// The liver case's phantom (with target contour) at a given scale.
pub fn liver_phantom(scale: ScaleConfig) -> Phantom {
    let grid = DoseGrid::new(
        scale.dim(56),
        scale.dim(40),
        scale.dim(40),
        4.0 * scale.shrink.cbrt(),
    );
    let c = (
        grid.nx as f64 / 2.0,
        grid.ny as f64 / 2.0,
        grid.nz as f64 / 2.0,
    );
    let target = Ellipsoid {
        center: (c.0 * 1.05, c.1 * 0.95, c.2),
        radii: (
            grid.nx as f64 * 0.15,
            grid.ny as f64 * 0.21,
            grid.nz as f64 * 0.21,
        ),
    };
    let mut phantom = Phantom::uniform(grid, Material::SoftTissue);
    phantom.paint_ellipsoid(target, Material::Liver);
    phantom.set_target(target);
    phantom
}

/// The liver case: four beams from different gantry angles (Table I rows
/// "Liver 1"–"Liver 4").
pub fn liver_case(scale: ScaleConfig) -> Vec<DoseCase> {
    let grid = DoseGrid::new(
        scale.dim(56),
        scale.dim(40),
        scale.dim(40),
        4.0 * scale.shrink.cbrt(),
    );
    let c = (
        grid.nx as f64 / 2.0,
        grid.ny as f64 / 2.0,
        grid.nz as f64 / 2.0,
    );
    let spec = CaseSpec {
        name: "liver",
        grid,
        // A large liver lesion, slightly off-centre.
        target: Ellipsoid {
            center: (c.0 * 1.05, c.1 * 0.95, c.2),
            radii: (
                grid.nx as f64 * 0.15,
                grid.ny as f64 * 0.21,
                grid.nz as f64 * 0.21,
            ),
        },
        organ: Material::Liver,
        beams: vec![
            BeamAxis::XPlus,
            BeamAxis::YPlus,
            BeamAxis::XMinus,
            BeamAxis::YMinus,
        ],
        spot_cfg: SpotGridConfig {
            lateral_spacing_mm: scale.spacing(2.8),
            layer_spacing_mm: scale.spacing(4.0),
            margin_mm: 6.0,
            sigma0_mm: 5.0,
        },
    };
    build_case(&spec, 0, Some(McNoiseModel::default()))
}

/// The prostate case: two parallel-opposed lateral beams (Table I rows
/// "Prostate 1"–"Prostate 2").
pub fn prostate_case(scale: ScaleConfig) -> Vec<DoseCase> {
    let grid = DoseGrid::new(
        scale.dim(40),
        scale.dim(29),
        scale.dim(29),
        4.0 * scale.shrink.cbrt(),
    );
    let c = (
        grid.nx as f64 / 2.0,
        grid.ny as f64 / 2.0,
        grid.nz as f64 / 2.0,
    );
    let spec = CaseSpec {
        name: "prostate",
        grid,
        // A small, central prostate target.
        target: Ellipsoid {
            center: c,
            radii: (
                grid.nx as f64 * 0.13,
                grid.ny as f64 * 0.18,
                grid.nz as f64 * 0.18,
            ),
        },
        organ: Material::SoftTissue,
        beams: vec![BeamAxis::XPlus, BeamAxis::XMinus],
        spot_cfg: SpotGridConfig {
            lateral_spacing_mm: scale.spacing(2.6),
            layer_spacing_mm: scale.spacing(4.2),
            margin_mm: 6.0,
            sigma0_mm: 5.0,
        },
    };
    build_case(&spec, 4, Some(McNoiseModel::default()))
}

/// All six Table I beams in order.
pub fn all_cases(scale: ScaleConfig) -> Vec<DoseCase> {
    let mut v = liver_case(scale);
    v.extend(prostate_case(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sparse::stats::RowStats;

    #[test]
    fn tiny_cases_generate_quickly_with_correct_counts() {
        let cases = all_cases(ScaleConfig::tiny());
        assert_eq!(cases.len(), 6);
        assert!(cases[0].name.starts_with("Liver"));
        assert!(cases[4].name.starts_with("Prostate"));
        for c in &cases {
            assert!(c.matrix.nnz() > 0, "{} empty", c.name);
            assert!(c.matrix.nrows() > c.matrix.ncols(), "{} not skewed", c.name);
            assert!(c.extrapolation() > 1.0);
        }
    }

    #[test]
    fn structure_resembles_paper_at_tiny_scale() {
        // Weak sanity bounds at tiny scale; the default scale is checked
        // in integration tests / EXPERIMENTS.md.
        for c in prostate_case(ScaleConfig::tiny()) {
            let s = RowStats::from_csr(&c.matrix);
            assert!(
                (0.3..0.95).contains(&s.empty_fraction()),
                "{}: empty fraction {}",
                c.name,
                s.empty_fraction()
            );
            assert!(s.avg_nnz_nonempty > 4.0);
        }
    }

    #[test]
    fn paper_table_is_internally_consistent() {
        for (name, row) in PAPER_TABLE1 {
            let ratio = row.nnz / (row.rows * row.cols) * 100.0;
            assert!(
                (ratio - row.nonzero_ratio_pct).abs() / row.nonzero_ratio_pct < 0.06,
                "{name}: ratio {ratio} vs {}",
                row.nonzero_ratio_pct
            );
            // size = 6 bytes per nnz (f16 value + u32 index).
            let size = row.nnz * 6.0 / 1e9;
            assert!(
                (size - row.size_gb).abs() / row.size_gb < 0.05,
                "{name}: size {size} vs {}",
                row.size_gb
            );
        }
    }
}
