//! Proton dose physics: range-energy relation, Bragg curve, lateral
//! spread.
//!
//! The models are the standard analytic approximations used by clinical
//! pencil-beam dose engines:
//!
//! * **Range-energy**: Bragg–Kleeman rule `R = alpha * E^p` with the
//!   water values `alpha = 0.022 mm/MeV^p`, `p = 1.77` (R in mm, E in
//!   MeV) — a 150 MeV proton has a ~157 mm range.
//! * **Depth dose**: Bortfeld-style pristine peak `D(d) ~ (R - d)^-0.435`
//!   convolved with Gaussian range straggling `sigma_R ~ 0.012 * R^0.935`
//!   (Gauss–Hermite quadrature), giving the entrance plateau, the sharp
//!   Bragg peak and the steep distal falloff.
//! * **Lateral spread**: Gaussian with `sigma(d) = sigma0 + k * d *
//!   (d / R)` — multiple Coulomb scattering grows roughly quadratically
//!   with depth relative to the residual range.

/// Bragg–Kleeman coefficient, mm / MeV^p.
pub const BK_ALPHA: f64 = 0.022;
/// Bragg–Kleeman exponent.
pub const BK_P: f64 = 1.77;
/// Exponent of the pristine Bragg curve singularity.
const BRAGG_EXP: f64 = -0.435;

/// Water-equivalent range (mm) of a proton with energy `e_mev`.
pub fn range_from_energy(e_mev: f64) -> f64 {
    assert!(e_mev > 0.0, "energy must be positive");
    BK_ALPHA * e_mev.powf(BK_P)
}

/// Inverse of [`range_from_energy`]: energy (MeV) for a target range (mm).
pub fn energy_from_range(range_mm: f64) -> f64 {
    assert!(range_mm > 0.0, "range must be positive");
    (range_mm / BK_ALPHA).powf(1.0 / BK_P)
}

/// Range straggling width (mm) for a range `r_mm`.
pub fn range_straggling(r_mm: f64) -> f64 {
    0.012 * r_mm.powf(0.935)
}

/// 9-point Gauss–Hermite abscissae/weights for ∫ f(x) e^{-x²} dx.
const GH_X: [f64; 9] = [
    -3.190993201781528,
    -2.266580584531843,
    -1.468553289216668,
    -0.723551018752838,
    0.0,
    0.723551018752838,
    1.468553289216668,
    2.266580584531843,
    3.190993201781528,
];
const GH_W: [f64; 9] = [
    3.960697726326438e-5,
    4.943624275536947e-3,
    8.847452739437657e-2,
    4.326515590025558e-1,
    7.202_352_156_060_51e-1,
    4.326515590025558e-1,
    8.847452739437657e-2,
    4.943624275536947e-3,
    3.960697726326438e-5,
];

/// Depth-dose (arbitrary units) at water-equivalent depth `d_mm` for a
/// beam of nominal range `r_mm`: the straggling-smeared Bortfeld curve.
pub fn bragg_dose(d_mm: f64, r_mm: f64) -> f64 {
    let sigma = range_straggling(r_mm).max(1e-6);
    // Convolve the pristine curve over the straggled range distribution:
    // ∫ pristine(d, R') N(R'; R, sigma) dR'
    //   = (1/sqrt(pi)) Σ w_i pristine(d, R + sqrt(2) sigma x_i).
    let mut acc = 0.0;
    for (x, w) in GH_X.iter().zip(GH_W.iter()) {
        let r_i = r_mm + core::f64::consts::SQRT_2 * sigma * x;
        if d_mm < r_i {
            acc += w * (r_i - d_mm).powf(BRAGG_EXP);
        }
    }
    acc / core::f64::consts::PI.sqrt()
}

/// Lateral Gaussian sigma (mm) at water-equivalent depth `d_mm` for
/// nominal range `r_mm`, given the spot sigma at the surface.
pub fn lateral_sigma(d_mm: f64, r_mm: f64, sigma0_mm: f64) -> f64 {
    let t = (d_mm / r_mm).clamp(0.0, 1.5);
    sigma0_mm + 0.028 * d_mm * t
}

/// Proton stopping power (arbitrary units) at depth `d` for a *sampled*
/// (already straggled) range `r` — the Monte Carlo engine's per-step
/// energy deposit. Clamped near the end of range.
pub fn stopping_power(d_mm: f64, r_mm: f64) -> f64 {
    let residual = (r_mm - d_mm).max(0.05);
    residual.powf(BRAGG_EXP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_energy_roundtrip() {
        for e in [70.0, 100.0, 150.0, 230.0] {
            let r = range_from_energy(e);
            assert!((energy_from_range(r) - e).abs() / e < 1e-12);
        }
    }

    #[test]
    fn clinical_ranges_are_plausible() {
        // 150 MeV protons reach ~15-16 cm in water.
        let r = range_from_energy(150.0);
        assert!((140.0..=180.0).contains(&r), "range {r} mm");
        // 70 MeV ~ 4 cm.
        let r70 = range_from_energy(70.0);
        assert!((35.0..=50.0).contains(&r70), "range {r70} mm");
    }

    #[test]
    fn bragg_curve_peaks_near_range() {
        let r = 150.0;
        let samples: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let d = i as f64 * r * 1.1 / 200.0;
                (d, bragg_dose(d, r))
            })
            .collect();
        let (peak_d, peak) = samples
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        // Peak within a few straggling widths of the nominal range.
        assert!(
            (peak_d - r).abs() < 4.0 * range_straggling(r),
            "peak at {peak_d}"
        );
        // Entrance plateau well below the peak (peak-to-plateau ratio of a
        // pristine-ish peak is ~3-5).
        let entrance = bragg_dose(1.0, r);
        assert!(peak / entrance > 2.0, "ratio {}", peak / entrance);
        // Distal falloff: dose a few sigma past the range is negligible.
        let distal = bragg_dose(r + 5.0 * range_straggling(r), r);
        assert!(distal < 0.02 * peak, "distal {distal} vs peak {peak}");
    }

    #[test]
    fn bragg_dose_is_finite_everywhere() {
        let r = 100.0;
        for i in 0..1000 {
            let d = i as f64 * 0.12;
            let v = bragg_dose(d, r);
            assert!(v.is_finite() && v >= 0.0, "dose {v} at {d}");
        }
    }

    #[test]
    fn lateral_sigma_grows_with_depth() {
        let r = 150.0;
        let s0 = lateral_sigma(0.0, r, 3.0);
        let s_mid = lateral_sigma(r / 2.0, r, 3.0);
        let s_end = lateral_sigma(r, r, 3.0);
        assert_eq!(s0, 3.0);
        assert!(s_mid > s0);
        assert!(s_end > s_mid);
        // End-of-range spread of a 15 cm beam is several mm.
        assert!((5.0..=15.0).contains(&s_end), "sigma {s_end}");
    }

    #[test]
    fn stopping_power_rises_toward_range_end() {
        let r = 100.0;
        assert!(stopping_power(90.0, r) > stopping_power(10.0, r));
        assert!(stopping_power(110.0, r).is_finite()); // clamped past range
    }
}
