//! Assembles dose deposition matrices from per-spot dose columns.

use crate::beam::Beam;
use crate::mc::MonteCarloEngine;
use crate::pencil::PencilBeamEngine;
use crate::phantom::Phantom;
use rt_sparse::Csr;

/// Which dose engine computes the spot columns.
#[derive(Clone, Debug)]
pub enum EngineKind {
    Pencil(PencilBeamEngine),
    MonteCarlo(MonteCarloEngine),
}

impl EngineKind {
    fn spot_column(&self, phantom: &Phantom, beam: &Beam, spot_index: usize) -> Vec<(usize, f64)> {
        let spot = &beam.spots[spot_index];
        match self {
            EngineKind::Pencil(e) => e.spot_column(phantom, beam, spot, spot_index),
            EngineKind::MonteCarlo(e) => e.spot_column(phantom, beam, spot, spot_index),
        }
    }
}

/// Builds the `voxels x spots` dose deposition matrix for one beam.
#[derive(Clone, Debug)]
pub struct DoseMatrixBuilder {
    pub engine: EngineKind,
    /// Worker threads for spot-parallel generation (0 = all cores).
    pub workers: usize,
}

impl DoseMatrixBuilder {
    pub fn new(engine: EngineKind) -> Self {
        DoseMatrixBuilder { engine, workers: 0 }
    }

    /// Computes every spot column (in parallel) and assembles the CSR
    /// dose deposition matrix: one row per voxel, one column per spot.
    /// Deterministic: spot columns are independent and merged in spot
    /// order regardless of scheduling.
    pub fn build(&self, phantom: &Phantom, beam: &Beam) -> Csr<f64, u32> {
        let nspots = beam.spots.len();
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
        .min(nspots.max(1));

        let chunk = nspots.div_ceil(workers.max(1)).max(1);
        let columns: Vec<Vec<(usize, f64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let engine = &self.engine;
                    s.spawn(move || {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(nspots);
                        (lo..hi)
                            .map(|i| engine.spot_column(phantom, beam, i))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("dose worker panicked"))
                .collect()
        });

        // Assemble spot-major (each spot's entries are sorted by voxel),
        // then transpose to the voxel-major dose deposition matrix.
        let spot_major = Csr::<f64, u32>::from_rows(
            phantom.grid().len(),
            &columns
                .into_iter()
                .map(|col| col.into_iter().collect())
                .collect::<Vec<_>>(),
        )
        .expect("spot columns are sorted and in-bounds");
        spot_major.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{BeamAxis, SpotGridConfig};
    use crate::grid::DoseGrid;
    use crate::phantom::{Ellipsoid, Material};

    fn setup() -> (Phantom, Beam) {
        let grid = DoseGrid::new(24, 16, 16, 3.0);
        let mut p = Phantom::uniform(grid, Material::Water);
        p.set_target(Ellipsoid {
            center: (12.0, 8.0, 8.0),
            radii: (4.0, 4.0, 4.0),
        });
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        (p, b)
    }

    #[test]
    fn matrix_has_one_column_per_spot() {
        let (p, b) = setup();
        let m =
            DoseMatrixBuilder::new(EngineKind::Pencil(PencilBeamEngine::default())).build(&p, &b);
        assert_eq!(m.ncols(), b.num_spots());
        assert_eq!(m.nrows(), p.grid().len());
        assert!(m.nnz() > 0);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let (p, b) = setup();
        let eng = EngineKind::Pencil(PencilBeamEngine::default());
        let m1 = DoseMatrixBuilder {
            engine: eng.clone(),
            workers: 1,
        }
        .build(&p, &b);
        let m4 = DoseMatrixBuilder {
            engine: eng,
            workers: 4,
        }
        .build(&p, &b);
        assert_eq!(m1, m4);
    }

    #[test]
    fn matrix_is_sparse_and_skewed() {
        let (p, b) = setup();
        let m =
            DoseMatrixBuilder::new(EngineKind::Pencil(PencilBeamEngine::default())).build(&p, &b);
        assert!(m.density() < 0.25, "density {}", m.density());
        assert!(
            m.nrows() > m.ncols(),
            "{} rows x {} cols",
            m.nrows(),
            m.ncols()
        );
    }

    #[test]
    fn columns_match_engine_output() {
        let (p, b) = setup();
        let engine = PencilBeamEngine::default();
        let m = DoseMatrixBuilder::new(EngineKind::Pencil(engine.clone())).build(&p, &b);
        let t = m.transpose();
        for spot_idx in [0usize, b.num_spots() / 2, b.num_spots() - 1] {
            let want = engine.spot_column(&p, &b, &b.spots[spot_idx], spot_idx);
            let (rows, vals) = t.row(spot_idx);
            let got: Vec<(usize, f64)> = rows
                .iter()
                .zip(vals.iter())
                .map(|(&r, &v)| (r as usize, v))
                .collect();
            assert_eq!(got, want, "spot {spot_idx}");
        }
    }

    #[test]
    fn mc_engine_builds_too() {
        let (p, b) = setup();
        let m = DoseMatrixBuilder::new(EngineKind::MonteCarlo(MonteCarloEngine {
            protons_per_spot: 50,
            ..Default::default()
        }))
        .build(&p, &b);
        assert_eq!(m.ncols(), b.num_spots());
        assert!(m.nnz() > 0);
    }
}
