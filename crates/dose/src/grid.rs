//! The dose grid: the voxelization shared by phantom, dose engine and
//! dose deposition matrix (matrix row = flattened voxel index).

/// A regular 3D voxel grid.
///
/// Flattened voxel index: `(z * ny + y) * nx + x` — x is the
/// fastest-varying axis, so a beam travelling along ±x deposits dose in
/// runs of consecutive indices (which is what makes the RayStation-style
/// segment format compact).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DoseGrid {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Isotropic voxel edge length in millimetres.
    pub voxel_mm: f64,
}

impl DoseGrid {
    pub fn new(nx: usize, ny: usize, nz: usize, voxel_mm: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid must be non-empty");
        assert!(voxel_mm > 0.0, "voxel size must be positive");
        DoseGrid {
            nx,
            ny,
            nz,
            voxel_mm,
        }
    }

    /// Total voxel count — the number of matrix rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false // constructor enforces non-empty dims
    }

    /// Flattened index of voxel `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`DoseGrid::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Physical extent along each axis in millimetres.
    pub fn extent_mm(&self) -> (f64, f64, f64) {
        (
            self.nx as f64 * self.voxel_mm,
            self.ny as f64 * self.voxel_mm,
            self.nz as f64 * self.voxel_mm,
        )
    }

    /// Grid centre in voxel coordinates.
    pub fn center(&self) -> (f64, f64, f64) {
        (
            self.nx as f64 / 2.0,
            self.ny as f64 / 2.0,
            self.nz as f64 / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = DoseGrid::new(7, 5, 3, 2.0);
        for idx in 0..g.len() {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
        }
    }

    #[test]
    fn x_is_fastest() {
        let g = DoseGrid::new(10, 4, 4, 1.0);
        assert_eq!(g.index(3, 1, 2) + 1, g.index(4, 1, 2));
    }

    #[test]
    fn extent_and_center() {
        let g = DoseGrid::new(10, 20, 30, 2.5);
        assert_eq!(g.extent_mm(), (25.0, 50.0, 75.0));
        assert_eq!(g.center(), (5.0, 10.0, 15.0));
        assert_eq!(g.len(), 6000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = DoseGrid::new(0, 5, 5, 1.0);
    }
}
