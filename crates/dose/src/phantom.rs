//! Voxelized density phantoms standing in for patient CT data.

use crate::grid::DoseGrid;

/// Tissue materials with relative (water = 1.0) stopping densities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Material {
    Air,
    Lung,
    Adipose,
    Water,
    SoftTissue,
    Liver,
    Bone,
}

impl Material {
    /// Relative proton stopping power (water-equivalent density).
    pub fn density(self) -> f64 {
        match self {
            Material::Air => 0.001,
            Material::Lung => 0.26,
            Material::Adipose => 0.95,
            Material::Water => 1.0,
            Material::SoftTissue => 1.04,
            Material::Liver => 1.06,
            Material::Bone => 1.6,
        }
    }
}

/// An axis-aligned ellipsoid in voxel coordinates, used both for anatomy
/// and to delineate targets / organs-at-risk.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ellipsoid {
    pub center: (f64, f64, f64),
    pub radii: (f64, f64, f64),
}

impl Ellipsoid {
    pub fn contains(&self, x: f64, y: f64, z: f64) -> bool {
        let dx = (x - self.center.0) / self.radii.0;
        let dy = (y - self.center.1) / self.radii.1;
        let dz = (z - self.center.2) / self.radii.2;
        dx * dx + dy * dy + dz * dz <= 1.0
    }
}

/// A density volume on a [`DoseGrid`].
#[derive(Clone, Debug)]
pub struct Phantom {
    grid: DoseGrid,
    density: Vec<f64>,
    /// The target (tumour) contour, if delineated.
    target: Option<Ellipsoid>,
}

impl Phantom {
    /// A uniform phantom of the given material.
    pub fn uniform(grid: DoseGrid, material: Material) -> Self {
        Phantom {
            grid,
            density: vec![material.density(); grid.len()],
            target: None,
        }
    }

    /// A water phantom — the classic commissioning geometry.
    pub fn water_box(grid: DoseGrid) -> Self {
        Phantom::uniform(grid, Material::Water)
    }

    #[inline]
    pub fn grid(&self) -> DoseGrid {
        self.grid
    }

    /// Paints an ellipsoidal region with a material.
    pub fn paint_ellipsoid(&mut self, e: Ellipsoid, material: Material) -> &mut Self {
        for z in 0..self.grid.nz {
            for y in 0..self.grid.ny {
                for x in 0..self.grid.nx {
                    if e.contains(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5) {
                        self.density[self.grid.index(x, y, z)] = material.density();
                    }
                }
            }
        }
        self
    }

    /// Declares the target contour (used by beam construction to aim
    /// spots, and by the optimizer to define objectives).
    pub fn set_target(&mut self, e: Ellipsoid) -> &mut Self {
        self.target = Some(e);
        self
    }

    #[inline]
    pub fn target(&self) -> Option<Ellipsoid> {
        self.target
    }

    /// Density at a voxel.
    #[inline]
    pub fn density_at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.density[self.grid.index(x, y, z)]
    }

    #[inline]
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Flattened indices of voxels inside the target contour.
    pub fn target_voxels(&self) -> Vec<usize> {
        let Some(t) = self.target else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for z in 0..self.grid.nz {
            for y in 0..self.grid.ny {
                for x in 0..self.grid.nx {
                    if t.contains(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5) {
                        out.push(self.grid.index(x, y, z));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_water() {
        let p = Phantom::water_box(DoseGrid::new(4, 4, 4, 1.0));
        assert!(p.densities().iter().all(|&d| d == 1.0));
    }

    #[test]
    fn painted_ellipsoid_changes_density() {
        let grid = DoseGrid::new(10, 10, 10, 1.0);
        let mut p = Phantom::water_box(grid);
        let e = Ellipsoid {
            center: (5.0, 5.0, 5.0),
            radii: (2.0, 2.0, 2.0),
        };
        p.paint_ellipsoid(e, Material::Bone);
        assert_eq!(p.density_at(5, 5, 5), Material::Bone.density());
        assert_eq!(p.density_at(0, 0, 0), 1.0);
    }

    #[test]
    fn target_voxels_inside_contour() {
        let grid = DoseGrid::new(10, 10, 10, 1.0);
        let mut p = Phantom::water_box(grid);
        let e = Ellipsoid {
            center: (5.0, 5.0, 5.0),
            radii: (2.5, 2.5, 2.5),
        };
        p.set_target(e);
        let tv = p.target_voxels();
        assert!(!tv.is_empty());
        // All returned voxels really are inside.
        for &idx in &tv {
            let (x, y, z) = grid.coords(idx);
            assert!(e.contains(x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5));
        }
        // Roughly the ellipsoid volume (4/3 pi r^3 ~ 65).
        assert!((40..=90).contains(&tv.len()), "got {}", tv.len());
    }

    #[test]
    fn no_target_no_voxels() {
        let p = Phantom::water_box(DoseGrid::new(4, 4, 4, 1.0));
        assert!(p.target_voxels().is_empty());
    }

    #[test]
    fn material_densities_ordered() {
        assert!(Material::Air.density() < Material::Lung.density());
        assert!(Material::Lung.density() < Material::Water.density());
        assert!(Material::Water.density() < Material::Bone.density());
    }
}
