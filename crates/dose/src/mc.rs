//! Simplified Monte Carlo proton transport.
//!
//! Each spot is simulated with `protons_per_spot` independent histories:
//! sampled range straggling, a Gaussian initial lateral offset, and a
//! multiple-Coulomb-scattering random walk accumulated step by step, with
//! energy deposited into the voxel the proton currently occupies. This is
//! the slow-but-honest engine: the same physics the analytic engine
//! integrates in closed form, plus genuine statistical noise — used for
//! small matrices, validation tests (the two engines must agree in the
//! mean) and the examples.

use crate::beam::{Beam, Spot};
use crate::pencil::AxisView;
use crate::phantom::Phantom;
use crate::physics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Monte Carlo engine.
#[derive(Clone, Debug)]
pub struct MonteCarloEngine {
    pub protons_per_spot: usize,
    /// Entries below `rel_threshold * column_peak` are dropped — same
    /// convention as the analytic engine; MC noise keeps stray voxels
    /// above any reasonable threshold, inflating nnz.
    pub rel_threshold: f64,
    pub seed: u64,
}

impl Default for MonteCarloEngine {
    fn default() -> Self {
        MonteCarloEngine {
            protons_per_spot: 2000,
            rel_threshold: 1e-3,
            seed: 0xBEA3,
        }
    }
}

impl MonteCarloEngine {
    /// Simulates one spot; returns `(flattened voxel, dose)` sorted by
    /// voxel. Deterministic for a given `(seed, spot_index)`.
    pub fn spot_column(
        &self,
        phantom: &Phantom,
        beam: &Beam,
        spot: &Spot,
        spot_index: usize,
    ) -> Vec<(usize, f64)> {
        let grid = phantom.grid();
        let vox = grid.voxel_mm;
        let view = AxisView::new(beam.axis, grid);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (spot_index as u64).wrapping_mul(0x9E3779B97F4A7C15));

        let straggle = physics::range_straggling(spot.range_mm);
        // Scattering kick per step, calibrated so the end-of-range lateral
        // sigma matches the analytic model's growth.
        let kick_mm = 0.55 * vox * (vox / spot.range_mm).sqrt();

        // Dense scratch + touched list (reused across histories).
        let mut dose = vec![0.0f64; grid.len()];
        let mut touched: Vec<usize> = Vec::new();

        for _ in 0..self.protons_per_spot {
            let r_sampled = spot.range_mm + straggle * sample_normal(&mut rng);
            if r_sampled <= 0.0 {
                continue;
            }
            // Initial lateral position (voxel units).
            let mut u = spot.u_mm / vox - 0.5 + beam.sigma0_mm / vox * sample_normal(&mut rng);
            let mut v = spot.v_mm / vox - 0.5 + beam.sigma0_mm / vox * sample_normal(&mut rng);
            let mut weq = 0.0f64;

            for step in 0..view.depth_len {
                let ui = u.round() as isize;
                let vi = v.round() as isize;
                if ui < 0 || vi < 0 || ui >= view.u_len as isize || vi >= view.v_len as isize {
                    break; // left the grid laterally
                }
                let (x, y, z) = view.coords(step, ui as usize, vi as usize);
                let density = phantom.density_at(x, y, z);
                let d_center = weq + 0.5 * density * vox;
                if d_center > r_sampled {
                    break; // end of range
                }
                dose[grid.index(x, y, z)] += physics::stopping_power(d_center, r_sampled);
                touched.push(grid.index(x, y, z));
                weq += density * vox;

                // Multiple Coulomb scattering random walk; kicks grow as
                // the proton slows down.
                let slow = 1.0 + 2.0 * (d_center / r_sampled);
                u += kick_mm / vox * slow * sample_normal(&mut rng);
                v += kick_mm / vox * slow * sample_normal(&mut rng);
            }
        }

        touched.sort_unstable();
        touched.dedup();
        let inv_n = 1.0 / self.protons_per_spot as f64;
        let mut entries: Vec<(usize, f64)> = touched
            .iter()
            .map(|&idx| (idx, dose[idx] * inv_n))
            .collect();
        let peak = entries.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        entries.retain(|&(_, w)| w >= self.rel_threshold * peak);
        entries
    }
}

/// Box–Muller standard normal.
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..core::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::{BeamAxis, SpotGridConfig};
    use crate::grid::DoseGrid;
    use crate::pencil::PencilBeamEngine;
    use crate::phantom::{Ellipsoid, Material};

    fn setup() -> (Phantom, Beam) {
        let grid = DoseGrid::new(32, 16, 16, 2.5);
        let mut p = Phantom::uniform(grid, Material::Water);
        p.set_target(Ellipsoid {
            center: (16.0, 8.0, 8.0),
            radii: (5.0, 4.0, 4.0),
        });
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        (p, b)
    }

    #[test]
    fn column_is_sorted_and_deterministic() {
        let (p, b) = setup();
        let eng = MonteCarloEngine {
            protons_per_spot: 300,
            ..Default::default()
        };
        let c1 = eng.spot_column(&p, &b, &b.spots[0], 3);
        let c2 = eng.spot_column(&p, &b, &b.spots[0], 3);
        assert_eq!(c1, c2);
        assert!(c1.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(!c1.is_empty());
    }

    #[test]
    fn mc_peak_depth_matches_analytic_engine() {
        let (p, b) = setup();
        let spot = Spot {
            u_mm: 20.0,
            v_mm: 20.0,
            range_mm: 50.0,
        };
        let mc = MonteCarloEngine {
            protons_per_spot: 3000,
            ..Default::default()
        };
        let pb = PencilBeamEngine::default();
        let grid = p.grid();

        let depth_profile = |col: &[(usize, f64)]| {
            let mut prof = vec![0.0f64; grid.nx];
            for &(v, w) in col {
                prof[grid.coords(v).0] += w;
            }
            prof
        };
        let peak_of = |prof: &[f64]| {
            prof.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let mc_peak = peak_of(&depth_profile(&mc.spot_column(&p, &b, &spot, 0)));
        let pb_peak = peak_of(&depth_profile(&pb.spot_column(&p, &b, &spot, 0)));
        assert!(
            (mc_peak as isize - pb_peak as isize).abs() <= 2,
            "MC peak voxel {mc_peak} vs analytic {pb_peak}"
        );
    }

    #[test]
    fn more_protons_reduce_noise() {
        let (p, b) = setup();
        let spot = Spot {
            u_mm: 20.0,
            v_mm: 20.0,
            range_mm: 45.0,
        };
        let pb = PencilBeamEngine {
            rel_threshold: 1e-3,
            noise: None,
        };
        let reference = pb.spot_column(&p, &b, &spot, 0);
        let ref_map: std::collections::HashMap<usize, f64> = reference.iter().cloned().collect();
        let total_ref: f64 = reference.iter().map(|&(_, w)| w).sum();

        let rel_err = |n: usize| {
            let mc = MonteCarloEngine {
                protons_per_spot: n,
                ..Default::default()
            };
            let col = mc.spot_column(&p, &b, &spot, 0);
            let total_mc: f64 = col.iter().map(|&(_, w)| w).sum();
            // Compare normalized overlap on the reference support.
            let mut err = 0.0;
            for (vx, w) in &col {
                let r = ref_map.get(vx).copied().unwrap_or(0.0) / total_ref;
                err += (w / total_mc - r).abs();
            }
            err
        };
        let coarse = rel_err(200);
        let fine = rel_err(4000);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn lateral_scatter_widens_deep_layers() {
        let (p, b) = setup();
        let spot = Spot {
            u_mm: 20.0,
            v_mm: 20.0,
            range_mm: 60.0,
        };
        let mc = MonteCarloEngine {
            protons_per_spot: 4000,
            ..Default::default()
        };
        let col = mc.spot_column(&p, &b, &spot, 0);
        let grid = p.grid();
        let lateral_spread_at = |x_target: usize| {
            let pts: Vec<(f64, f64)> = col
                .iter()
                .filter(|&&(v, _)| grid.coords(v).0 == x_target)
                .map(|&(v, w)| (grid.coords(v).1 as f64, w))
                .collect();
            let tot: f64 = pts.iter().map(|p| p.1).sum();
            let mean: f64 = pts.iter().map(|p| p.0 * p.1).sum::<f64>() / tot;
            (pts.iter().map(|p| p.1 * (p.0 - mean).powi(2)).sum::<f64>() / tot).sqrt()
        };
        let shallow = lateral_spread_at(2);
        let deep = lateral_spread_at(20); // near the 60 mm range
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }
}
