//! Synthetic proton pencil-beam-scanning dose engine.
//!
//! The paper exports its dose deposition matrices from RayStation's Monte
//! Carlo engine running on clinical liver and prostate CT data — both
//! proprietary. This crate substitutes them with a physics-based synthetic
//! generator whose output matrices reproduce the *structural* statistics
//! Table I and Figure 2 document (shape skew, high sparsity, ~70% empty
//! rows, heavy-tailed row lengths), which is all the downstream kernels
//! and performance analysis depend on:
//!
//! * [`Phantom`] — a voxelized density volume with simple anatomy
//!   (ellipsoidal organs in tissue).
//! * [`physics`] — proton range-energy relation, an analytic Bragg curve
//!   with range straggling, and lateral-spread growth with depth.
//! * [`Beam`] — axis-aligned beam geometry with energy layers and a
//!   lateral spot grid (the "beam's eye view" of Figure 1).
//! * [`PencilBeamEngine`] — fast analytic dose kernel per spot, with an
//!   optional Monte Carlo *noise model* that reproduces the paper's
//!   observation that MC noise inflates the non-zero count.
//! * [`MonteCarloEngine`] — an actual (simplified) Monte Carlo proton
//!   transport: sampled range straggling and multiple-Coulomb-scattering
//!   random walks, for small cases, tests and the examples.
//! * [`cases`] — the liver (4 beams) and prostate (2 parallel-opposed
//!   beams) presets at a configurable geometric scale.

pub mod beam;
pub mod cases;
pub mod grid;
pub mod matrix;
pub mod mc;
pub mod pencil;
pub mod phantom;
pub mod photon;
pub mod physics;

pub use beam::{Beam, BeamAxis, Spot};
pub use cases::{CaseSpec, DoseCase, ScaleConfig};
pub use grid::DoseGrid;
pub use matrix::{DoseMatrixBuilder, EngineKind};
pub use mc::MonteCarloEngine;
pub use pencil::{McNoiseModel, PencilBeamEngine};
pub use phantom::{Material, Phantom};
pub use photon::PhotonBeamletEngine;
