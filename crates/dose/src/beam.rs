//! Beam geometry: axis-aligned proton beams with energy layers and a
//! scanned lateral spot grid (pencil beam scanning, Figure 1).

use crate::phantom::Phantom;
use crate::physics;

/// Direction the beam travels through the grid. Gantry angles are
//  quantized to the grid axes (the liver case uses all four ±x/±y
/// directions, the prostate case the two opposed ±x ones) — sufficient
/// for reproducing matrix structure, and it keeps water-equivalent depth
/// integration exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BeamAxis {
    /// Travelling toward +x (enters at x = 0).
    XPlus,
    /// Travelling toward -x (enters at x = nx-1).
    XMinus,
    /// Travelling toward +y.
    YPlus,
    /// Travelling toward -y.
    YMinus,
}

impl BeamAxis {
    /// Human-readable gantry label.
    pub fn label(self) -> &'static str {
        match self {
            BeamAxis::XPlus => "gantry 270",
            BeamAxis::XMinus => "gantry 90",
            BeamAxis::YPlus => "gantry 0",
            BeamAxis::YMinus => "gantry 180",
        }
    }
}

/// One pencil-beam spot: a lateral position in the beam's eye view plus a
/// beam energy (equivalently, an energy-layer range).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Spot {
    /// First lateral coordinate in mm (y for x-beams, x for y-beams).
    pub u_mm: f64,
    /// Second lateral coordinate in mm (always z).
    pub v_mm: f64,
    /// Nominal range in water-equivalent mm (defines the energy layer).
    pub range_mm: f64,
}

impl Spot {
    /// Beam energy in MeV corresponding to the spot's range.
    pub fn energy_mev(&self) -> f64 {
        physics::energy_from_range(self.range_mm)
    }
}

/// A treatment beam: an axis plus its scanned spots. The spot order is
/// the scanline pattern of the paper's Figure 1 (serpentine within each
/// energy layer, layers from deep to shallow, as delivered clinically).
#[derive(Clone, Debug)]
pub struct Beam {
    pub axis: BeamAxis,
    pub spots: Vec<Spot>,
    /// Lateral spot sigma at the phantom surface, mm.
    pub sigma0_mm: f64,
}

/// Parameters for constructing a beam's spot grid over a target.
#[derive(Clone, Copy, Debug)]
pub struct SpotGridConfig {
    /// Lateral distance between neighbouring spots, mm.
    pub lateral_spacing_mm: f64,
    /// Water-equivalent distance between energy layers, mm.
    pub layer_spacing_mm: f64,
    /// Margin added around the target projection, mm.
    pub margin_mm: f64,
    /// Surface spot sigma, mm.
    pub sigma0_mm: f64,
}

impl Default for SpotGridConfig {
    fn default() -> Self {
        SpotGridConfig {
            lateral_spacing_mm: 5.0,
            layer_spacing_mm: 6.0,
            margin_mm: 6.0,
            sigma0_mm: 5.0,
        }
    }
}

impl Beam {
    /// Builds the spot grid covering the phantom's target from the given
    /// axis. Spots are placed on a regular lateral grid clipped to the
    /// target's elliptical projection (+margin), for each energy layer
    /// spanning the target's depth extent.
    ///
    /// Panics if the phantom has no target contour.
    pub fn covering_target(phantom: &Phantom, axis: BeamAxis, cfg: SpotGridConfig) -> Beam {
        let target = phantom
            .target()
            .expect("phantom must have a target contour");
        let grid = phantom.grid();
        let vox = grid.voxel_mm;

        // Target geometry in mm. Depth axis + lateral axes by beam axis.
        let (c_depth, c_u, r_depth, r_u) = match axis {
            BeamAxis::XPlus | BeamAxis::XMinus => (
                target.center.0 * vox,
                target.center.1 * vox,
                target.radii.0 * vox,
                target.radii.1 * vox,
            ),
            BeamAxis::YPlus | BeamAxis::YMinus => (
                target.center.1 * vox,
                target.center.0 * vox,
                target.radii.1 * vox,
                target.radii.0 * vox,
            ),
        };
        let c_v = target.center.2 * vox;
        let r_v = target.radii.2 * vox;

        // Entry-side depth of the target, measured along the beam.
        let depth_extent_mm = match axis {
            BeamAxis::XPlus | BeamAxis::YPlus => (c_depth - r_depth, c_depth + r_depth),
            BeamAxis::XMinus => {
                let total = grid.nx as f64 * vox;
                (total - c_depth - r_depth, total - c_depth + r_depth)
            }
            BeamAxis::YMinus => {
                let total = grid.ny as f64 * vox;
                (total - c_depth - r_depth, total - c_depth + r_depth)
            }
        };

        // Energy layers: nominal ranges spanning the depth extent. Dose
        // grids are mostly near-water density, so geometric depth is a
        // good proxy for the water-equivalent range.
        let mut spots = Vec::new();
        let mut range = depth_extent_mm.1 + cfg.margin_mm * 0.5; // deepest layer first
        let min_range = (depth_extent_mm.0 - cfg.margin_mm * 0.5).max(cfg.layer_spacing_mm);
        let mut serpentine = false;
        while range >= min_range {
            // The target's elliptical cross-section at this depth.
            let depth_frac = ((range - c_depth) / r_depth).clamp(-1.0, 1.0);
            let shrink = (1.0 - depth_frac * depth_frac).sqrt().max(0.15);
            let ru = r_u * shrink + cfg.margin_mm;
            let rv = r_v * shrink + cfg.margin_mm;

            let nu = (2.0 * ru / cfg.lateral_spacing_mm).ceil() as i64;
            let nv = (2.0 * rv / cfg.lateral_spacing_mm).ceil() as i64;
            for j in -nv / 2..=nv / 2 {
                let v = c_v + j as f64 * cfg.lateral_spacing_mm;
                let mut row: Vec<Spot> = (-nu / 2..=nu / 2)
                    .map(|i| Spot {
                        u_mm: c_u + i as f64 * cfg.lateral_spacing_mm,
                        v_mm: v,
                        range_mm: range,
                    })
                    .filter(|s| {
                        let du = (s.u_mm - c_u) / ru;
                        let dv = (s.v_mm - c_v) / rv;
                        du * du + dv * dv <= 1.0
                    })
                    .collect();
                if serpentine {
                    row.reverse();
                }
                serpentine = !serpentine;
                spots.extend(row);
            }
            range -= cfg.layer_spacing_mm;
        }

        Beam {
            axis,
            spots,
            sigma0_mm: cfg.sigma0_mm,
        }
    }

    /// Number of spots — the matrix column count contributed by this beam.
    pub fn num_spots(&self) -> usize {
        self.spots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DoseGrid;
    use crate::phantom::{Ellipsoid, Material, Phantom};

    fn phantom() -> Phantom {
        let grid = DoseGrid::new(40, 40, 40, 2.5); // 10 cm cube
        let mut p = Phantom::uniform(grid, Material::SoftTissue);
        p.set_target(Ellipsoid {
            center: (20.0, 20.0, 20.0),
            radii: (6.0, 5.0, 4.0),
        });
        p
    }

    #[test]
    fn spots_cover_target_depth_range() {
        let p = phantom();
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        assert!(b.num_spots() > 50, "got {}", b.num_spots());
        let ranges: Vec<f64> = b.spots.iter().map(|s| s.range_mm).collect();
        let min = ranges.iter().cloned().fold(f64::MAX, f64::min);
        let max = ranges.iter().cloned().fold(0.0, f64::max);
        // Target spans depth 35..65 mm (center 50, radius 15).
        assert!(min < 45.0, "min range {min}");
        assert!(max > 55.0, "max range {max}");
    }

    #[test]
    fn spots_lie_within_lateral_projection() {
        let p = phantom();
        let b = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        // Lateral center: u = y = 50 mm, v = z = 50 mm; radius u = 12.5 mm
        // + margin.
        for s in &b.spots {
            assert!((s.u_mm - 50.0).abs() <= 12.5 + 7.0, "u {}", s.u_mm);
            assert!((s.v_mm - 50.0).abs() <= 10.0 + 7.0, "v {}", s.v_mm);
        }
    }

    #[test]
    fn opposed_beams_have_similar_spot_counts() {
        let p = phantom();
        let a = Beam::covering_target(&p, BeamAxis::XPlus, SpotGridConfig::default());
        let b = Beam::covering_target(&p, BeamAxis::XMinus, SpotGridConfig::default());
        let ratio = a.num_spots() as f64 / b.num_spots() as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn y_axis_beam_swaps_lateral_coords() {
        let grid = DoseGrid::new(60, 40, 40, 2.5);
        let mut p = Phantom::uniform(grid, Material::SoftTissue);
        // Off-center target in x.
        p.set_target(Ellipsoid {
            center: (40.0, 20.0, 20.0),
            radii: (5.0, 5.0, 4.0),
        });
        let b = Beam::covering_target(&p, BeamAxis::YPlus, SpotGridConfig::default());
        // u is now the x coordinate: spots center near 100 mm.
        let mean_u: f64 = b.spots.iter().map(|s| s.u_mm).sum::<f64>() / b.num_spots() as f64;
        assert!((mean_u - 100.0).abs() < 10.0, "mean u {mean_u}");
    }

    #[test]
    fn spot_energy_is_consistent_with_range() {
        let s = Spot {
            u_mm: 0.0,
            v_mm: 0.0,
            range_mm: 100.0,
        };
        let e = s.energy_mev();
        assert!((physics::range_from_energy(e) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn layer_count_scales_with_spacing() {
        let p = phantom();
        let coarse = Beam::covering_target(
            &p,
            BeamAxis::XPlus,
            SpotGridConfig {
                layer_spacing_mm: 12.0,
                ..Default::default()
            },
        );
        let fine = Beam::covering_target(
            &p,
            BeamAxis::XPlus,
            SpotGridConfig {
                layer_spacing_mm: 3.0,
                ..Default::default()
            },
        );
        assert!(fine.num_spots() > 2 * coarse.num_spots());
    }
}
