use rt_dose::cases::{all_cases, ScaleConfig};
use rt_sparse::stats::RowStats;

fn main() {
    let t0 = std::time::Instant::now();
    let cases = all_cases(ScaleConfig::default());
    eprintln!("generation: {:?}", t0.elapsed());
    for c in &cases {
        let s = RowStats::from_csr(&c.matrix);
        println!(
            "{:<11} rows {:>8} cols {:>6} nnz {:>10} dens {:>6.2}% empty {:>5.1}% avg_nnz/ne {:>7.1} <32 {:>5.1}% max {:>6} extrap {:>7.1}",
            c.name, s.nrows, s.ncols, s.nnz, s.density()*100.0, s.empty_fraction()*100.0,
            s.avg_nnz_nonempty, s.frac_nonempty_below_warp*100.0, s.max_row_len, c.extrapolation()
        );
    }
}
