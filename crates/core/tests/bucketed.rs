//! Degenerate-partition and reproducibility contract of the bucketed
//! row-partition dispatch (ISSUE 6):
//!
//! * **All rows empty** — the plan has zero populated buckets; the
//!   deterministic zero-fill member must still run, so stale output
//!   memory never leaks into the dose vector.
//! * **Single non-empty row** — exactly one bucket with one row; the
//!   scatter map must land that row's dose at its original index.
//! * **Every row length 1** — the entire matrix collapses into the
//!   first bucket; each dose is the bitwise product of its one entry.
//! * **Bitwise sweep** — with `BucketWidths::uniform(w)` every row is
//!   reduced with the same truncated halving tree as the fixed-width
//!   tiled kernel, so the bucketed dispatch must match
//!   `vector_csr_spmv_tiled` bit-for-bit at every width, across
//!   `ExecMode` and worker counts (mirrors `tests/tiled.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{
    vector_csr_bucketed_reference, vector_csr_spmv_bucketed, vector_csr_spmv_tiled, BucketWidths,
    GpuCsrMatrix, GpuRowPlan,
};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, ExecMode, Gpu, TILE_WIDTHS};
use rt_sparse::{Csr, RowPlan};
use std::sync::Arc;

fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=max_row);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    m.convert_values()
}

fn run_bucketed(m: &Csr<F16, u32>, x: &[f64], mode: ExecMode, widths: BucketWidths) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gm = GpuCsrMatrix::upload(&gpu, m);
    let gplan = GpuRowPlan::upload(&gpu, Arc::new(RowPlan::from_csr(m)));
    let dx = gpu.upload(x);
    let dy = gpu.alloc_out::<f64>(m.nrows());
    // Stale garbage in the output buffer: the zero-fill member, not
    // buffer allocation, is what the determinism contract relies on.
    for i in 0..m.nrows() {
        dy.set(i, f64::from_bits(0xDEAD_BEEF_DEAD_BEEF));
    }
    vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 512, &gplan, widths);
    dy.to_vec().iter().map(|v| v.to_bits()).collect()
}

fn run_tiled(m: &Csr<F16, u32>, x: &[f64], mode: ExecMode, width: u32) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gm = GpuCsrMatrix::upload(&gpu, m);
    let dx = gpu.upload(x);
    let dy = gpu.alloc_out::<f64>(m.nrows());
    vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, width);
    dy.to_vec().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn all_rows_empty_zero_fills_stale_output() {
    let rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 64];
    let m64: Csr<f64, u32> = Csr::from_rows(16, &rows).unwrap();
    let m: Csr<F16, u32> = m64.convert_values();

    let plan = RowPlan::from_csr(&m);
    assert_eq!(plan.nonempty_rows(), 0);
    assert_eq!(plan.empty_rows(), 64);

    let x = vec![1.0f64; 16];
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let y = run_bucketed(&m, &x, mode, BucketWidths::natural());
        assert_eq!(y, vec![0.0f64.to_bits(); 64], "{mode:?}");
    }
}

#[test]
fn single_nonempty_row_scatters_to_its_original_index() {
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 100];
    rows[37] = vec![(1, 0.5), (4, 1.25), (9, 2.0), (11, 0.75), (30, 1.5)];
    let m64: Csr<f64, u32> = Csr::from_rows(32, &rows).unwrap();
    let m: Csr<F16, u32> = m64.convert_values();

    let plan = RowPlan::from_csr(&m);
    assert_eq!(plan.nonempty_rows(), 1);

    let x: Vec<f64> = (0..32).map(|i| i as f64 * 0.125 + 0.5).collect();
    let want: Vec<u64> = vector_csr_bucketed_reference(&m, &x, BucketWidths::natural())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let y = run_bucketed(&m, &x, ExecMode::Sequential, BucketWidths::natural());
    assert_eq!(y, want);
    assert_ne!(y[37], 0.0f64.to_bits(), "row 37 carries the only dose");
    for (i, &bits) in y.iter().enumerate() {
        if i != 37 {
            assert_eq!(bits, 0.0f64.to_bits(), "row {i} must be zero-filled");
        }
    }
}

#[test]
fn every_row_length_one_collapses_into_first_bucket() {
    let mut rng = StdRng::seed_from_u64(99);
    let ncols = 48;
    let rows: Vec<Vec<(usize, f64)>> = (0..300)
        .map(|_| vec![(rng.gen_range(0..ncols), rng.gen_range(0.25..2.0))])
        .collect();
    let m64: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    let m: Csr<F16, u32> = m64.convert_values();

    let plan = RowPlan::from_csr(&m);
    assert_eq!(plan.nonempty_rows(), 300);

    let x: Vec<f64> = (0..ncols).map(|i| (i as f64 * 0.17).sin() + 1.5).collect();
    let y = run_bucketed(&m, &x, ExecMode::Sequential, BucketWidths::natural());
    // One entry per row: the dose is exactly val * x[col], no tree.
    for (row, bits) in y.iter().enumerate() {
        let (cols, vals) = m.row(row);
        let want = f64::from(vals[0]) * x[cols[0] as usize];
        assert_eq!(*bits, want.to_bits(), "row {row}");
    }
}

/// One test function mutates `RTDOSE_SIM_THREADS` for every width and
/// worker count (env mutation must not race with other tests, so it all
/// lives in a single `#[test]`), mirroring `tests/tiled.rs`.
#[test]
fn uniform_widths_match_tiled_bitwise_across_modes_and_worker_counts() {
    let m = random_csr(700, 160, 48, 21);
    let x: Vec<f64> = (0..160)
        .map(|i| ((i * 13 + 5) % 23) as f64 * 0.04 + 0.25)
        .collect();

    let saved = std::env::var("RTDOSE_SIM_THREADS").ok();
    for &w in &TILE_WIDTHS {
        let golden = run_tiled(&m, &x, ExecMode::Sequential, w);
        let seq = run_bucketed(&m, &x, ExecMode::Sequential, BucketWidths::uniform(w));
        assert_eq!(golden, seq, "width {w}: bucketed != tiled (sequential)");

        for workers in ["1", "4", "8"] {
            std::env::set_var("RTDOSE_SIM_THREADS", workers);
            for round in 0..2 {
                let par = run_bucketed(&m, &x, ExecMode::Parallel, BucketWidths::uniform(w));
                assert_eq!(
                    golden, par,
                    "width {w}, {workers} workers, round {round} diverged from tiled"
                );
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("RTDOSE_SIM_THREADS", v),
        None => std::env::remove_var("RTDOSE_SIM_THREADS"),
    }
}
