//! Degenerate-partition and reproducibility contract of the bucketed
//! **backward pass** (ISSUE 9) — the gradient-direction mirror of
//! `tests/bucketed.rs`, dispatching over a `RowPlan` of the transpose:
//!
//! * **All beamlet rows empty** — a transpose with zero nnz still runs
//!   the deterministic zero-fill member, so stale output memory never
//!   leaks into the gradient vector.
//! * **Single active beamlet** — exactly one non-empty transpose row;
//!   the scatter map must land its gradient at the original beamlet
//!   index.
//! * **Bitwise sweep** — with `BucketWidths::uniform(w)` every beamlet
//!   row reduces with the same truncated halving tree as the
//!   fixed-width tiled kernel on the transpose, so the partitioned
//!   gradient must match the whole-matrix gradient bit-for-bit at every
//!   width, across `ExecMode` and 1/4/8 workers — and the
//!   `DoseCalculator` gradient entry points must agree with the raw
//!   kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{
    gradient_csr_spmv_bucketed, vector_csr_bucketed_reference, vector_csr_spmv_tiled, BucketWidths,
    DoseCalculator, GpuCsrMatrix, GpuRowPlan,
};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, ExecMode, Gpu, TILE_WIDTHS};
use rt_sparse::{Csr, RowPlan};
use std::sync::Arc;

/// A voxel×beamlet matrix whose **transpose** is skewed: only ~1 in 3
/// beamlet columns is active, so most transpose rows are empty (the
/// field-aperture shape the partition exploits).
fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<f64, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let active: Vec<usize> = (0..ncols).filter(|c| c % 3 == 0).collect();
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=max_row);
            let mut cols: Vec<usize> = (0..len)
                .map(|_| active[rng.gen_range(0..active.len())])
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    Csr::from_rows(ncols, &rows).unwrap()
}

/// Raw-kernel partitioned back-projection on the transpose, with the
/// output buffer pre-filled with stale garbage (the zero-fill member,
/// not allocation, is what the contract relies on).
fn grad_bucketed(t: &Csr<F16, u32>, r: &[f64], mode: ExecMode, widths: BucketWidths) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gt = GpuCsrMatrix::upload(&gpu, t);
    let gplan = GpuRowPlan::upload(&gpu, Arc::new(RowPlan::from_csr(t)));
    let dr = gpu.upload(r);
    let dg = gpu.alloc_out::<f64>(t.nrows());
    for i in 0..t.nrows() {
        dg.set(i, f64::from_bits(0xDEAD_BEEF_DEAD_BEEF));
    }
    gradient_csr_spmv_bucketed(&gpu, &gt, &dr, &dg, 512, &gplan, widths);
    dg.to_vec().iter().map(|v| v.to_bits()).collect()
}

/// Raw-kernel whole-matrix back-projection: the fixed-width tiled
/// kernel run directly on the transpose.
fn grad_whole(t: &Csr<F16, u32>, r: &[f64], mode: ExecMode, width: u32) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gt = GpuCsrMatrix::upload(&gpu, t);
    let dr = gpu.upload(r);
    let dg = gpu.alloc_out::<f64>(t.nrows());
    vector_csr_spmv_tiled(&gpu, &gt, &dr, &dg, 512, width);
    dg.to_vec().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn all_beamlet_rows_empty_zero_fills_stale_gradient() {
    // 64 voxels × 16 beamlets with zero deposits: the transpose is 16
    // all-empty beamlet rows.
    let rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 64];
    let m64: Csr<f64, u32> = Csr::from_rows(16, &rows).unwrap();
    let t: Csr<F16, u32> = m64.transpose().convert_values();

    let plan = RowPlan::from_csr(&t);
    assert_eq!(plan.nonempty_rows(), 0);
    assert_eq!(plan.empty_rows(), 16);

    let r = vec![1.0f64; 64];
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let g = grad_bucketed(&t, &r, mode, BucketWidths::natural());
        assert_eq!(g, vec![0.0f64.to_bits(); 16], "{mode:?}");
    }
}

#[test]
fn single_active_beamlet_scatters_to_its_original_index() {
    // Every deposit lands in beamlet column 37: the transpose has one
    // non-empty row whose gradient must scatter back to index 37.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 100];
    for (i, row) in rows.iter_mut().enumerate().step_by(9) {
        *row = vec![(37, 0.5 + i as f64 * 0.01)];
    }
    let m64: Csr<f64, u32> = Csr::from_rows(64, &rows).unwrap();
    let t: Csr<F16, u32> = m64.transpose().convert_values();

    let plan = RowPlan::from_csr(&t);
    assert_eq!(plan.nonempty_rows(), 1);

    let r: Vec<f64> = (0..100).map(|i| i as f64 * 0.125 + 0.5).collect();
    let want: Vec<u64> = vector_csr_bucketed_reference(&t, &r, BucketWidths::natural())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let g = grad_bucketed(&t, &r, ExecMode::Sequential, BucketWidths::natural());
    assert_eq!(g, want);
    assert_ne!(g[37], 0.0f64.to_bits(), "beamlet 37 carries the gradient");
    for (i, &bits) in g.iter().enumerate() {
        if i != 37 {
            assert_eq!(bits, 0.0f64.to_bits(), "beamlet {i} must be zero-filled");
        }
    }
}

/// One test function mutates `RTDOSE_SIM_THREADS` for every width and
/// worker count (env mutation must not race with other tests, so it all
/// lives in a single `#[test]`), mirroring `tests/bucketed.rs`.
#[test]
fn partitioned_gradients_match_whole_matrix_bitwise_across_modes_and_worker_counts() {
    let m64 = random_csr(700, 160, 48, 21);
    let t: Csr<F16, u32> = m64.transpose().convert_values();
    let r: Vec<f64> = (0..700)
        .map(|i| ((i * 13 + 5) % 23) as f64 * 0.04 + 0.25)
        .collect();

    let saved = std::env::var("RTDOSE_SIM_THREADS").ok();
    for &w in &TILE_WIDTHS {
        // Whole-matrix gradient at width w is the golden value.
        let golden = grad_whole(&t, &r, ExecMode::Sequential, w);
        let seq = grad_bucketed(&t, &r, ExecMode::Sequential, BucketWidths::uniform(w));
        assert_eq!(golden, seq, "width {w}: partitioned != whole (sequential)");

        // The calculator-level entry points honour the same contract:
        // grad-partitioned compute_gradient_term == whole-matrix
        // compute_gradient_term at the uniform width, bit for bit.
        let whole_calc = DoseCalculator::builder(&m64)
            .with_transpose()
            .grad_tile_width(w)
            .build()
            .unwrap();
        let part_calc = DoseCalculator::builder(&m64)
            .with_transpose()
            .grad_partitioned(BucketWidths::uniform(w))
            .build()
            .unwrap();
        let gw: Vec<u64> = whole_calc
            .compute_gradient_term(&r)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let gp: Vec<u64> = part_calc
            .compute_gradient_term(&r)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(gw, gp, "width {w}: calculator partitioned != whole");
        let gb = part_calc.compute_gradient_batch(&[&r, &r]).unwrap();
        for out in &gb.outputs {
            let bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, gp, "width {w}: batched gradient diverged");
        }

        for workers in ["1", "4", "8"] {
            std::env::set_var("RTDOSE_SIM_THREADS", workers);
            for round in 0..2 {
                let par = grad_bucketed(&t, &r, ExecMode::Parallel, BucketWidths::uniform(w));
                assert_eq!(
                    golden, par,
                    "width {w}, {workers} workers, round {round} diverged from whole-matrix"
                );
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("RTDOSE_SIM_THREADS", v),
        None => std::env::remove_var("RTDOSE_SIM_THREADS"),
    }
}
