//! Reproducibility and correctness contract of the sub-warp tiled SpMV
//! family (ISSUE 4):
//!
//! * each tile width is **bitwise reproducible** run-to-run, across
//!   `ExecMode::Sequential` / `ExecMode::Parallel`, and across worker
//!   counts (1 / 4 / 8);
//! * every width agrees with the host SpMV reference within f64
//!   tolerance (widths legitimately differ *from each other* bitwise —
//!   a different reduce tree folds the partial sums in a different
//!   order);
//! * the autotuner is deterministic: the same matrix always yields the
//!   same pick, in both heuristic and measured-probe modes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{vector_csr_spmv_tiled, vector_csr_tiled_reference, GpuCsrMatrix, KernelSelect};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, ExecMode, Gpu, TILE_WIDTHS};
use rt_sparse::Csr;

fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=max_row);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    m.convert_values()
}

fn run(m: &Csr<F16, u32>, x: &[f64], mode: ExecMode, width: u32) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gm = GpuCsrMatrix::upload(&gpu, m);
    let dx = gpu.upload(x);
    let dy = gpu.alloc_out::<f64>(m.nrows());
    vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, width);
    dy.to_vec().iter().map(|v| v.to_bits()).collect()
}

/// One test function mutates `RTDOSE_SIM_THREADS` for every width and
/// worker count (env mutation must not race with other tests, so it all
/// lives in a single `#[test]`).
#[test]
fn every_width_is_bitwise_reproducible_across_modes_and_worker_counts() {
    let m = random_csr(700, 160, 48, 21);
    let x: Vec<f64> = (0..160)
        .map(|i| ((i * 13 + 5) % 23) as f64 * 0.04 + 0.25)
        .collect();

    let saved = std::env::var("RTDOSE_SIM_THREADS").ok();
    for &w in &TILE_WIDTHS {
        let golden = run(&m, &x, ExecMode::Sequential, w);
        // Matches the documented per-width lane/tree arithmetic exactly.
        let x64 = x.clone();
        let want: Vec<u64> = vector_csr_tiled_reference(&m, &x64, w)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(golden, want, "width {w} reference mismatch");

        for workers in ["1", "4", "8"] {
            std::env::set_var("RTDOSE_SIM_THREADS", workers);
            for round in 0..2 {
                let par = run(&m, &x, ExecMode::Parallel, w);
                assert_eq!(
                    golden, par,
                    "width {w}, {workers} workers, round {round} diverged"
                );
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("RTDOSE_SIM_THREADS", v),
        None => std::env::remove_var("RTDOSE_SIM_THREADS"),
    }
}

#[test]
fn every_width_matches_host_reference_within_tolerance() {
    let m = random_csr(500, 96, 20, 22);
    let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.31).cos() + 1.1).collect();
    let mut want = vec![0.0; 500];
    m.spmv_ref(&x, &mut want).unwrap();

    for &w in &TILE_WIDTHS {
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(500);
        vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, w);
        for (g, want) in dy.to_vec().iter().zip(want.iter()) {
            assert!(
                (g - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "width {w}: {g} vs {want}"
            );
        }
    }
}

#[test]
fn autotuner_is_deterministic() {
    let spec = DeviceSpec::a100();
    let m = random_csr(5000, 512, 8, 23);
    for select in [KernelSelect::Heuristic, KernelSelect::MeasuredProbe] {
        let a = select.choose(&spec, &m, 512).unwrap();
        let b = select.choose(&spec, &m, 512).unwrap();
        assert_eq!(a, b, "{select:?} must pick the same width twice");
        assert!(TILE_WIDTHS.contains(&a.tile_width));
    }
}
