//! Determinism regression tests for the executor (ISSUE 2 satellite).
//!
//! Contract (also documented in DESIGN.md §"Memory pipeline"):
//!
//! * **Functional output** of the vector CSR kernel is *bitwise* identical
//!   between `ExecMode::Sequential` and `ExecMode::Parallel`, for any
//!   worker count: the lane partitioning and the shuffle-down reduction
//!   tree fix the summation order, and rows are stored to disjoint
//!   indices.
//! * **Traffic counters** are exactly reproducible under `Sequential`.
//!   Under `Parallel` the cache eviction order depends on worker
//!   interleaving, so `dram_bytes` may drift at the margin — but only at
//!   the margin: compulsory (first-touch) misses and all write traffic
//!   are interleaving-independent, so the observed drift is a few percent
//!   of total DRAM traffic. We assert a 10% tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{vector_csr_spmv, GpuCsrMatrix};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, ExecMode, Gpu, KernelStats};
use rt_sparse::Csr;

fn random_csr(nrows: usize, ncols: usize, avg_row: usize, seed: u64) -> Csr<f64, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=2 * avg_row);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    Csr::from_rows(ncols, &rows).unwrap()
}

fn run(m: &Csr<F16, u32>, x: &[f64], mode: ExecMode) -> (Vec<u64>, KernelStats) {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
    let gm = GpuCsrMatrix::upload(&gpu, m);
    let dx = gpu.upload(x);
    let dy = gpu.alloc_out::<f64>(m.nrows());
    let stats = vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);
    (dy.to_vec().iter().map(|v| v.to_bits()).collect(), stats)
}

#[test]
fn vector_csr_output_is_bitwise_identical_across_modes() {
    let m: Csr<F16, u32> = random_csr(900, 200, 80, 7).convert_values();
    let x: Vec<f64> = (0..200)
        .map(|i| ((i * 31 + 7) % 17) as f64 * 0.0625 + 0.5)
        .collect();

    let (seq_bits, _) = run(&m, &x, ExecMode::Sequential);
    for round in 0..3 {
        let (par_bits, _) = run(&m, &x, ExecMode::Parallel);
        assert_eq!(
            seq_bits, par_bits,
            "parallel round {round} diverged bitwise from sequential"
        );
    }
}

#[test]
fn dram_bytes_agree_across_modes_within_tolerance() {
    let m: Csr<F16, u32> = random_csr(900, 200, 80, 8).convert_values();
    let x: Vec<f64> = vec![1.0; 200];

    let (_, seq) = run(&m, &x, ExecMode::Sequential);
    let (_, par) = run(&m, &x, ExecMode::Parallel);

    // Interleaving-independent counters must agree exactly.
    assert_eq!(seq.flops, par.flops);
    assert_eq!(seq.requested_bytes, par.requested_bytes);
    assert_eq!(seq.l2_write_sectors, par.l2_write_sectors);
    assert_eq!(seq.warps, par.warps);
    // Total sector reads are fixed (hit/miss split is not).
    assert_eq!(
        seq.l2_read_hits + seq.l2_read_misses,
        par.l2_read_hits + par.l2_read_misses
    );

    // DRAM traffic: eviction order varies with interleaving, compulsory
    // misses and writebacks do not — documented 10% tolerance.
    let (a, b) = (seq.dram_total_bytes() as f64, par.dram_total_bytes() as f64);
    let rel = (a - b).abs() / a.max(1.0);
    assert!(
        rel <= 0.10,
        "dram_bytes drifted {:.1}% between modes (seq {a}, par {b})",
        rel * 100.0
    );
}

#[test]
fn sequential_counters_reproduce_exactly_across_runs() {
    let m: Csr<F16, u32> = random_csr(400, 150, 60, 9).convert_values();
    let x: Vec<f64> = vec![0.75; 150];
    let (bits1, s1) = run(&m, &x, ExecMode::Sequential);
    let (bits2, s2) = run(&m, &x, ExecMode::Sequential);
    assert_eq!(bits1, bits2);
    assert_eq!(s1, s2, "sequential counters must be bit-reproducible");
}
