//! Golden-value regression test for the simulated memory pipeline.
//!
//! Under `ExecMode::Sequential` the simulator's traffic counters are a
//! pure function of the kernel and its inputs: sector sequences, L2
//! hit/miss split, writebacks and per-buffer attribution must all be
//! bit-identical run to run *and commit to commit*. The constants below
//! were recorded from the pre-batching scalar pipeline (one L2 probe
//! and one region lookup per sector); the warp-granular batched
//! pipeline must reproduce them exactly.
//!
//! Each workload runs twice, on the full A100 L2 (40 MiB: everything
//! fits, misses are all cold) and on a 1/8192-scaled L2 (capacity
//! evictions and dirty writebacks exercised).
//!
//! To regenerate after an *intentional* traffic-model change:
//! `GOLDEN_PRINT=1 cargo test -p rt-core --test golden_traffic -- --nocapture`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{scalar_csr_spmv, sell_spmv, vector_csr_spmv, GpuCsrMatrix, GpuSellMatrix};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, ExecMode, Gpu, KernelStats};
use rt_sparse::{Csr, SellCSigma};
use std::fmt::Write as _;

fn random_csr(nrows: usize, ncols: usize, avg_row: usize, seed: u64) -> Csr<f64, u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=2 * avg_row);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    Csr::from_rows(ncols, &rows).unwrap()
}

fn record(out: &mut String, label: &str, gpu: &Gpu, stats: &KernelStats) {
    writeln!(
        out,
        "{label}: flops={} req={} hit={} miss={} wr={} wb={} atom={} warps={}",
        stats.flops,
        stats.requested_bytes,
        stats.l2_read_hits,
        stats.l2_read_misses,
        stats.l2_write_sectors,
        stats.dram_writeback_sectors,
        stats.atomic_ops,
        stats.warps,
    )
    .unwrap();
    for t in gpu.traffic_report() {
        writeln!(
            out,
            "{label}.{}: rd={} dram={} wr={}",
            t.name, t.read_sectors, t.dram_read_sectors, t.write_sectors
        )
        .unwrap();
    }
}

/// Runs all three kernels sequentially on one device config and returns
/// the counter transcript.
fn transcript(spec: DeviceSpec, tag: &str) -> String {
    let mut out = String::new();

    // Vector CSR, Half/double: the paper's headline kernel.
    {
        let m: Csr<F16, u32> = random_csr(700, 160, 90, 11).convert_values();
        let x: Vec<f64> = (0..160)
            .map(|i| ((i * 13 + 5) % 23) as f64 * 0.125)
            .collect();
        let gpu = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload_named(&gpu, &m);
        let dx = gpu.upload_named("x", &x);
        let dy = gpu.alloc_out_named::<f64>("y", 700);
        let stats = vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);
        record(&mut out, &format!("{tag}/vector"), &gpu, &stats);
    }

    // Scalar CSR: thread-per-row, the uncoalesced strawman.
    {
        let m: Csr<F16, u32> = random_csr(500, 120, 40, 22).convert_values();
        let x: Vec<f64> = (0..120).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        let gpu = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload_named(&gpu, &m);
        let dx = gpu.upload_named("x", &x);
        let dy = gpu.alloc_out_named::<f64>("y", 500);
        let stats = scalar_csr_spmv(&gpu, &gm, &dx, &dy, 256);
        record(&mut out, &format!("{tag}/scalar"), &gpu, &stats);
    }

    // SELL-C-32: chunked ELL with row permutation.
    {
        let m: Csr<F16, u32> = random_csr(640, 140, 60, 33).convert_values();
        let sell = SellCSigma::from_csr(&m, 32, 256);
        let x: Vec<f64> = (0..140).map(|i| ((i * 7 + 3) % 11) as f64 * 0.25).collect();
        let gpu = Gpu::with_mode(spec, ExecMode::Sequential);
        let gm = GpuSellMatrix::upload(&gpu, &sell);
        let dx = gpu.upload_named("x", &x);
        let dy = gpu.alloc_out_named::<f64>("y", 640);
        let stats = sell_spmv(&gpu, &gm, &dx, &dy, 512);
        record(&mut out, &format!("{tag}/sell"), &gpu, &stats);
    }

    out
}

fn full_transcript() -> String {
    let mut out = transcript(DeviceSpec::a100(), "a100");
    // 1/8192 of 40 MiB = 5 KiB: far smaller than the matrix working
    // sets, so streaming traffic evicts the reused buffers between
    // touches, exercising victim selection and dirty writebacks.
    out.push_str(&transcript(DeviceSpec::a100().scaled_l2(8192.0), "smallL2"));
    out
}

#[test]
fn sequential_counters_match_golden() {
    let got = full_transcript();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("--- golden transcript begin ---");
        print!("{got}");
        println!("--- golden transcript end ---");
    }
    assert_eq!(
        got, GOLDEN,
        "Sequential traffic counters diverged from the recorded golden \
         values; if the traffic model changed intentionally, regenerate \
         with GOLDEN_PRINT=1 (see module docs)"
    );
}

/// Recorded from the pre-batching pipeline; see module docs.
const GOLDEN: &str = "\
a100/vector: flops=61270 req=440090 hit=18727 miss=5873 wr=700 wb=175 atom=0 warps=704
\
a100/vector.row_ptr: rd=1400 dram=88 wr=0
\
a100/vector.col_idx: rd=4862 dram=3830 wr=0
\
a100/vector.values: rd=3031 dram=1915 wr=0
\
a100/vector.x: rd=15307 dram=40 wr=0
\
a100/vector.y: rd=0 dram=0 wr=700
\
a100/scalar: flops=21594 req=157222 hit=25950 miss=2118 wr=125 wb=125 atom=0 warps=16
\
a100/scalar.row_ptr: rd=78 dram=63 wr=0
\
a100/scalar.col_idx: rd=10753 dram=1350 wr=0
\
a100/scalar.values: rd=10625 dram=675 wr=0
\
a100/scalar.x: rd=6612 dram=30 wr=0
\
a100/scalar.y: rd=0 dram=0 wr=125
\
a100/sell: flops=50432 req=360944 hit=6509 miss=4851 wr=640 wb=160 atom=0 warps=32
\
a100/sell.x: rd=6512 dram=35 wr=0
\
a100/sell.y: rd=0 dram=0 wr=640
\
smallL2/vector: flops=61270 req=440090 hit=18727 miss=5873 wr=700 wb=175 atom=0 warps=704
\
smallL2/vector.row_ptr: rd=1400 dram=88 wr=0
\
smallL2/vector.col_idx: rd=4862 dram=3830 wr=0
\
smallL2/vector.values: rd=3031 dram=1915 wr=0
\
smallL2/vector.x: rd=15307 dram=40 wr=0
\
smallL2/vector.y: rd=0 dram=0 wr=700
\
smallL2/scalar: flops=21594 req=157222 hit=25947 miss=2121 wr=125 wb=125 atom=0 warps=16
\
smallL2/scalar.row_ptr: rd=78 dram=63 wr=0
\
smallL2/scalar.col_idx: rd=10753 dram=1350 wr=0
\
smallL2/scalar.values: rd=10625 dram=675 wr=0
\
smallL2/scalar.x: rd=6612 dram=33 wr=0
\
smallL2/scalar.y: rd=0 dram=0 wr=125
\
smallL2/sell: flops=50432 req=360944 hit=6177 miss=5183 wr=640 wb=374 atom=0 warps=32
\
smallL2/sell.x: rd=6512 dram=348 wr=0
\
smallL2/sell.y: rd=0 dram=0 wr=640
\
";
