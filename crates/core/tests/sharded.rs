//! Bitwise reproducibility of the row-sharded multi-device dispatch.
//!
//! The §II-D contract extended across devices: for any shard count K, any
//! pool size/composition, any executor mode or worker count, and any
//! shard completion order, the merged sharded dose must be **bitwise
//! identical** to the unsharded kernel at the same (pinned) widths —
//! disjoint row ranges make the merge a pure scatter, and pinned global
//! widths make each row's arithmetic shard-invariant.

use rt_core::{
    vector_csr_spmm_sharded, vector_csr_spmv, vector_csr_spmv_bucketed, vector_csr_spmv_sharded,
    vector_csr_spmv_tiled, BucketWidths, GpuCsrMatrix, GpuRowPlan, ShardDispatch, ShardedCsr,
};
use rt_f16::F16;
use rt_gpusim::{DeviceGroup, DeviceSpec, ExecMode, Gpu};
use rt_sparse::{Csr, RowPlan, ShardPlan};
use std::sync::Arc;

/// Beam-like: ~90% empty rows, dense core rows, short shell rows — the
/// shape the nnz-balanced split exists for.
fn beam_matrix(nrows: usize, ncols: usize) -> Csr<f64, u32> {
    let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
        .map(|r| {
            if r % 29 == 0 {
                (0..48.min(ncols))
                    .map(|c| (c, ((r * 7 + c * 3) % 41) as f64 * 0.07 + 0.1))
                    .collect()
            } else if r % 13 == 0 {
                let mut pair = vec![
                    (r % ncols, (r % 17) as f64 * 0.2 + 0.3),
                    ((r * 3 + 1) % ncols, 0.9),
                ];
                pair.sort_by_key(|&(c, _)| c);
                pair.dedup_by_key(|&mut (c, _)| c);
                pair
            } else {
                Vec::new()
            }
        })
        .collect();
    Csr::from_rows(ncols, &rows).unwrap()
}

fn input(ncols: usize) -> Vec<f64> {
    (0..ncols)
        .map(|i| ((i * 13 + 5) % 23) as f64 * 0.04 + 0.25)
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The unsharded golden result at the dispatch's pinned widths, on one
/// Sequential A100.
fn unsharded_bits(m: &Csr<F16, u32>, x: &[f64], dispatch: ShardDispatch) -> Vec<u64> {
    let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
    let gm = GpuCsrMatrix::upload(&gpu, m);
    let dx = gpu.upload(x);
    let dy = gpu.alloc_out::<f64>(m.nrows());
    match dispatch {
        ShardDispatch::Fixed(32) => {
            vector_csr_spmv(&gpu, &gm, &dx, &dy, 256);
        }
        ShardDispatch::Fixed(w) => {
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 256, w);
        }
        ShardDispatch::Bucketed(widths) => {
            let gplan = GpuRowPlan::upload(&gpu, Arc::new(RowPlan::from_csr(m)));
            vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 256, &gplan, widths);
        }
    }
    bits(&dy.to_vec())
}

fn sharded_bits(
    m: &Csr<F16, u32>,
    x: &[f64],
    k: usize,
    specs: Vec<DeviceSpec>,
    mode: ExecMode,
    dispatch: ShardDispatch,
) -> Vec<u64> {
    let plan = ShardPlan::build(m, k);
    let group = DeviceGroup::with_mode(specs, mode);
    let sm = ShardedCsr::upload(&group, &plan);
    let (y, _) = vector_csr_spmv_sharded(
        &group,
        &sm,
        x,
        256,
        dispatch,
        &rt_core::profile_half_double(),
    )
    .unwrap();
    bits(&y)
}

/// One test function mutates `RTDOSE_SIM_THREADS` for every combination
/// (env mutation must not race with other tests, so it all lives in a
/// single `#[test]`), mirroring `tests/tiled.rs` / `tests/bucketed.rs`.
#[test]
fn sharded_is_bitwise_identical_across_k_pools_modes_and_worker_counts() {
    let m: Csr<F16, u32> = beam_matrix(2600, 192).convert_values();
    let x = input(192);
    let pools: [Vec<DeviceSpec>; 2] = [
        vec![DeviceSpec::a100()],
        vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()],
    ];
    let dispatches = [
        ShardDispatch::Fixed(32),
        ShardDispatch::Fixed(4),
        ShardDispatch::Bucketed(BucketWidths::natural()),
    ];

    let saved = std::env::var("RTDOSE_SIM_THREADS").ok();
    for dispatch in dispatches {
        let golden = unsharded_bits(&m, &x, dispatch);
        for k in 1..=4usize {
            for pool in &pools {
                let got = sharded_bits(&m, &x, k, pool.clone(), ExecMode::Sequential, dispatch);
                assert_eq!(
                    got,
                    golden,
                    "k={k} pool={} dispatch={} (sequential)",
                    pool.len(),
                    dispatch.label()
                );
            }
        }
        for workers in ["1", "4", "8"] {
            std::env::set_var("RTDOSE_SIM_THREADS", workers);
            let got = sharded_bits(&m, &x, 3, pools[1].clone(), ExecMode::Parallel, dispatch);
            assert_eq!(
                got,
                golden,
                "{workers} workers dispatch={} diverged",
                dispatch.label()
            );
        }
    }
    match saved {
        Some(v) => std::env::set_var("RTDOSE_SIM_THREADS", v),
        None => std::env::remove_var("RTDOSE_SIM_THREADS"),
    }
}

#[test]
fn shuffled_shard_completion_orders_scatter_identically() {
    let m: Csr<F16, u32> = beam_matrix(1500, 128).convert_values();
    let x = input(128);
    let plan = ShardPlan::build(&m, 4);
    let group = DeviceGroup::with_mode(
        vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()],
        ExecMode::Sequential,
    );
    let sm = ShardedCsr::upload(&group, &plan);
    let (y, _) = vector_csr_spmv_sharded(
        &group,
        &sm,
        &x,
        256,
        ShardDispatch::Fixed(4),
        &rt_core::profile_half_double(),
    )
    .unwrap();

    // Re-execute each shard in isolation and scatter in shuffled
    // completion orders: disjoint row ranges mean any landing order
    // yields the same merged dose.
    for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]] {
        let mut merged = vec![0.0f64; m.nrows()];
        for &s in &order {
            let shard = &plan.shards()[s];
            let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
            let gm = GpuCsrMatrix::upload(&gpu, &shard.matrix);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(shard.nrows());
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 256, 4);
            merged[shard.row_start..shard.row_end].copy_from_slice(&dy.to_vec());
        }
        assert_eq!(bits(&merged), bits(&y), "order {order:?}");
    }
}

#[test]
fn spmm_sharded_matches_spmv_sharded_per_vector() {
    let m: Csr<F16, u32> = beam_matrix(1200, 96).convert_values();
    let vectors: Vec<Vec<f64>> = (0..3)
        .map(|v| {
            (0..96)
                .map(|i| ((v * 96 + i) * 7 % 19) as f64 * 0.05 + 0.2)
                .collect()
        })
        .collect();
    let plan = ShardPlan::build(&m, 3);
    let group = DeviceGroup::with_mode(
        vec![DeviceSpec::a100(), DeviceSpec::v100()],
        ExecMode::Sequential,
    );
    let sm = ShardedCsr::upload(&group, &plan);
    let dispatch = ShardDispatch::Bucketed(BucketWidths::natural());
    let (ys, report) = vector_csr_spmm_sharded(
        &group,
        &sm,
        &vectors,
        256,
        dispatch,
        &rt_core::profile_half_double(),
    )
    .unwrap();
    assert_eq!(ys.len(), 3);
    // Batched gather ships one result per vector per non-empty row.
    let per_vector: u64 = plan.gather_bytes();
    assert_eq!(report.gather_bytes, per_vector * 3);
    for (v, x) in vectors.iter().enumerate() {
        let (y, _) = vector_csr_spmv_sharded(
            &group,
            &sm,
            x,
            256,
            dispatch,
            &rt_core::profile_half_double(),
        )
        .unwrap();
        assert_eq!(bits(&ys[v]), bits(&y), "vector {v}");
    }
}

#[test]
fn transpose_shards_by_its_own_rows_keep_gradients_bitwise() {
    // The gradient path runs A^T x: sharding A^T by *its* rows (= columns
    // of A) keeps gradient outputs disjoint too. Widths are pinned from
    // the whole transpose before the split (Fixed or a global bucketed
    // table each shard's own RowPlan indexes into), so the partitioned
    // backward pass is shard-invariant exactly like the forward pass.
    let m64 = beam_matrix(900, 160);
    let t: Csr<F16, u32> = m64.transpose().convert_values();
    let x = input(900);
    for dispatch in [
        ShardDispatch::Fixed(32),
        ShardDispatch::Fixed(8),
        ShardDispatch::Bucketed(BucketWidths::natural()),
    ] {
        let golden = unsharded_bits(&t, &x, dispatch);
        for k in [2, 3] {
            let got = sharded_bits(
                &t,
                &x,
                k,
                vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()],
                ExecMode::Sequential,
                dispatch,
            );
            assert_eq!(got, golden, "transpose k={k} dispatch={}", dispatch.label());
        }
    }
}
