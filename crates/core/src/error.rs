//! The workspace-wide error type for fallible public entry points.
//!
//! Hand-rolled (the workspace has no `thiserror`), `Clone + PartialEq`
//! so per-request failures can be stored, compared and replayed by the
//! serving engine, and `std::error::Error` so it composes with `?` and
//! `Box<dyn Error>` in binaries.
//!
//! Layering: `rt-sparse` keeps its structural [`SparseError`] and
//! snapshot errors (they predate this type and are precise); `RtError`
//! wraps them at the `rt-core` / `rt-engine` boundary so calculator and
//! engine callers handle exactly one error enum. The serving variants
//! (`QueueFull`, `DeadlineExceeded`, ...) live here too so the engine
//! does not need a second enum wrapping this one.

use core::fmt;
use rt_sparse::io::SnapshotError;
use rt_sparse::SparseError;

/// Why a dose-calculation request, calculator construction, or engine
/// operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// The matrix failed structural CSR validation.
    Sparse(SparseError),
    /// An RTDM snapshot could not be loaded (carries the rendered cause;
    /// [`SnapshotError`] holds a non-cloneable `io::Error`).
    Snapshot(String),
    /// An input vector had the wrong length for the matrix it targets.
    DimensionMismatch {
        /// What was being checked ("weights", "residual", ...).
        what: &'static str,
        expected: usize,
        actual: usize,
    },
    /// The matrix has zero rows or zero columns — nothing to serve.
    EmptyMatrix { nrows: usize, ncols: usize },
    /// A gradient was requested from a calculator built without the
    /// transpose copy.
    TransposeUnavailable,
    /// `threads_per_block` must be a multiple of 32 in `32..=1024`.
    InvalidThreadsPerBlock(u32),
    /// A counter extrapolation factor must be finite and positive.
    InvalidScale(f64),
    /// A cooperative-group tile width outside the supported set.
    InvalidTileWidth(u32),
    /// The engine has no such registered plan.
    UnknownPlan(String),
    /// A plan with this name is already registered.
    DuplicatePlan(String),
    /// The engine was built with an empty device pool.
    EmptyDevicePool,
    /// The bounded request queue was full (load shed at admission).
    QueueFull { capacity: usize },
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded { budget_ms: f64, waited_ms: f64 },
    /// The request payload exceeds the engine's configured limit.
    RequestTooLarge { len: usize, max: usize },
    /// The engine is shutting down and no longer accepts requests.
    EngineShutdown,
    /// An execution policy asked for a replica/shard placement the
    /// device pool cannot satisfy (carries the rendered reason).
    InvalidPlacement(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Sparse(e) => write!(f, "invalid sparse matrix: {e}"),
            RtError::Snapshot(msg) => write!(f, "snapshot load failed: {msg}"),
            RtError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} length {actual}, expected {expected}"),
            RtError::EmptyMatrix { nrows, ncols } => {
                write!(f, "degenerate matrix: {nrows} rows x {ncols} cols")
            }
            RtError::TransposeUnavailable => {
                write!(f, "gradient requires a calculator built with_transpose")
            }
            RtError::InvalidThreadsPerBlock(tpb) => write!(
                f,
                "threads_per_block must be a multiple of 32 in 32..=1024, got {tpb}"
            ),
            RtError::InvalidScale(s) => {
                write!(f, "scale factor must be finite and positive, got {s}")
            }
            RtError::InvalidTileWidth(w) => {
                write!(f, "tile width must be one of [2, 4, 8, 16, 32], got {w}")
            }
            RtError::UnknownPlan(name) => write!(f, "unknown plan: {name}"),
            RtError::DuplicatePlan(name) => write!(f, "plan already registered: {name}"),
            RtError::EmptyDevicePool => write!(f, "engine requires at least one device"),
            RtError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RtError::DeadlineExceeded {
                budget_ms,
                waited_ms,
            } => write!(
                f,
                "deadline exceeded: budget {budget_ms:.1} ms, waited {waited_ms:.1} ms"
            ),
            RtError::RequestTooLarge { len, max } => {
                write!(f, "request length {len} exceeds limit {max}")
            }
            RtError::EngineShutdown => write!(f, "engine is shutting down"),
            RtError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<SparseError> for RtError {
    fn from(e: SparseError) -> Self {
        RtError::Sparse(e)
    }
}

impl From<SnapshotError> for RtError {
    fn from(e: SnapshotError) -> Self {
        // Structural failures keep their typed cause; everything else
        // (io, magic, truncation) is a rendered message.
        match e {
            SnapshotError::Structure(s) => RtError::Sparse(s),
            other => RtError::Snapshot(other.to_string()),
        }
    }
}

/// A short machine-readable tag for metrics/JSON (one per variant).
impl RtError {
    pub fn kind(&self) -> &'static str {
        match self {
            RtError::Sparse(_) => "sparse",
            RtError::Snapshot(_) => "snapshot",
            RtError::DimensionMismatch { .. } => "dimension_mismatch",
            RtError::EmptyMatrix { .. } => "empty_matrix",
            RtError::TransposeUnavailable => "transpose_unavailable",
            RtError::InvalidThreadsPerBlock(_) => "invalid_threads_per_block",
            RtError::InvalidScale(_) => "invalid_scale",
            RtError::InvalidTileWidth(_) => "invalid_tile_width",
            RtError::UnknownPlan(_) => "unknown_plan",
            RtError::DuplicatePlan(_) => "duplicate_plan",
            RtError::EmptyDevicePool => "empty_device_pool",
            RtError::QueueFull { .. } => "queue_full",
            RtError::DeadlineExceeded { .. } => "deadline_exceeded",
            RtError::RequestTooLarge { .. } => "request_too_large",
            RtError::EngineShutdown => "engine_shutdown",
            RtError::InvalidPlacement(_) => "invalid_placement",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RtError::DimensionMismatch {
            what: "weights",
            expected: 10,
            actual: 3,
        };
        assert_eq!(e.to_string(), "weights length 3, expected 10");
        assert!(RtError::QueueFull { capacity: 8 }.to_string().contains("8"));
        assert!(RtError::InvalidThreadsPerBlock(48)
            .to_string()
            .contains("48"));
    }

    #[test]
    fn sparse_errors_convert() {
        let s = SparseError::RowPtrLength {
            expected: 5,
            actual: 3,
        };
        let e: RtError = s.clone().into();
        assert_eq!(e, RtError::Sparse(s));
        assert_eq!(e.kind(), "sparse");
    }

    #[test]
    fn snapshot_errors_convert() {
        let e: RtError = SnapshotError::BadMagic.into();
        assert_eq!(e, RtError::Snapshot("not an RTDM snapshot".to_string()));
        // Structural snapshot failures stay typed.
        let s = SparseError::RowPtrNotMonotonic { row: 2 };
        let e: RtError = SnapshotError::Structure(s.clone()).into();
        assert_eq!(e, RtError::Sparse(s));
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            RtError::EmptyMatrix { nrows: 0, ncols: 0 }.kind(),
            RtError::TransposeUnavailable.kind(),
            RtError::UnknownPlan("x".into()).kind(),
            RtError::DuplicatePlan("x".into()).kind(),
            RtError::EmptyDevicePool.kind(),
            RtError::QueueFull { capacity: 1 }.kind(),
            RtError::DeadlineExceeded {
                budget_ms: 1.0,
                waited_ms: 2.0,
            }
            .kind(),
            RtError::RequestTooLarge { len: 9, max: 4 }.kind(),
            RtError::EngineShutdown.kind(),
            RtError::InvalidScale(-1.0).kind(),
            RtError::InvalidTileWidth(7).kind(),
            RtError::InvalidPlacement("r > pool".into()).kind(),
        ];
        let set: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
