//! High-level dose calculation API — what the treatment-plan optimizer
//! and the serving engine call every iteration.
//!
//! Construction is builder-first and fallible: [`DoseCalculator::builder`]
//! validates the configuration and returns `Result<_, RtError>` instead
//! of panicking, so untrusted inputs (a serving engine's requests, a
//! CLI-loaded snapshot) surface as typed errors.

use crate::bucketed::{
    bucketed_group_report, gradient_csr_spmv_bucketed, vector_csr_spmm_bucketed,
    vector_csr_spmv_bucketed, BucketWidths, GpuRowPlan,
};
use crate::error::RtError;
use crate::tiled::{vector_csr_spmm_tiled, vector_csr_spmv_tiled};
use crate::vector_csr::{vector_csr_spmm, vector_csr_spmv, GpuCsrMatrix, MAX_SPMM_BATCH};
use crate::{profile_half_double, profile_single};
use rt_f16::F16;
use rt_gpusim::{
    DeviceBuffer, DeviceOutBuffer, DeviceSpec, Gpu, GroupReport, GroupStats, KernelStats,
    LaunchReport, TimeEstimate, TILE_WIDTHS,
};
use rt_sparse::{Csr, RowPlan};
use std::sync::Arc;

/// Which calibrated report profile the timing model uses (the arithmetic
/// is always the Half/double kernel's; see [`crate::profile_single`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrecisionProfile {
    /// Matrix in binary16, vectors in binary64 — the paper's production
    /// configuration.
    #[default]
    HalfDouble,
    /// The Single report profile used by the library-comparison
    /// experiments.
    Single,
}

/// Result of one dose calculation.
#[derive(Clone, Debug)]
pub struct DoseResult {
    /// Dose per voxel (Gray per unit weight), `nrows` long.
    pub dose: Vec<f64>,
    /// Unified launch report: traffic counters, modeled time, and (when
    /// named buffers are used) per-buffer traffic.
    pub report: LaunchReport,
    /// Per-bucket breakdown of the fused dispatch, at simulation scale
    /// (partitioned calculators only; `None` for whole-matrix dispatch).
    pub group: Option<GroupReport>,
}

impl DoseResult {
    /// Traffic counters of the launch (convenience accessor).
    #[inline]
    pub fn stats(&self) -> &KernelStats {
        &self.report.stats
    }

    /// Modeled execution time (convenience accessor).
    #[inline]
    pub fn estimate(&self) -> &TimeEstimate {
        &self.report.estimate
    }
}

/// Result of one batched (multi-vector) calculation: one output per
/// request, one merged launch report for the whole batch.
#[derive(Clone, Debug)]
pub struct BatchDoseResult {
    /// One output vector per input vector, in submission order.
    pub outputs: Vec<Vec<f64>>,
    /// Merged report over the batch's launches (chunked by
    /// [`MAX_SPMM_BATCH`]).
    pub report: LaunchReport,
    /// Per-bucket breakdown accumulated over the batch's fused dispatches,
    /// at simulation scale (partitioned calculators only).
    pub group: Option<GroupReport>,
}

/// Validated configuration for a [`DoseCalculator`]. Obtained from
/// [`DoseCalculator::builder`]; all setters are chainable and
/// [`DoseCalculatorBuilder::build`] performs the upload.
#[derive(Clone, Debug)]
pub struct DoseCalculatorBuilder<'m> {
    matrix: &'m Csr<f64, u32>,
    device: DeviceSpec,
    threads_per_block: u32,
    scale: f64,
    row_scale: Option<f64>,
    transpose: bool,
    profile: PrecisionProfile,
    tile_width: u32,
    grad_tile_width: Option<u32>,
    partition: Option<(Option<Arc<RowPlan>>, BucketWidths)>,
    grad_partition: Option<(Option<Arc<RowPlan>>, BucketWidths)>,
}

impl<'m> DoseCalculatorBuilder<'m> {
    fn new(matrix: &'m Csr<f64, u32>) -> Self {
        DoseCalculatorBuilder {
            matrix,
            device: DeviceSpec::a100(),
            threads_per_block: 512,
            scale: 1.0,
            row_scale: None,
            transpose: false,
            profile: PrecisionProfile::HalfDouble,
            tile_width: 32,
            grad_tile_width: None,
            partition: None,
            grad_partition: None,
        }
    }

    /// Target device (defaults to the A100, the paper's primary system).
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Execution configuration (Figure 4 parameter; default 512).
    pub fn threads_per_block(mut self, tpb: u32) -> Self {
        self.threads_per_block = tpb;
        self
    }

    /// Counter extrapolation factor (see `rt_dose::DoseCase::extrapolation`).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Separate extrapolation factor for warp/block counts (the kernel is
    /// warp-per-row, so this is the clinical-to-simulated *row* ratio
    /// when traffic scales by the nnz ratio).
    pub fn row_scale(mut self, row_scale: f64) -> Self {
        self.row_scale = Some(row_scale);
        self
    }

    /// Also upload the transpose so gradient back-projections are
    /// available (costs a second copy of the matrix, as on real GPUs).
    pub fn with_transpose(mut self) -> Self {
        self.transpose = true;
        self
    }

    /// Report profile for the timing model (default Half/double).
    pub fn profile(mut self, profile: PrecisionProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Cooperative-group tile width for the SpMV kernels (default 32,
    /// the paper's warp-per-row kernel). Narrower widths dispatch to the
    /// [sub-warp tiled family](crate::tiled); use
    /// [`KernelSelect`](crate::KernelSelect) to pick one automatically.
    pub fn tile_width(mut self, tile_width: u32) -> Self {
        self.tile_width = tile_width;
        self
    }

    /// Cooperative-group tile width for the gradient (transpose) SpMV
    /// kernels. The transpose has its own row-length distribution, so
    /// its width is selected independently; unset, gradients inherit
    /// [`DoseCalculatorBuilder::tile_width`] (the pre-partition
    /// behavior).
    pub fn grad_tile_width(mut self, tile_width: u32) -> Self {
        self.grad_tile_width = Some(tile_width);
        self
    }

    /// Dispatch dose SpMV through the bucketed row partition
    /// ([`crate::bucketed`]): empty rows are eliminated and each length
    /// bucket launches at its `widths` entry. The [`RowPlan`] is built
    /// from the matrix at [`DoseCalculatorBuilder::build`]; use
    /// [`DoseCalculatorBuilder::partitioned_with_plan`] to reuse a cached
    /// plan. The gradient direction is partitioned independently — see
    /// [`DoseCalculatorBuilder::grad_partitioned`] — because the
    /// transpose has its own shape; without it, back-projections run the
    /// whole-matrix kernel at
    /// [`DoseCalculatorBuilder::grad_tile_width`].
    pub fn partitioned(mut self, widths: BucketWidths) -> Self {
        self.partition = Some((None, widths));
        self
    }

    /// Like [`DoseCalculatorBuilder::partitioned`], reusing a plan built
    /// once elsewhere (the serving engine caches one per registered
    /// matrix). The plan must describe this matrix.
    pub fn partitioned_with_plan(mut self, plan: Arc<RowPlan>, widths: BucketWidths) -> Self {
        self.partition = Some((Some(plan), widths));
        self
    }

    /// Dispatch gradient back-projections through the bucketed row
    /// partition of the *transpose*: empty beamlet-rows are eliminated
    /// and each length bucket launches at its `widths` entry. The
    /// transpose [`RowPlan`] is built at
    /// [`DoseCalculatorBuilder::build`]; requires
    /// [`DoseCalculatorBuilder::with_transpose`].
    pub fn grad_partitioned(mut self, widths: BucketWidths) -> Self {
        self.grad_partition = Some((None, widths));
        self
    }

    /// Like [`DoseCalculatorBuilder::grad_partitioned`], reusing a
    /// transpose row plan built once elsewhere (the serving engine caches
    /// one per registered matrix). The plan must describe this matrix's
    /// transpose.
    pub fn grad_partitioned_with_plan(mut self, plan: Arc<RowPlan>, widths: BucketWidths) -> Self {
        self.grad_partition = Some((Some(plan), widths));
        self
    }

    /// Validates the configuration, converts the matrix to binary16 and
    /// uploads it (plus the transpose if requested) to a fresh simulated
    /// device.
    pub fn build(self) -> Result<DoseCalculator, RtError> {
        let m = self.matrix;
        if m.nrows() == 0 || m.ncols() == 0 {
            return Err(RtError::EmptyMatrix {
                nrows: m.nrows(),
                ncols: m.ncols(),
            });
        }
        let tpb = self.threads_per_block;
        if !(32..=1024).contains(&tpb) || !tpb.is_multiple_of(32) {
            return Err(RtError::InvalidThreadsPerBlock(tpb));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(RtError::InvalidScale(self.scale));
        }
        if let Some(rs) = self.row_scale {
            if !(rs.is_finite() && rs > 0.0) {
                return Err(RtError::InvalidScale(rs));
            }
        }
        if !TILE_WIDTHS.contains(&self.tile_width) {
            return Err(RtError::InvalidTileWidth(self.tile_width));
        }
        if let Some(gw) = self.grad_tile_width {
            if !TILE_WIDTHS.contains(&gw) {
                return Err(RtError::InvalidTileWidth(gw));
            }
        }
        for part in [&self.partition, &self.grad_partition]
            .into_iter()
            .flatten()
        {
            let (_, widths) = part;
            if let Some(&bad) = widths.0.iter().find(|w| !TILE_WIDTHS.contains(w)) {
                return Err(RtError::InvalidTileWidth(bad));
            }
        }
        if self.grad_partition.is_some() && !self.transpose {
            // A gradient partition without the transpose resident can
            // never dispatch.
            return Err(RtError::TransposeUnavailable);
        }

        let gpu = Gpu::new(self.device);
        let m16: Csr<F16, u32> = m.convert_values();
        let gm = GpuCsrMatrix::upload(&gpu, &m16);
        let transposed = if self.transpose || self.grad_partition.is_some() {
            Some(m.transpose())
        } else {
            None
        };
        let transpose = transposed.as_ref().map(|t| {
            let t16: Csr<F16, u32> = t.convert_values();
            GpuCsrMatrix::upload(&gpu, &t16)
        });
        let partition = self.partition.map(|(plan, widths)| {
            // Value conversion preserves the sparsity structure, so a plan
            // built from the f64 matrix serves the f16 upload.
            let plan = plan.unwrap_or_else(|| Arc::new(RowPlan::from_csr(m)));
            (GpuRowPlan::upload(&gpu, plan), widths)
        });
        let grad_partition = self.grad_partition.map(|(plan, widths)| {
            let plan = plan.unwrap_or_else(|| {
                Arc::new(RowPlan::from_csr(
                    transposed.as_ref().expect("transpose built above"),
                ))
            });
            (GpuRowPlan::upload(&gpu, plan), widths)
        });
        let y = gpu.alloc_out::<f64>(m.nrows());
        Ok(DoseCalculator {
            gpu,
            matrix: gm,
            transpose,
            partition,
            grad_partition,
            y,
            profile: match self.profile {
                PrecisionProfile::HalfDouble => profile_half_double(),
                PrecisionProfile::Single => profile_single(),
            },
            threads_per_block: tpb,
            scale: self.scale,
            row_scale: self.row_scale,
            tile_width: self.tile_width,
            grad_tile_width: self.grad_tile_width.unwrap_or(self.tile_width),
        })
    }
}

/// A dose calculator holding one beam's dose deposition matrix on the
/// (simulated) GPU in the paper's production configuration: matrix in
/// binary16, vectors in binary64, warp-per-row kernel, 512 threads per
/// block. Optionally also holds the transpose for gradient computations.
///
/// Guarantee: [`DoseCalculator::compute_dose`] is bitwise reproducible —
/// same weights, same matrix, same result, regardless of host thread
/// scheduling, batching, or device assignment (§II-D requirement).
pub struct DoseCalculator {
    gpu: Gpu,
    matrix: GpuCsrMatrix<F16, u32>,
    transpose: Option<GpuCsrMatrix<F16, u32>>,
    /// Bucketed row-partition dispatch state: the uploaded plan plus
    /// per-bucket widths. When present, dose SpMV runs through
    /// [`vector_csr_spmv_bucketed`].
    partition: Option<(GpuRowPlan, BucketWidths)>,
    /// Gradient-direction counterpart of `partition`: a row plan of the
    /// *transpose* plus its own per-bucket widths. When present,
    /// back-projections run through
    /// [`gradient_csr_spmv_bucketed`](crate::bucketed::gradient_csr_spmv_bucketed);
    /// otherwise they keep the whole-matrix kernel at `grad_tile_width`.
    grad_partition: Option<(GpuRowPlan, BucketWidths)>,
    y: DeviceOutBuffer<f64>,
    profile: rt_gpusim::KernelProfile,
    threads_per_block: u32,
    /// Extrapolation factor applied to traffic/flop counters before
    /// timing (1.0 = report at simulation scale).
    scale: f64,
    /// Extrapolation factor for warp/block counts (rows scale, since the
    /// kernel is warp-per-row). Defaults to `scale`.
    row_scale: Option<f64>,
    /// Cooperative-group tile width: 32 dispatches to the classic
    /// warp-per-row kernels, narrower widths to the tiled family.
    tile_width: u32,
    /// Tile width for the gradient (transpose) direction, selected
    /// independently because the transpose has its own row-length
    /// distribution. Defaults to `tile_width`.
    grad_tile_width: u32,
}

impl std::fmt::Debug for DoseCalculator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoseCalculator")
            .field("device", &self.gpu.spec().name)
            .field("nrows", &self.nrows())
            .field("ncols", &self.ncols())
            .field("transpose", &self.transpose.is_some())
            .field("threads_per_block", &self.threads_per_block)
            .finish()
    }
}

impl DoseCalculator {
    /// Starts a builder for `matrix` (`voxels x spots`, full precision).
    pub fn builder(matrix: &Csr<f64, u32>) -> DoseCalculatorBuilder<'_> {
        DoseCalculatorBuilder::new(matrix)
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    #[inline]
    pub fn device(&self) -> &DeviceSpec {
        self.gpu.spec()
    }

    /// Device-resident bytes this calculator pins: the uploaded matrix
    /// plus (when gradients are enabled) its transpose. The serving
    /// engine sums this per device so sharded residency's ~K× memory
    /// saving is visible in `EngineReport`.
    pub fn resident_bytes(&self) -> u64 {
        let mut bytes = self.matrix.size_bytes() as u64;
        if let Some(t) = &self.transpose {
            bytes += t.size_bytes() as u64;
        }
        bytes
    }

    /// Whether gradients are available (built `with_transpose`).
    #[inline]
    pub fn has_transpose(&self) -> bool {
        self.transpose.is_some()
    }

    /// The cooperative-group tile width the whole-matrix dose SpMV
    /// kernels run at.
    #[inline]
    pub fn tile_width(&self) -> u32 {
        self.tile_width
    }

    /// The tile width the gradient (transpose) kernels run at — selected
    /// independently of the dose direction; equals
    /// [`DoseCalculator::tile_width`] unless overridden at build.
    #[inline]
    pub fn grad_tile_width(&self) -> u32 {
        self.grad_tile_width
    }

    /// Whether dose SpMV dispatches through the bucketed row partition.
    #[inline]
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether gradient back-projections dispatch through the bucketed
    /// partition of the transpose.
    #[inline]
    pub fn is_grad_partitioned(&self) -> bool {
        self.grad_partition.is_some()
    }

    /// The per-bucket widths of a partitioned calculator.
    #[inline]
    pub fn bucket_widths(&self) -> Option<BucketWidths> {
        self.partition.as_ref().map(|(_, w)| *w)
    }

    /// The per-bucket widths of the gradient (transpose) partition.
    #[inline]
    pub fn grad_bucket_widths(&self) -> Option<BucketWidths> {
        self.grad_partition.as_ref().map(|(_, w)| *w)
    }

    /// Dispatches one SpMV launch at `width` (32 keeps the classic
    /// warp-per-row kernel and its exact golden counters).
    fn spmv(
        &self,
        matrix: &GpuCsrMatrix<F16, u32>,
        x: &DeviceBuffer<f64>,
        y: &DeviceOutBuffer<f64>,
        width: u32,
    ) -> KernelStats {
        if width == 32 {
            vector_csr_spmv(&self.gpu, matrix, x, y, self.threads_per_block)
        } else {
            vector_csr_spmv_tiled(&self.gpu, matrix, x, y, self.threads_per_block, width)
        }
    }

    /// Scales counters and builds the launch report for one (possibly
    /// accumulated) launch's stats; `width` is the direction's tile
    /// width (dose or gradient).
    fn report_for(&self, stats: &KernelStats, width: u32) -> LaunchReport {
        let mut scaled = stats.scale(self.scale);
        let row_factor = self.row_scale.unwrap_or(self.scale);
        scaled.warps = (stats.warps as f64 * row_factor).round() as u64;
        scaled.blocks = ((stats.blocks as f64 * row_factor).round() as u64).max(1);
        let estimate = rt_gpusim::timing::estimate(self.gpu.spec(), &self.profile, &scaled);
        LaunchReport::new(
            self.profile.name.clone(),
            self.gpu.spec().name,
            stats.clone(),
            estimate,
        )
        .with_tile_width(width)
    }

    /// Computes `dose = A w` with the Half/double kernel. Partitioned
    /// calculators dispatch through the bucketed row partition (bitwise
    /// identical per row to the fixed-width kernel at the row's bucket
    /// width) and attach the per-bucket [`GroupReport`].
    pub fn compute_dose(&self, weights: &[f64]) -> Result<DoseResult, RtError> {
        if weights.len() != self.ncols() {
            return Err(RtError::DimensionMismatch {
                what: "weights",
                expected: self.ncols(),
                actual: weights.len(),
            });
        }
        let dx: DeviceBuffer<f64> = self.gpu.upload(weights);
        let (stats, group) = match &self.partition {
            Some((gplan, widths)) => {
                let g = vector_csr_spmv_bucketed(
                    &self.gpu,
                    &self.matrix,
                    &dx,
                    &self.y,
                    self.threads_per_block,
                    gplan,
                    *widths,
                );
                let report =
                    bucketed_group_report(self.gpu.spec(), &self.profile, gplan.plan(), &g);
                (g.merged, Some(report))
            }
            None => (self.spmv(&self.matrix, &dx, &self.y, self.tile_width), None),
        };
        Ok(DoseResult {
            dose: self.y.to_vec(),
            report: self.report_for(&stats, self.tile_width),
            group,
        })
    }

    /// Computes `dose_v = A w_v` for every weight vector in one batched
    /// (multi-vector) launch sequence — the serving engine's path for
    /// compatible concurrent requests. Chunks of up to [`MAX_SPMM_BATCH`]
    /// vectors share each launch's matrix traffic; the merged counters
    /// are reported as one [`LaunchReport`].
    ///
    /// Every output is bitwise identical to the corresponding
    /// [`DoseCalculator::compute_dose`] call (see
    /// [`vector_csr_spmm`]'s determinism contract).
    pub fn compute_dose_batch(&self, weights: &[&[f64]]) -> Result<BatchDoseResult, RtError> {
        for w in weights {
            if w.len() != self.ncols() {
                return Err(RtError::DimensionMismatch {
                    what: "weights",
                    expected: self.ncols(),
                    actual: w.len(),
                });
            }
        }
        self.batched_spmm(
            &self.matrix,
            self.nrows(),
            weights,
            self.partition.as_ref(),
            self.tile_width,
        )
    }

    /// Computes `g = A^T r` (the optimizer's gradient back-projection).
    /// Requires construction via
    /// [`DoseCalculatorBuilder::with_transpose`]. Grad-partitioned
    /// calculators dispatch through the bucketed partition of the
    /// transpose (bitwise identical per beamlet-row to the fixed-width
    /// kernel at the row's bucket width).
    pub fn compute_gradient_term(&self, residual: &[f64]) -> Result<Vec<f64>, RtError> {
        let t = self
            .transpose
            .as_ref()
            .ok_or(RtError::TransposeUnavailable)?;
        if residual.len() != self.nrows() {
            return Err(RtError::DimensionMismatch {
                what: "residual",
                expected: self.nrows(),
                actual: residual.len(),
            });
        }
        let dr: DeviceBuffer<f64> = self.gpu.upload(residual);
        let g = self.gpu.alloc_out::<f64>(self.ncols());
        match &self.grad_partition {
            Some((gplan, widths)) => {
                gradient_csr_spmv_bucketed(
                    &self.gpu,
                    t,
                    &dr,
                    &g,
                    self.threads_per_block,
                    gplan,
                    *widths,
                );
            }
            None => {
                self.spmv(t, &dr, &g, self.grad_tile_width);
            }
        }
        Ok(g.to_vec())
    }

    /// Computes `g_v = A^T r_v` for every residual in one batched launch
    /// sequence, with a merged [`LaunchReport`] (the gradient counterpart
    /// of [`DoseCalculator::compute_dose_batch`]).
    pub fn compute_gradient_batch(&self, residuals: &[&[f64]]) -> Result<BatchDoseResult, RtError> {
        let t = self
            .transpose
            .as_ref()
            .ok_or(RtError::TransposeUnavailable)?;
        for r in residuals {
            if r.len() != self.nrows() {
                return Err(RtError::DimensionMismatch {
                    what: "residual",
                    expected: self.nrows(),
                    actual: r.len(),
                });
            }
        }
        self.batched_spmm(
            t,
            self.ncols(),
            residuals,
            self.grad_partition.as_ref(),
            self.grad_tile_width,
        )
    }

    /// Shared batched-launch path: runs `inputs` through `matrix` in
    /// [`MAX_SPMM_BATCH`]-sized chunks and merges the counters.
    /// `partition` selects the bucketed dispatch for the direction being
    /// run (the dose partition of `A` or the gradient partition of
    /// `A^T`); `width` is that direction's whole-matrix tile width and is
    /// carried on the merged [`LaunchReport`].
    fn batched_spmm(
        &self,
        matrix: &GpuCsrMatrix<F16, u32>,
        out_len: usize,
        inputs: &[&[f64]],
        partition: Option<&(GpuRowPlan, BucketWidths)>,
        width: u32,
    ) -> Result<BatchDoseResult, RtError> {
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut merged = KernelStats::default();
        let mut group_acc: Option<GroupStats> = None;
        for chunk in inputs.chunks(MAX_SPMM_BATCH) {
            let dxs: Vec<DeviceBuffer<f64>> = chunk.iter().map(|x| self.gpu.upload(x)).collect();
            let dys: Vec<DeviceOutBuffer<f64>> = chunk
                .iter()
                .map(|_| self.gpu.alloc_out::<f64>(out_len))
                .collect();
            let xr: Vec<&DeviceBuffer<f64>> = dxs.iter().collect();
            let yr: Vec<&DeviceOutBuffer<f64>> = dys.iter().collect();
            let stats = match partition {
                Some((gplan, widths)) => {
                    let g = vector_csr_spmm_bucketed(
                        &self.gpu,
                        matrix,
                        &xr,
                        &yr,
                        self.threads_per_block,
                        gplan,
                        *widths,
                    );
                    let stats = g.merged.clone();
                    match &mut group_acc {
                        Some(acc) => acc.accumulate(&g),
                        None => group_acc = Some(g),
                    }
                    stats
                }
                None if width == 32 => {
                    vector_csr_spmm(&self.gpu, matrix, &xr, &yr, self.threads_per_block)
                }
                None => vector_csr_spmm_tiled(
                    &self.gpu,
                    matrix,
                    &xr,
                    &yr,
                    self.threads_per_block,
                    width,
                ),
            };
            merged.accumulate(&stats);
            outputs.extend(dys.iter().map(|y| y.to_vec()));
        }
        let group = group_acc.map(|g| {
            let (gplan, _) = partition.expect("partitioned dispatch ran");
            bucketed_group_report(self.gpu.spec(), &self.profile, gplan.plan(), &g)
        });
        Ok(BatchDoseResult {
            outputs,
            report: self.report_for(&merged, width),
            group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64, nrows: usize, ncols: usize) -> Csr<f64, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..20);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..0.1)))
                    .collect()
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    #[test]
    fn end_to_end_dose_calculation() {
        let m = random_matrix(51, 600, 40);
        let calc = DoseCalculator::builder(&m).build().unwrap();
        let w = vec![1.0; 40];
        let r = calc.compute_dose(&w).unwrap();
        assert_eq!(r.dose.len(), 600);
        assert!(r.estimate().seconds > 0.0);
        assert!(r.stats().flops > 0);
        assert_eq!(r.report.device, "A100");
        assert_eq!(r.report.kernel, "Half/double");

        // Against the f16-rounded reference.
        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let mut want = vec![0.0; 600];
        m16.spmv_ref(&w, &mut want).unwrap();
        for (g, wv) in r.dose.iter().zip(want.iter()) {
            assert!((g - wv).abs() <= 1e-9 * (1.0 + wv.abs()));
        }
    }

    #[test]
    fn repeated_calls_are_bitwise_identical() {
        let m = random_matrix(52, 400, 30);
        let calc = DoseCalculator::builder(&m).build().unwrap();
        let w: Vec<f64> = (0..30).map(|i| (i as f64 * 0.11).sin().abs()).collect();
        let a = calc.compute_dose(&w).unwrap().dose;
        let b = calc.compute_dose(&w).unwrap().dose;
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_matches_single_bitwise_and_merges_counters() {
        let m = random_matrix(56, 350, 28);
        let calc = DoseCalculator::builder(&m).build().unwrap();
        let vectors: Vec<Vec<f64>> = (0..11)
            .map(|v| (0..28).map(|i| ((v + i) as f64 * 0.07).cos()).collect())
            .collect();
        let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
        let batch = calc.compute_dose_batch(&refs).unwrap();
        assert_eq!(batch.outputs.len(), 11);
        // 11 vectors chunk into 8 + 3; merged flops = 2 * nnz * 11.
        assert_eq!(batch.report.stats.flops, 2 * m.nnz() as u64 * 11);
        for (v, x) in vectors.iter().enumerate() {
            let single = calc.compute_dose(x).unwrap().dose;
            assert_eq!(
                batch.outputs[v]
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>(),
                single.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "vector {v}"
            );
        }
    }

    #[test]
    fn gradient_term_matches_transpose_reference() {
        let m = random_matrix(53, 300, 25);
        let calc = DoseCalculator::builder(&m)
            .with_transpose()
            .build()
            .unwrap();
        let r: Vec<f64> = (0..300).map(|i| (i % 3) as f64).collect();
        let g = calc.compute_gradient_term(&r).unwrap();

        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let mut want = vec![0.0; 25];
        m16.spmv_transpose_ref(&r, &mut want).unwrap();
        for (a, b) in g.iter().zip(want.iter()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }

        // The batched gradient path agrees bitwise with the single path's
        // arithmetic contract.
        let batch = calc.compute_gradient_batch(&[&r]).unwrap();
        assert_eq!(
            batch.outputs[0]
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            g.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gradient_requires_transpose() {
        let m = random_matrix(54, 50, 5);
        let calc = DoseCalculator::builder(&m).build().unwrap();
        assert_eq!(
            calc.compute_gradient_term(&vec![0.0; 50]).unwrap_err(),
            RtError::TransposeUnavailable
        );
        assert_eq!(
            calc.compute_gradient_batch(&[&vec![0.0; 50]]).unwrap_err(),
            RtError::TransposeUnavailable
        );
    }

    #[test]
    fn dimension_mismatches_are_typed_errors() {
        let m = random_matrix(57, 60, 9);
        let calc = DoseCalculator::builder(&m)
            .with_transpose()
            .build()
            .unwrap();
        assert_eq!(
            calc.compute_dose(&[0.0; 8]).unwrap_err(),
            RtError::DimensionMismatch {
                what: "weights",
                expected: 9,
                actual: 8
            }
        );
        assert_eq!(
            calc.compute_gradient_term(&vec![0.0; 61]).unwrap_err(),
            RtError::DimensionMismatch {
                what: "residual",
                expected: 60,
                actual: 61
            }
        );
        let short = vec![0.0; 3];
        assert!(matches!(
            calc.compute_dose_batch(&[&[0.0; 9], &short]).unwrap_err(),
            RtError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn builder_validates_configuration() {
        let m = random_matrix(58, 40, 6);
        assert_eq!(
            DoseCalculator::builder(&m)
                .threads_per_block(48)
                .build()
                .unwrap_err(),
            RtError::InvalidThreadsPerBlock(48)
        );
        assert_eq!(
            DoseCalculator::builder(&m).scale(-2.0).build().unwrap_err(),
            RtError::InvalidScale(-2.0)
        );
        assert_eq!(
            DoseCalculator::builder(&m)
                .row_scale(f64::NAN)
                .build()
                .err()
                .map(|e| e.kind()),
            Some("invalid_scale")
        );
        let empty: Csr<f64, u32> = Csr::from_rows(0, &[]).unwrap();
        assert_eq!(
            DoseCalculator::builder(&empty).build().unwrap_err(),
            RtError::EmptyMatrix { nrows: 0, ncols: 0 }
        );
    }

    #[test]
    fn tile_width_validated_and_reported() {
        let m = random_matrix(60, 80, 12);
        assert_eq!(
            DoseCalculator::builder(&m)
                .tile_width(7)
                .build()
                .unwrap_err(),
            RtError::InvalidTileWidth(7)
        );
        let calc = DoseCalculator::builder(&m).tile_width(4).build().unwrap();
        assert_eq!(calc.tile_width(), 4);
        let r = calc.compute_dose(&[1.0; 12]).unwrap();
        assert_eq!(r.report.tile_width, 4);
        assert_eq!(r.report.kernel, "Half/double");
    }

    #[test]
    fn tiled_calculator_doses_match_reference_and_batch_is_bitwise() {
        let m = random_matrix(61, 300, 24);
        let w: Vec<f64> = (0..24).map(|i| (i as f64 * 0.19).sin().abs()).collect();
        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let mut want = vec![0.0; 300];
        m16.spmv_ref(&w, &mut want).unwrap();
        for &tw in &[2u32, 8, 16] {
            let calc = DoseCalculator::builder(&m).tile_width(tw).build().unwrap();
            let single = calc.compute_dose(&w).unwrap().dose;
            for (g, want) in single.iter().zip(want.iter()) {
                assert!((g - want).abs() <= 1e-9 * (1.0 + want.abs()), "width {tw}");
            }
            // The tiled SpMM batch path preserves the bitwise contract.
            let batch = calc.compute_dose_batch(&[&w, &w]).unwrap();
            for out in &batch.outputs {
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "width {tw}"
                );
            }
        }
    }

    #[test]
    fn scale_affects_estimate_not_dose() {
        let m = random_matrix(55, 500, 40);
        let w = vec![1.0; 40];
        let small = DoseCalculator::builder(&m)
            .build()
            .unwrap()
            .compute_dose(&w)
            .unwrap();
        let big = DoseCalculator::builder(&m)
            .scale(100.0)
            .build()
            .unwrap()
            .compute_dose(&w)
            .unwrap();
        assert_eq!(small.dose, big.dose);
        assert!(big.estimate().seconds > small.estimate().seconds);
    }

    #[test]
    fn partitioned_calculator_matches_bucketed_reference_and_reports_buckets() {
        let m = random_matrix(59, 700, 30);
        let widths = BucketWidths::natural();
        let calc = DoseCalculator::builder(&m)
            .partitioned(widths)
            .with_transpose()
            .build()
            .unwrap();
        assert!(calc.is_partitioned());
        assert_eq!(calc.bucket_widths(), Some(widths));
        let w: Vec<f64> = (0..30).map(|i| (i as f64 * 0.23).sin().abs()).collect();
        let r = calc.compute_dose(&w).unwrap();

        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let want = crate::bucketed::vector_csr_bucketed_reference(&m16, &w, widths);
        assert_eq!(
            r.dose.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let group = r.group.as_ref().expect("partitioned result carries group");
        assert_eq!(group.buckets[0].label, "zero_fill");
        assert!(group.buckets.len() > 1);

        // The batch path is bitwise identical and also carries the group.
        let batch = calc.compute_dose_batch(&[&w, &w]).unwrap();
        for out in &batch.outputs {
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                r.dose.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        assert!(batch.group.is_some());

        // Without a gradient partition, gradients keep the whole-matrix
        // path: no group report.
        assert!(!calc.is_grad_partitioned());
        let residual: Vec<f64> = (0..700).map(|i| (i % 5) as f64).collect();
        let grad_batch = calc.compute_gradient_batch(&[&residual]).unwrap();
        assert!(grad_batch.group.is_none());

        // Unpartitioned results carry no group either.
        let plain = DoseCalculator::builder(&m).build().unwrap();
        assert!(!plain.is_partitioned());
        assert!(plain.compute_dose(&w).unwrap().group.is_none());
    }

    #[test]
    fn partitioned_builder_validates_bucket_widths() {
        let m = random_matrix(62, 40, 8);
        let mut widths = BucketWidths::natural();
        widths.0[3] = 6;
        assert_eq!(
            DoseCalculator::builder(&m)
                .partitioned(widths)
                .build()
                .unwrap_err(),
            RtError::InvalidTileWidth(6)
        );
    }

    #[test]
    fn grad_partitioned_gradients_match_bucketed_reference_and_report_buckets() {
        let m = random_matrix(63, 500, 40);
        let widths = BucketWidths::natural();
        let calc = DoseCalculator::builder(&m)
            .with_transpose()
            .grad_partitioned(widths)
            .build()
            .unwrap();
        assert!(calc.is_grad_partitioned());
        assert!(!calc.is_partitioned());
        assert_eq!(calc.grad_bucket_widths(), Some(widths));

        let residual: Vec<f64> = (0..500).map(|i| ((i % 7) as f64 * 0.31).cos()).collect();
        let g = calc.compute_gradient_term(&residual).unwrap();

        // The exact arithmetic contract: bucketed dispatch over the
        // transpose == host bucketed reference on the transpose.
        let t = m.transpose();
        let t16: Csr<rt_f16::F16, u32> = t.convert_values();
        let want = crate::bucketed::vector_csr_bucketed_reference(&t16, &residual, widths);
        assert_eq!(
            g.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // The batched gradient path is bitwise identical and carries the
        // transpose's per-bucket group report.
        let grad_batch = calc
            .compute_gradient_batch(&[&residual, &residual])
            .unwrap();
        for out in &grad_batch.outputs {
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                g.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let group = grad_batch.group.as_ref().expect("grad partition group");
        assert_eq!(group.buckets[0].label, "zero_fill");

        // The dose direction is untouched by the gradient partition.
        let w: Vec<f64> = (0..40).map(|i| (i as f64 * 0.13).sin().abs()).collect();
        assert!(calc.compute_dose(&w).unwrap().group.is_none());
    }

    #[test]
    fn grad_tile_width_is_independent_and_carried_on_gradient_reports() {
        let m = random_matrix(64, 300, 24);
        let calc = DoseCalculator::builder(&m)
            .with_transpose()
            .tile_width(16)
            .grad_tile_width(4)
            .build()
            .unwrap();
        assert_eq!(calc.tile_width(), 16);
        assert_eq!(calc.grad_tile_width(), 4);

        let w = vec![1.0; 24];
        assert_eq!(calc.compute_dose(&w).unwrap().report.tile_width, 16);
        let residual = vec![1.0; 300];
        // The merged gradient-batch report carries the gradient
        // direction's width, not the dose width.
        let grad_batch = calc.compute_gradient_batch(&[&residual]).unwrap();
        assert_eq!(grad_batch.report.tile_width, 4);

        // Defaulting: grad width follows the dose width when unset.
        let follows = DoseCalculator::builder(&m)
            .with_transpose()
            .tile_width(8)
            .build()
            .unwrap();
        assert_eq!(follows.grad_tile_width(), 8);
    }

    #[test]
    fn grad_partition_validates_widths_and_requires_transpose() {
        let m = random_matrix(65, 60, 10);
        assert_eq!(
            DoseCalculator::builder(&m)
                .grad_partitioned(BucketWidths::natural())
                .build()
                .unwrap_err(),
            RtError::TransposeUnavailable
        );
        let mut widths = BucketWidths::natural();
        widths.0[1] = 5;
        assert_eq!(
            DoseCalculator::builder(&m)
                .with_transpose()
                .grad_partitioned(widths)
                .build()
                .unwrap_err(),
            RtError::InvalidTileWidth(5)
        );
        assert_eq!(
            DoseCalculator::builder(&m)
                .grad_tile_width(3)
                .build()
                .unwrap_err(),
            RtError::InvalidTileWidth(3)
        );
    }
}
