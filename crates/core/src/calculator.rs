//! High-level dose calculation API — what the treatment-plan optimizer
//! calls every iteration.

use crate::vector_csr::{vector_csr_spmv, GpuCsrMatrix};
use crate::{profile_half_double, profile_single};
use rt_f16::F16;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, DeviceSpec, Gpu, KernelStats, TimeEstimate};
use rt_sparse::Csr;

/// Result of one dose calculation.
#[derive(Clone, Debug)]
pub struct DoseResult {
    /// Dose per voxel (Gray per unit weight), `nrows` long.
    pub dose: Vec<f64>,
    /// Simulator traffic counters of the launch.
    pub stats: KernelStats,
    /// Modeled execution time on the configured device.
    pub estimate: TimeEstimate,
}

/// A dose calculator holding one beam's dose deposition matrix on the
/// (simulated) GPU in the paper's production configuration: matrix in
/// binary16, vectors in binary64, warp-per-row kernel, 512 threads per
/// block. Optionally also holds the transpose for gradient computations.
///
/// Guarantee: [`DoseCalculator::compute_dose`] is bitwise reproducible —
/// same weights, same matrix, same result, regardless of host thread
/// scheduling (§II-D requirement).
pub struct DoseCalculator {
    gpu: Gpu,
    matrix: GpuCsrMatrix<F16, u32>,
    transpose: Option<GpuCsrMatrix<F16, u32>>,
    y: DeviceOutBuffer<f64>,
    profile: rt_gpusim::KernelProfile,
    threads_per_block: u32,
    /// Extrapolation factor applied to traffic/flop counters before
    /// timing (1.0 = report at simulation scale).
    scale: f64,
    /// Extrapolation factor for warp/block counts (rows scale, since the
    /// kernel is warp-per-row). Defaults to `scale`.
    row_scale: Option<f64>,
}

impl DoseCalculator {
    /// Uploads `matrix` (converted once to binary16) to a simulated
    /// `device`. `matrix` is `voxels x spots`, full precision.
    pub fn new(device: DeviceSpec, matrix: &Csr<f64, u32>) -> Self {
        let gpu = Gpu::new(device);
        let m16: Csr<F16, u32> = matrix.convert_values();
        let gm = GpuCsrMatrix::upload(&gpu, &m16);
        let y = gpu.alloc_out::<f64>(matrix.nrows());
        DoseCalculator {
            gpu,
            matrix: gm,
            transpose: None,
            y,
            profile: profile_half_double(),
            threads_per_block: 512,
            scale: 1.0,
            row_scale: None,
        }
    }

    /// Also uploads the transpose so [`DoseCalculator::compute_gradient_term`]
    /// is available (costs a second copy of the matrix, as on real GPUs).
    pub fn with_transpose(device: DeviceSpec, matrix: &Csr<f64, u32>) -> Self {
        let mut c = DoseCalculator::new(device, matrix);
        let t16: Csr<F16, u32> = matrix.transpose().convert_values();
        c.transpose = Some(GpuCsrMatrix::upload(&c.gpu, &t16));
        c
    }

    /// Sets the execution configuration (Figure 4 parameter).
    pub fn with_threads_per_block(mut self, tpb: u32) -> Self {
        self.threads_per_block = tpb;
        self
    }

    /// Sets the counter extrapolation factor (see
    /// `rt_dose::DoseCase::extrapolation`).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets a separate extrapolation factor for warp/block counts (the
    /// kernel is warp-per-row, so this is the clinical-to-simulated
    /// *row* ratio when traffic scales by the nnz ratio).
    pub fn with_row_scale(mut self, row_scale: f64) -> Self {
        self.row_scale = Some(row_scale);
        self
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    #[inline]
    pub fn device(&self) -> &DeviceSpec {
        self.gpu.spec()
    }

    /// Computes `dose = A w` with the Half/double kernel.
    pub fn compute_dose(&self, weights: &[f64]) -> DoseResult {
        assert_eq!(weights.len(), self.ncols(), "one weight per spot");
        let dx: DeviceBuffer<f64> = self.gpu.upload(weights);
        let stats = vector_csr_spmv(
            &self.gpu,
            &self.matrix,
            &dx,
            &self.y,
            self.threads_per_block,
        );
        let mut scaled = stats.scale(self.scale);
        let row_factor = self.row_scale.unwrap_or(self.scale);
        scaled.warps = (stats.warps as f64 * row_factor).round() as u64;
        scaled.blocks = ((stats.blocks as f64 * row_factor).round() as u64).max(1);
        let estimate = rt_gpusim::timing::estimate(self.gpu.spec(), &self.profile, &scaled);
        DoseResult {
            dose: self.y.to_vec(),
            stats,
            estimate,
        }
    }

    /// Computes `g = A^T r` (the optimizer's gradient back-projection).
    /// Requires construction via [`DoseCalculator::with_transpose`].
    pub fn compute_gradient_term(&self, residual: &[f64]) -> Vec<f64> {
        let t = self
            .transpose
            .as_ref()
            .expect("build with with_transpose() to enable gradient computation");
        assert_eq!(residual.len(), self.nrows(), "one residual per voxel");
        let dr: DeviceBuffer<f64> = self.gpu.upload(residual);
        let g = self.gpu.alloc_out::<f64>(self.ncols());
        vector_csr_spmv(&self.gpu, t, &dr, &g, self.threads_per_block);
        g.to_vec()
    }

    /// Switches the report profile to the Single configuration (used by
    /// the library-comparison experiments; the arithmetic stays
    /// Half/double — use the free kernels for real single-precision
    /// runs).
    pub fn profile_as_single(mut self) -> Self {
        self.profile = profile_single();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64, nrows: usize, ncols: usize) -> Csr<f64, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..20);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..0.1)))
                    .collect()
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    #[test]
    fn end_to_end_dose_calculation() {
        let m = random_matrix(51, 600, 40);
        let calc = DoseCalculator::new(DeviceSpec::a100(), &m);
        let w = vec![1.0; 40];
        let r = calc.compute_dose(&w);
        assert_eq!(r.dose.len(), 600);
        assert!(r.estimate.seconds > 0.0);
        assert!(r.stats.flops > 0);

        // Against the f16-rounded reference.
        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let mut want = vec![0.0; 600];
        m16.spmv_ref(&w, &mut want).unwrap();
        for (g, wv) in r.dose.iter().zip(want.iter()) {
            assert!((g - wv).abs() <= 1e-9 * (1.0 + wv.abs()));
        }
    }

    #[test]
    fn repeated_calls_are_bitwise_identical() {
        let m = random_matrix(52, 400, 30);
        let calc = DoseCalculator::new(DeviceSpec::a100(), &m);
        let w: Vec<f64> = (0..30).map(|i| (i as f64 * 0.11).sin().abs()).collect();
        let a = calc.compute_dose(&w).dose;
        let b = calc.compute_dose(&w).dose;
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gradient_term_matches_transpose_reference() {
        let m = random_matrix(53, 300, 25);
        let calc = DoseCalculator::with_transpose(DeviceSpec::a100(), &m);
        let r: Vec<f64> = (0..300).map(|i| (i % 3) as f64).collect();
        let g = calc.compute_gradient_term(&r);

        let m16: Csr<rt_f16::F16, u32> = m.convert_values();
        let mut want = vec![0.0; 25];
        m16.spmv_transpose_ref(&r, &mut want).unwrap();
        for (a, b) in g.iter().zip(want.iter()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "with_transpose")]
    fn gradient_requires_transpose() {
        let m = random_matrix(54, 50, 5);
        let calc = DoseCalculator::new(DeviceSpec::a100(), &m);
        let _ = calc.compute_gradient_term(&vec![0.0; 50]);
    }

    #[test]
    fn scale_affects_estimate_not_dose() {
        let m = random_matrix(55, 500, 40);
        let w = vec![1.0; 40];
        let small = DoseCalculator::new(DeviceSpec::a100(), &m).compute_dose(&w);
        let big = DoseCalculator::new(DeviceSpec::a100(), &m)
            .with_scale(100.0)
            .compute_dose(&w);
        assert_eq!(small.dose, big.dose);
        assert!(big.estimate.seconds > small.estimate.seconds);
    }
}
