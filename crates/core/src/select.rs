//! `KernelSelect`: the per-matrix tile-width autotuner.
//!
//! Picking the tile width for the [sub-warp tiled kernels](crate::tiled)
//! is a classic shape-matching problem: narrow tiles cut the per-warp
//! fixed-overhead term (fewer warps launched) and waste fewer lanes on
//! short rows, but long rows then issue more, smaller L2 sector
//! transactions. Two strategies are offered:
//!
//! * **Heuristic** (the default): derive the width from
//!   [`RowStats`] alone — the smallest width
//!   covering the average non-empty row in one pass, bumped one step
//!   when the row-length distribution has a long tail (95th percentile
//!   ≥ 4× the average) so the tail rows don't serialize.
//! * **MeasuredProbe**: actually launch every candidate width once on a
//!   throwaway `Sequential` simulator instance and keep the fastest
//!   modeled time. Deterministic (Sequential counters are exact), more
//!   expensive, never wrong about the model.
//!
//! Both return a [`KernelChoice`] carrying the full candidate table so
//! serving layers and the `rtdose kernels` CLI can show *why* a width
//! was picked.

use crate::bucketed::{bucket_label, vector_csr_spmv_bucketed, BucketWidths, GpuRowPlan};
use crate::error::RtError;
use crate::profile_half_double;
use crate::tiled::vector_csr_spmv_tiled;
use crate::vector_csr::{vector_csr_spmv, GpuCsrMatrix};
use rt_f16::DoseScalar;
use rt_gpusim::{timing, DeviceSpec, ExecMode, Gpu, TILE_WIDTHS};
use rt_sparse::stats::RowStats;
use rt_sparse::{ColIndex, Csr, RowPlan, NUM_ROW_BUCKETS};
use std::sync::Arc;

/// How a calculator / serving plan picks its SpMV tile width.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelSelect {
    /// Always use this width (32 = the paper's warp-per-row kernel).
    Fixed(u32),
    /// Pick from row statistics (no probe launches). The default.
    #[default]
    Heuristic,
    /// Launch every candidate width once on a throwaway `Sequential`
    /// simulator and keep the fastest modeled estimate.
    MeasuredProbe,
    /// Bucketed row-partition dispatch ([`crate::bucketed`]): empty rows
    /// are eliminated and every length bucket gets its own width, picked
    /// by the wrapped per-bucket strategy.
    Partitioned(PartitionStrategy),
}

/// How [`KernelSelect::Partitioned`] assigns each bucket's width.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The natural width per bucket: the narrowest tile covering the
    /// bucket's longest row in one pass ([`BucketWidths::natural`]).
    /// No probe launches. The default.
    #[default]
    Heuristic,
    /// Launch the bucketed dispatch once per candidate width on a
    /// throwaway `Sequential` simulator and keep, per bucket, the width
    /// whose member launch modeled fastest.
    MeasuredProbe,
}

/// One probed (or statically scored) candidate width.
#[derive(Clone, Debug, PartialEq)]
pub struct TileCandidate {
    pub tile_width: u32,
    /// Warps launched at this width (fewer = less fixed overhead).
    pub warps: u64,
    /// Total L2 sector transactions (reads + writes) at this width.
    pub l2_sectors: u64,
    /// Modeled kernel seconds from the timing model.
    pub modeled_seconds: f64,
    /// Fraction of *scheduled* lane slots carrying a stored entry. For
    /// whole-matrix candidates this is
    /// [`RowStats::scheduled_lanes_active_frac`](rt_sparse::stats::RowStats::scheduled_lanes_active_frac)
    /// — empty rows still get a tile, so their padded lanes count against
    /// occupancy; per-bucket candidates use the bucket's own occupancy
    /// (empty rows are eliminated before bucketing, so they never appear
    /// as occupied slots in either figure).
    pub lanes_active_frac: f64,
}

/// One bucket's width decision within a [`KernelSelect::Partitioned`]
/// choice.
#[derive(Clone, Debug, PartialEq)]
pub struct BucketChoice {
    /// Bucket position in [`rt_sparse::ROW_BUCKET_BOUNDS`] order.
    pub bucket: usize,
    /// Inclusive row-length range of the bucket.
    pub min_len: u32,
    pub max_len: u32,
    /// Rows the bucket holds (0 = the bucket launches nothing).
    pub rows: u64,
    /// Stored entries across the bucket's rows.
    pub nnz: u64,
    /// The width the bucket's member launch will run at.
    pub tile_width: u32,
    /// Bucket lane occupancy at `tile_width`
    /// ([`rt_sparse::RowBucket::lanes_active_frac`]).
    pub lanes_active_frac: f64,
    /// Per-width evidence (empty for the heuristic strategy and for
    /// empty buckets).
    pub candidates: Vec<TileCandidate>,
}

/// The autotuner's decision for one matrix: the width plus the evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelChoice {
    /// The selected tile width. For `Partitioned` this is the widest
    /// non-empty bucket's width (the width whole-matrix consumers of the
    /// same direction fall back to; the gradient path gets its own
    /// choice by running the selector on the transpose).
    pub tile_width: u32,
    /// Which strategy produced it: `"fixed"`, `"heuristic"`, `"probe"`,
    /// `"partitioned-heuristic"` or `"partitioned-probe"`.
    pub mode: &'static str,
    /// Average stored entries per non-empty row of the matrix.
    pub avg_nnz_nonempty: f64,
    /// The candidate table (empty for `Fixed`; statistics-only for
    /// `Heuristic`; fully probed for `MeasuredProbe`).
    pub candidates: Vec<TileCandidate>,
    /// Per-bucket decisions ([`KernelSelect::Partitioned`] only; empty
    /// for the whole-matrix strategies).
    pub buckets: Vec<BucketChoice>,
}

impl KernelChoice {
    /// The pinned per-bucket width table this decision implies:
    /// [`BucketWidths::natural`] overlaid with the per-bucket picks.
    /// Meaningful for the `Partitioned` strategies (otherwise it is just
    /// the natural table).
    pub fn bucket_widths(&self) -> BucketWidths {
        let mut widths = BucketWidths::natural();
        for bc in &self.buckets {
            widths.0[bc.bucket] = bc.tile_width;
        }
        widths
    }
}

impl KernelSelect {
    /// Resolves the strategy against a concrete matrix.
    ///
    /// `spec` is the device the probe (if any) is modeled on;
    /// `threads_per_block` matches the launch configuration the chosen
    /// kernel will run with.
    pub fn choose<V: DoseScalar, I: ColIndex>(
        &self,
        spec: &DeviceSpec,
        m: &Csr<V, I>,
        threads_per_block: u32,
    ) -> Result<KernelChoice, RtError> {
        let stats = RowStats::from_csr(m);
        match *self {
            KernelSelect::Fixed(w) => {
                if !TILE_WIDTHS.contains(&w) {
                    return Err(RtError::InvalidTileWidth(w));
                }
                Ok(KernelChoice {
                    tile_width: w,
                    mode: "fixed",
                    avg_nnz_nonempty: stats.avg_nnz_nonempty,
                    candidates: Vec::new(),
                    buckets: Vec::new(),
                })
            }
            KernelSelect::Heuristic => Ok(KernelChoice {
                tile_width: heuristic_width(&stats),
                mode: "heuristic",
                avg_nnz_nonempty: stats.avg_nnz_nonempty,
                candidates: Vec::new(),
                buckets: Vec::new(),
            }),
            KernelSelect::MeasuredProbe => {
                let candidates = probe_widths(spec, m, threads_per_block);
                let best = best_width(&candidates).unwrap_or(32);
                Ok(KernelChoice {
                    tile_width: best,
                    mode: "probe",
                    avg_nnz_nonempty: stats.avg_nnz_nonempty,
                    candidates,
                    buckets: Vec::new(),
                })
            }
            KernelSelect::Partitioned(strategy) => {
                let plan = RowPlan::from_csr(m);
                let buckets = match strategy {
                    PartitionStrategy::Heuristic => heuristic_bucket_choices(&plan),
                    PartitionStrategy::MeasuredProbe => {
                        probe_bucket_choices(spec, m, &plan, threads_per_block)
                    }
                };
                // Whole-matrix consumers of this direction fall back to
                // the widest width any populated bucket uses (each
                // direction runs its own selection: the gradient table
                // comes from choosing on the transpose).
                let tile_width = buckets
                    .iter()
                    .filter(|b| b.rows > 0)
                    .map(|b| b.tile_width)
                    .max()
                    .unwrap_or(32);
                Ok(KernelChoice {
                    tile_width,
                    mode: match strategy {
                        PartitionStrategy::Heuristic => "partitioned-heuristic",
                        PartitionStrategy::MeasuredProbe => "partitioned-probe",
                    },
                    avg_nnz_nonempty: stats.avg_nnz_nonempty,
                    candidates: Vec::new(),
                    buckets,
                })
            }
        }
    }
}

/// Fastest modeled time wins; ties break toward the wider
/// (paper-classic) kernel.
fn best_width(candidates: &[TileCandidate]) -> Option<u32> {
    candidates
        .iter()
        .max_by(
            |a, b| match b.modeled_seconds.partial_cmp(&a.modeled_seconds) {
                Some(core::cmp::Ordering::Equal) | None => a.tile_width.cmp(&b.tile_width),
                Some(ord) => ord,
            },
        )
        .map(|c| c.tile_width)
}

/// The statistics-only partition rule: every bucket takes its natural
/// width ([`BucketWidths::natural`]) — the narrowest tile covering the
/// bucket's longest row in one pass, which maximizes lane occupancy
/// without serializing any row over extra chunks.
fn heuristic_bucket_choices(plan: &RowPlan) -> Vec<BucketChoice> {
    let natural = BucketWidths::natural();
    plan.buckets()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let tile_width = natural.0[i];
            BucketChoice {
                bucket: i,
                min_len: b.min_len,
                max_len: b.max_len,
                rows: b.len() as u64,
                nnz: b.nnz,
                tile_width,
                lanes_active_frac: b.lanes_active_frac(tile_width),
                candidates: Vec::new(),
            }
        })
        .collect()
}

/// Probes every candidate width with one full bucketed dispatch per
/// width on a throwaway `Sequential` simulator, attributes each member
/// launch's counters back to its bucket, and picks per bucket the width
/// whose member modeled fastest (same tie-break as the whole-matrix
/// probe). One launch per width — 5 total — not widths × buckets.
fn probe_bucket_choices<V: DoseScalar, I: ColIndex>(
    spec: &DeviceSpec,
    m: &Csr<V, I>,
    plan: &RowPlan,
    threads_per_block: u32,
) -> Vec<BucketChoice> {
    let profile = profile_half_double();
    let mut tables: Vec<Vec<TileCandidate>> = vec![Vec::new(); NUM_ROW_BUCKETS];
    let shared_plan = Arc::new(plan.clone());
    for &w in &TILE_WIDTHS {
        let gpu = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, m);
        let gplan = GpuRowPlan::upload(&gpu, shared_plan.clone());
        let x: Vec<f64> = vec![1.0; m.ncols()];
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(m.nrows());
        let group = vector_csr_spmv_bucketed(
            &gpu,
            &gm,
            &dx,
            &dy,
            threads_per_block,
            &gplan,
            BucketWidths::uniform(w),
        );
        for member in &group.members {
            let Some((i, bucket)) = plan
                .buckets()
                .iter()
                .enumerate()
                .find(|(_, b)| bucket_label(b.min_len, b.max_len) == member.label)
            else {
                continue; // the zero-fill member belongs to no bucket
            };
            let est = timing::estimate(spec, &profile, &member.stats);
            tables[i].push(TileCandidate {
                tile_width: w,
                warps: member.stats.warps,
                l2_sectors: member.stats.l2_read_hits
                    + member.stats.l2_read_misses
                    + member.stats.l2_write_sectors,
                modeled_seconds: est.seconds,
                lanes_active_frac: bucket.lanes_active_frac(w),
            });
        }
    }
    let natural = BucketWidths::natural();
    plan.buckets()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let candidates = std::mem::take(&mut tables[i]);
            let tile_width = best_width(&candidates).unwrap_or(natural.0[i]);
            BucketChoice {
                bucket: i,
                min_len: b.min_len,
                max_len: b.max_len,
                rows: b.len() as u64,
                nnz: b.nnz,
                tile_width,
                lanes_active_frac: b.lanes_active_frac(tile_width),
                candidates,
            }
        })
        .collect()
}

/// The statistics-only width rule: smallest width covering the average
/// non-empty row in one pass, bumped once for long-tailed distributions.
pub fn heuristic_width(stats: &RowStats) -> u32 {
    let avg = stats.avg_nnz_nonempty;
    let mut w = 2u32;
    while (w as f64) < avg && w < 32 {
        w *= 2;
    }
    if (stats.quantile(0.95) as f64) >= 4.0 * avg && w < 32 {
        w *= 2;
    }
    w
}

/// Launches every candidate width once on a throwaway `Sequential`
/// simulator (exact, deterministic counters) and returns the scored
/// table. Width 32 probes the classic [`vector_csr_spmv`] — the kernel
/// that width actually dispatches to.
pub fn probe_widths<V: DoseScalar, I: ColIndex>(
    spec: &DeviceSpec,
    m: &Csr<V, I>,
    threads_per_block: u32,
) -> Vec<TileCandidate> {
    let row_stats = RowStats::from_csr(m);
    let profile = profile_half_double();
    TILE_WIDTHS
        .iter()
        .map(|&w| {
            let gpu = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
            let gm = GpuCsrMatrix::upload(&gpu, m);
            let x: Vec<f64> = vec![1.0; m.ncols()];
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(m.nrows());
            let stats = if w == 32 {
                vector_csr_spmv(&gpu, &gm, &dx, &dy, threads_per_block)
            } else {
                vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, threads_per_block, w)
            };
            let est = timing::estimate(spec, &profile, &stats);
            TileCandidate {
                tile_width: w,
                warps: stats.warps,
                l2_sectors: stats.l2_read_hits + stats.l2_read_misses + stats.l2_write_sectors,
                modeled_seconds: est.seconds,
                // Whole-matrix launches schedule a tile per row, empty or
                // not — report the occupancy of what actually launches.
                lanes_active_frac: row_stats.scheduled_lanes_active_frac(w),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;

    fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<F16, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    return Vec::new();
                }
                let len = rng.gen_range(1..=max_row);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            })
            .collect();
        let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
        m.convert_values()
    }

    #[test]
    fn fixed_validates_width() {
        let m = random_csr(50, 32, 8, 1);
        let spec = DeviceSpec::a100();
        let ok = KernelSelect::Fixed(8).choose(&spec, &m, 512).unwrap();
        assert_eq!(ok.tile_width, 8);
        assert_eq!(ok.mode, "fixed");
        let err = KernelSelect::Fixed(7).choose(&spec, &m, 512).unwrap_err();
        assert_eq!(err.kind(), "invalid_tile_width");
    }

    #[test]
    fn heuristic_tracks_row_length() {
        let spec = DeviceSpec::a100();
        // Short rows (<= 8 entries) pick a narrow width...
        let short = random_csr(500, 256, 8, 2);
        let ws = KernelSelect::Heuristic.choose(&spec, &short, 512).unwrap();
        assert!(ws.tile_width <= 8, "short rows got {}", ws.tile_width);
        // ...long rows pick the full warp.
        let long = random_csr(300, 4096, 400, 3);
        let wl = KernelSelect::Heuristic.choose(&spec, &long, 512).unwrap();
        assert_eq!(wl.tile_width, 32);
    }

    #[test]
    fn heuristic_bumps_on_long_tail() {
        // Mostly length-2 rows plus 10% length-64 outliers: the tail
        // bump must widen the pick one step beyond the average rule.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        for r in 0..200 {
            if r % 10 == 0 {
                rows.push((0..64).map(|c| (c, 1.0)).collect());
            } else {
                rows.push(vec![(0, 1.0), (1, 1.0)]);
            }
        }
        let m64: Csr<f64, u32> = Csr::from_rows(128, &rows).unwrap();
        let m: Csr<F16, u32> = m64.convert_values();
        let stats = RowStats::from_csr(&m);
        let base = {
            let avg = stats.avg_nnz_nonempty;
            let mut w = 2u32;
            while (w as f64) < avg && w < 32 {
                w *= 2;
            }
            w
        };
        assert_eq!(heuristic_width(&stats), base * 2);
    }

    #[test]
    fn probe_is_deterministic_and_prefers_narrow_on_short_rows() {
        let spec = DeviceSpec::a100();
        // Enough short rows that the warp-overhead term dominates.
        let m = random_csr(60_000, 4096, 8, 4);
        let a = KernelSelect::MeasuredProbe.choose(&spec, &m, 512).unwrap();
        let b = KernelSelect::MeasuredProbe.choose(&spec, &m, 512).unwrap();
        assert_eq!(a, b, "probe must be deterministic");
        assert_eq!(a.mode, "probe");
        assert_eq!(a.candidates.len(), TILE_WIDTHS.len());
        assert!(a.tile_width < 32, "short rows should pick a narrow width");
        // The table must actually show fewer warps at the chosen width.
        let chosen = a
            .candidates
            .iter()
            .find(|c| c.tile_width == a.tile_width)
            .unwrap();
        let classic = a.candidates.iter().find(|c| c.tile_width == 32).unwrap();
        assert!(chosen.warps < classic.warps);
        assert!(chosen.modeled_seconds <= classic.modeled_seconds);
    }

    #[test]
    fn partitioned_heuristic_assigns_natural_widths() {
        let spec = DeviceSpec::a100();
        let m = random_csr(800, 256, 40, 6);
        let c = KernelSelect::Partitioned(PartitionStrategy::Heuristic)
            .choose(&spec, &m, 512)
            .unwrap();
        assert_eq!(c.mode, "partitioned-heuristic");
        assert_eq!(c.buckets.len(), 6);
        for (b, &w) in c.buckets.iter().zip(&BucketWidths::natural().0) {
            assert_eq!(b.tile_width, w, "bucket {}", b.bucket);
            if b.rows > 0 {
                assert!(b.lanes_active_frac > 0.5, "natural width half-fills tiles");
            }
        }
        // Whole-matrix fallback width = widest populated bucket's width.
        let widest = c
            .buckets
            .iter()
            .filter(|b| b.rows > 0)
            .map(|b| b.tile_width)
            .max()
            .unwrap();
        assert_eq!(c.tile_width, widest);
    }

    #[test]
    fn partitioned_probe_is_deterministic_with_full_tables() {
        let spec = DeviceSpec::a100();
        let m = random_csr(2000, 512, 48, 7);
        let sel = KernelSelect::Partitioned(PartitionStrategy::MeasuredProbe);
        let a = sel.choose(&spec, &m, 512).unwrap();
        let b = sel.choose(&spec, &m, 512).unwrap();
        assert_eq!(a, b, "partitioned probe must be deterministic");
        assert_eq!(a.mode, "partitioned-probe");
        for bc in &a.buckets {
            if bc.rows > 0 {
                assert_eq!(
                    bc.candidates.len(),
                    TILE_WIDTHS.len(),
                    "bucket {} table",
                    bc.bucket
                );
                let chosen = bc
                    .candidates
                    .iter()
                    .find(|c| c.tile_width == bc.tile_width)
                    .unwrap();
                for c in &bc.candidates {
                    assert!(chosen.modeled_seconds <= c.modeled_seconds);
                }
            } else {
                assert!(bc.candidates.is_empty());
            }
        }
    }

    #[test]
    fn whole_matrix_candidates_report_scheduled_occupancy() {
        let spec = DeviceSpec::a100();
        let m = random_csr(400, 128, 8, 8);
        let stats = RowStats::from_csr(&m);
        let c = KernelSelect::MeasuredProbe.choose(&spec, &m, 512).unwrap();
        for cand in &c.candidates {
            assert!(
                (cand.lanes_active_frac - stats.scheduled_lanes_active_frac(cand.tile_width)).abs()
                    < 1e-12
            );
            // Empty rows' padded lanes count against occupancy.
            assert!(cand.lanes_active_frac < stats.lanes_active_frac(cand.tile_width));
        }
    }

    #[test]
    fn heuristic_and_probe_agree_on_extreme_shapes() {
        let spec = DeviceSpec::a100();
        let long = random_csr(3000, 4096, 600, 5);
        let h = KernelSelect::Heuristic.choose(&spec, &long, 512).unwrap();
        let p = KernelSelect::MeasuredProbe
            .choose(&spec, &long, 512)
            .unwrap();
        assert_eq!(h.tile_width, 32);
        assert_eq!(p.tile_width, 32, "long rows must keep the full warp");
    }
}
