//! "GPU Baseline": the RayStation CPU algorithm ported to the GPU.
//!
//! The clinical implementation walks the compressed matrix column by
//! column (a column is one spot) and scatters `weight * value` into the
//! dose array. On the CPU, race freedom comes from per-thread scratch
//! dose arrays; the paper notes that is infeasible for tens of thousands
//! of GPU threads, so the port uses `atomicAdd` instead (§IV) — which
//! makes it *non-reproducible* (atomic ordering varies run to run) and,
//! as the measurements show, several times slower than the vector CSR
//! kernel:
//!
//! * the port parallelizes over the format's *segments* (runs of
//!   consecutive voxels within a column — the natural work unit of the
//!   compressed format). A warp's 32 lanes walk 32 different segments,
//!   so value loads are only partially coalesced: lanes start one run
//!   length apart, and the divergence grows as long and short runs mix;
//! * every non-zero costs an atomic read-modify-write. The output vector
//!   fits in the A100's 40 MB L2, so this traffic stays on-chip — the
//!   paper's explanation for the baseline's erratic *DRAM* bandwidth
//!   readings — but it binds the kernel to L2 throughput;
//! * prostate-sized matrices yield few segments, leaving the device
//!   underutilized.

use crate::vector_csr::VecScalar;
use rt_f16::DoseScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, WARP_SIZE};
use rt_sparse::RsCompressed;

/// Raw segment record as uploaded to the device.
#[derive(Clone, Copy, Debug, Default)]
pub struct RawSegment {
    pub start_row: u32,
    pub len: u32,
    pub value_offset: u64,
    /// Owning column (spot), for the weight lookup.
    pub col: u32,
}

/// A RayStation-format matrix resident in simulated device memory.
pub struct GpuRsMatrix<V> {
    nrows: usize,
    ncols: usize,
    nsegments: usize,
    segments: DeviceBuffer<RawSegment>,
    values: DeviceBuffer<V>,
}

impl<V: DoseScalar> GpuRsMatrix<V> {
    pub fn upload(gpu: &Gpu, m: &RsCompressed<V>) -> Self {
        let mut segments = Vec::with_capacity(m.segments().len());
        for c in 0..m.ncols() {
            for s in m.column_segments(c) {
                segments.push(RawSegment {
                    start_row: s.start_row,
                    len: s.len,
                    value_offset: s.value_offset as u64,
                    col: c as u32,
                });
            }
        }
        GpuRsMatrix {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nsegments: segments.len(),
            segments: gpu.upload(&segments),
            values: gpu.upload(m.values()),
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nsegments(&self) -> usize {
        self.nsegments
    }

    pub fn size_bytes(&self) -> usize {
        self.segments.size_bytes() + self.values.size_bytes()
    }
}

/// Launches the GPU Baseline kernel: `dose += A[:, c] * w[c]` scattered
/// with atomics, one thread per segment. The output buffer must be
/// zeroed by the caller (the algorithm accumulates).
///
/// The result is correct to rounding but **not bitwise reproducible**:
/// the accumulation order at each voxel depends on thread scheduling.
pub fn rs_baseline_gpu_spmv<V: DoseScalar, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuRsMatrix<V>,
    weights: &DeviceBuffer<X>,
    dose: &DeviceOutBuffer<X>,
    threads_per_block: u32,
) -> KernelStats {
    assert_eq!(weights.len(), m.ncols, "weights length mismatch");
    assert_eq!(dose.len(), m.nrows, "dose length mismatch");
    let nsegs = m.nsegments;
    let grid = Grid::thread_per_item(nsegs.max(1), threads_per_block);

    gpu.launch(grid, |w| {
        let base_seg = w.warp_id() * WARP_SIZE;
        if base_seg >= nsegs {
            return;
        }
        let lanes = WARP_SIZE.min(nsegs - base_seg);

        // Segment records are contiguous: coalesced metadata load.
        let segs = w.load_span(&m.segments, base_seg..base_seg + lanes);

        // Per-lane weight lookup (gather over the weight vector; adjacent
        // segments usually share a column, so this coalesces well).
        let mut idxs = [0usize; WARP_SIZE];
        for (k, s) in segs.iter().enumerate() {
            idxs[k] = s.col as usize;
        }
        let mut ws = [X::default(); WARP_SIZE];
        w.load_gather(weights, &idxs[..lanes], &mut ws);

        // Lockstep walk: step i processes element i of every segment
        // still active. Lanes start one run length apart in the value
        // array — partially coalesced, degrading as runs diverge.
        let mut vals = [V::zero(); WARP_SIZE];
        let max_len = segs.iter().map(|s| s.len).max().unwrap_or(0);
        let mut active: Vec<usize> = (0..lanes).collect();
        for i in 0..max_len {
            active.retain(|&k| i < segs[k].len);
            if active.is_empty() {
                break;
            }
            let n = active.len();
            for (slot, &k) in active.iter().enumerate() {
                idxs[slot] = segs[k].value_offset as usize + i as usize;
            }
            w.load_gather(&m.values, &idxs[..n], &mut vals);
            for (slot, &k) in active.iter().enumerate() {
                let row = (segs[k].start_row + i) as usize;
                w.atomic_add(dose, row, X::from_f64(vals[slot].to_f64()) * ws[k]);
            }
            w.add_flops(2 * n as u64);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};
    use rt_sparse::Csr;

    fn random_rs(seed: u64, nrows: usize, ncols: usize) -> (Csr<F16, u32>, RsCompressed<F16>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..12);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.1..1.0)))
                    .collect()
            })
            .collect();
        let csr: Csr<F16, u32> = Csr::<f64, u32>::from_rows(ncols, &rows)
            .unwrap()
            .convert_values();
        let rs = RsCompressed::from_csr(&csr);
        (csr, rs)
    }

    #[test]
    fn matches_reference_within_tolerance() {
        let (csr, rs) = random_rs(21, 500, 64);
        let weights: Vec<f64> = (0..64).map(|i| 0.5 + (i % 7) as f64).collect();
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuRsMatrix::upload(&gpu, &rs);
        let dw = gpu.upload(&weights);
        let dose = gpu.alloc_out::<f64>(500);
        let stats = rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);

        let mut want = vec![0.0; 500];
        csr.spmv_ref(&weights, &mut want).unwrap();
        for (g, w) in dose.to_vec().iter().zip(want.iter()) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
        assert_eq!(stats.flops, 2 * csr.nnz() as u64);
        assert_eq!(stats.atomic_ops, csr.nnz() as u64);
    }

    #[test]
    fn second_run_must_clear_output() {
        let (_, rs) = random_rs(22, 100, 16);
        let weights = vec![1.0f64; 16];
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuRsMatrix::upload(&gpu, &rs);
        let dw = gpu.upload(&weights);
        let dose = gpu.alloc_out::<f64>(100);
        rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);
        let first = dose.to_vec();
        rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);
        let second = dose.to_vec();
        // Accumulates: second run doubles (within fp tolerance).
        for (a, b) in first.iter().zip(second.iter()) {
            assert!((b - 2.0 * a).abs() < 1e-9 * (1.0 + a.abs()));
        }
        dose.clear();
        rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);
        for (a, b) in first.iter().zip(dose.to_vec().iter()) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn value_reads_are_less_coalesced_than_vector_kernel() {
        // Lanes walk different segments: when runs are long (the real
        // dose-matrix geometry: a spot deposits along hundreds of
        // consecutive voxels), lanes diverge by a whole run length and
        // every 2-byte value load costs its own 32-byte sector. Compare
        // against the fully-coalesced vector kernel on the same data.
        let nrows = 4000;
        let ncols = 256;
        let run_len = 120usize;
        // Column c is one run of `run_len` consecutive rows, staggered.
        let mut triplets = Vec::new();
        for c in 0..ncols {
            let start = (c * 13) % (nrows - run_len);
            for k in 0..run_len {
                triplets.push((start + k, c, 0.5f64));
            }
        }
        let csr: Csr<F16, u32> = Csr::<f64, u32>::from_triplets(nrows, ncols, &triplets)
            .unwrap()
            .convert_values();
        let rs = RsCompressed::from_csr(&csr);
        assert!(rs.avg_segment_len() > 50.0, "want long runs");
        let weights = vec![1.0f64; 256];
        let spec = DeviceSpec::a100().scaled_l2(50_000.0); // tiny L2
        let gpu = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
        let gm = GpuRsMatrix::upload(&gpu, &rs);
        let dw = gpu.upload(&weights);
        let dose = gpu.alloc_out::<f64>(4000);
        let baseline = rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);

        let gpu2 = Gpu::with_mode(spec, ExecMode::Sequential);
        let gm2 = crate::vector_csr::GpuCsrMatrix::upload(&gpu2, &csr);
        let dx2 = gpu2.upload(&weights);
        let dy2 = gpu2.alloc_out::<f64>(4000);
        let vector = crate::vector_csr::vector_csr_spmv(&gpu2, &gm2, &dx2, &dy2, 512);

        assert!(
            baseline.dram_read_bytes > vector.dram_read_bytes,
            "baseline {} vs vector {}",
            baseline.dram_read_bytes,
            vector.dram_read_bytes
        );
        assert!(baseline.coalescing_efficiency() < vector.coalescing_efficiency());
    }

    #[test]
    fn atomics_stay_in_l2_when_output_fits() {
        let (csr, rs) = random_rs(24, 2000, 128);
        let weights = vec![1.0f64; 128];
        // Default A100 L2 (40 MB) easily holds the 16 KB output.
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuRsMatrix::upload(&gpu, &rs);
        let dw = gpu.upload(&weights);
        let dose = gpu.alloc_out::<f64>(2000);
        let stats = rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);
        assert_eq!(stats.atomic_ops, csr.nnz() as u64);
        // Atomic RMWs hit in L2 after first touch: hits dominate misses.
        assert!(stats.l2_read_hits > stats.l2_read_misses);
    }

    #[test]
    fn empty_matrix_is_a_noop() {
        let rs = RsCompressed::<F16>::try_new(10, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuRsMatrix::upload(&gpu, &rs);
        let dw = gpu.upload(&[1.0f64; 2]);
        let dose = gpu.alloc_out::<f64>(10);
        let stats = rs_baseline_gpu_spmv(&gpu, &gm, &dw, &dose, 128);
        assert_eq!(stats.flops, 0);
        assert!(dose.to_vec().iter().all(|&d| d == 0.0));
    }
}
