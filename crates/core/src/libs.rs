//! Library stand-ins: cuSPARSE- and Ginkgo-style CSR SpMV in single
//! precision, for the Figure 3/6 comparisons.
//!
//! Neither library supports the paper's half/double mixing (the gap the
//! paper exploits), so — exactly like the paper — the comparison runs in
//! pure single precision. The stand-ins move the same bytes a
//! single-precision CSR SpMV must move; their strategy differences are
//! implemented structurally and their constant factors calibrated once
//! (see `profile_cusparse` / `profile_ginkgo` in the crate root and
//! DESIGN.md for the substitution note):
//!
//! * **cuSPARSE-like** — a warp-per-row vector kernel (the `csrmv`
//!   merge-free fast path) with the library's own launch heuristics.
//! * **Ginkgo-like** — the "classical" kernel: *sub*-warps per row, with
//!   the subwarp size chosen from the average row length, which wastes
//!   fewer lanes on short rows (why it wins on prostate) at some
//!   streaming efficiency cost (why it trails on liver).

use crate::vector_csr::{vector_csr_spmv, GpuCsrMatrix, VecScalar};
use rt_f16::DoseScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, WARP_SIZE};
use rt_sparse::ColIndex;

/// cuSPARSE-style CSR SpMV (single precision in the paper's comparison;
/// generic here). Fixed 256-thread blocks, warp per row.
pub fn cusparse_csr_spmv<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
) -> KernelStats {
    vector_csr_spmv(gpu, m, x, y, 256)
}

/// Ginkgo's subwarp-size heuristic: the smallest power of two covering
/// the average row length, clamped to `[1, 32]`.
pub fn ginkgo_subwarp_size(nnz: usize, nrows: usize) -> usize {
    if nrows == 0 {
        return WARP_SIZE;
    }
    let avg = nnz.div_ceil(nrows).max(1);
    avg.next_power_of_two().min(WARP_SIZE)
}

/// Ginkgo-style "classical" CSR SpMV: one subwarp of `sub` lanes per
/// row, `32 / sub` rows per warp. `sub == 32` degenerates to the vector
/// kernel.
pub fn ginkgo_csr_spmv<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
) -> KernelStats {
    assert_eq!(x.len(), m.ncols(), "input vector length mismatch");
    assert_eq!(y.len(), m.nrows(), "output vector length mismatch");
    let nrows = m.nrows();
    let sub = ginkgo_subwarp_size_from_matrix(m);
    let rows_per_warp = WARP_SIZE / sub;
    let warps_needed = nrows.div_ceil(rows_per_warp);
    let grid = Grid::warp_per_item(warps_needed, 512);

    gpu.launch(grid, |w| {
        let first_row = w.warp_id() * rows_per_warp;
        if first_row >= nrows {
            return;
        }
        let mut idxs = [0usize; WARP_SIZE];
        let mut xs = [X::default(); WARP_SIZE];
        for row in first_row..(first_row + rows_per_warp).min(nrows) {
            let start = w.load_scalar(m.row_ptr(), row) as usize;
            let end = w.load_scalar(m.row_ptr(), row + 1) as usize;
            let mut lanes = [X::default(); WARP_SIZE];
            let mut j = start;
            while j < end {
                let n = (end - j).min(sub);
                let cols = w.load_span(m.col_idx(), j..j + n);
                let vals = w.load_span(m.values(), j..j + n);
                for k in 0..n {
                    idxs[k] = cols[k].to_usize();
                }
                w.load_gather(x, &idxs[..n], &mut xs);
                for k in 0..n {
                    lanes[k] = lanes[k] + X::from_f64(vals[k].to_f64()) * xs[k];
                }
                w.add_flops(2 * n as u64);
                j += n;
            }
            // Subwarp tree reduction (fixed order, `sub` wide).
            let mut offset = sub / 2;
            while offset > 0 {
                for i in 0..offset {
                    lanes[i] = lanes[i] + lanes[i + offset];
                }
                offset /= 2;
            }
            w.store_scalar(y, row, lanes[0]);
        }
    })
}

fn ginkgo_subwarp_size_from_matrix<V: DoseScalar, I: ColIndex>(m: &GpuCsrMatrix<V, I>) -> usize {
    let nnz = m.values().len();
    ginkgo_subwarp_size(nnz, m.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_gpusim::DeviceSpec;
    use rt_sparse::Csr;

    fn random_f32(seed: u64, nrows: usize, ncols: usize, max_len: usize) -> Csr<f32, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..=max_len);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..1.0)))
                    .collect()
            })
            .collect();
        Csr::<f64, u32>::from_rows(ncols, &rows)
            .unwrap()
            .convert_values()
    }

    #[test]
    fn subwarp_heuristic() {
        assert_eq!(ginkgo_subwarp_size(100, 100), 1);
        assert_eq!(ginkgo_subwarp_size(300, 100), 4);
        assert_eq!(ginkgo_subwarp_size(1000, 100), 16);
        assert_eq!(ginkgo_subwarp_size(10_000, 100), 32);
        assert_eq!(ginkgo_subwarp_size(0, 0), 32);
    }

    #[test]
    fn ginkgo_matches_reference() {
        for (seed, max_len) in [(41u64, 6), (42, 40), (43, 200)] {
            let m = random_f32(seed, 300, 80, max_len);
            let x: Vec<f32> = (0..80).map(|i| (i as f32 * 0.3).sin() + 1.2).collect();
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f32>(300);
            ginkgo_csr_spmv(&gpu, &gm, &dx, &dy);
            let mut want = vec![0.0f64; 300];
            let m64: Csr<f64, u32> = m.convert_values();
            m64.spmv_ref(&x.iter().map(|&v| v as f64).collect::<Vec<_>>(), &mut want)
                .unwrap();
            for (g, w) in dy.to_vec().iter().zip(want.iter()) {
                assert!(
                    (*g as f64 - w).abs() <= 1e-4 * (1.0 + w.abs()),
                    "seed {seed}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn cusparse_matches_vector_kernel_bitwise() {
        let m = random_f32(44, 200, 64, 50);
        let x: Vec<f32> = vec![1.25; 64];
        let gpu1 = Gpu::new(DeviceSpec::a100());
        let gm1 = GpuCsrMatrix::upload(&gpu1, &m);
        let d1 = gpu1.upload(&x);
        let y1 = gpu1.alloc_out::<f32>(200);
        cusparse_csr_spmv(&gpu1, &gm1, &d1, &y1);

        let gpu2 = Gpu::new(DeviceSpec::a100());
        let gm2 = GpuCsrMatrix::upload(&gpu2, &m);
        let d2 = gpu2.upload(&x);
        let y2 = gpu2.alloc_out::<f32>(200);
        vector_csr_spmv(&gpu2, &gm2, &d2, &y2, 256);

        assert_eq!(
            y1.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ginkgo_uses_fewer_warps_on_short_rows() {
        // Short rows -> small subwarp -> several rows per warp.
        let m = random_f32(45, 1000, 64, 4);
        let x: Vec<f32> = vec![1.0; 64];
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f32>(1000);
        let g = ginkgo_csr_spmv(&gpu, &gm, &dx, &dy);

        let gpu2 = Gpu::new(DeviceSpec::a100());
        let gm2 = GpuCsrMatrix::upload(&gpu2, &m);
        let dx2 = gpu2.upload(&x);
        let dy2 = gpu2.alloc_out::<f32>(1000);
        let v = vector_csr_spmv(&gpu2, &gm2, &dx2, &dy2, 512);
        assert!(
            g.warps < v.warps,
            "ginkgo {} vs vector {}",
            g.warps,
            v.warps
        );
    }
}
