//! Host CPU implementations: the clinical RayStation algorithm with
//! per-thread scratch dose arrays, and a plain row-parallel CSR SpMV.
//!
//! These run for real on the host (Criterion wall-clock benches use
//! them); [`RsCpu::traffic_model_bytes`] additionally provides the
//! analytic DRAM-traffic estimate used to place the paper's i9-7940X
//! reference row in Figure 5 via `rt_gpusim::CpuSpec::estimate`.

use rt_f16::DoseScalar;
use rt_sparse::{ColIndex, Csr, RsCompressed, SparseError};

/// The RayStation CPU dose calculation: columns are distributed over
/// worker threads; each thread scatters into its own scratch dose array
/// (no races, no atomics); scratch arrays are then summed in fixed
/// thread order. Bitwise reproducible for a fixed thread count — the
/// property the clinical implementation guarantees (§II-D).
#[derive(Clone, Debug)]
pub struct RsCpu {
    pub threads: usize,
}

impl Default for RsCpu {
    fn default() -> Self {
        RsCpu {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl RsCpu {
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0);
        RsCpu { threads }
    }

    /// `dose = A w` over the compressed column format.
    pub fn spmv<V: DoseScalar>(
        &self,
        m: &RsCompressed<V>,
        weights: &[f64],
        dose: &mut [f64],
    ) -> Result<(), SparseError> {
        if weights.len() != m.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: m.ncols(),
                actual: weights.len(),
            });
        }
        if dose.len() != m.nrows() {
            return Err(SparseError::DimensionMismatch {
                expected: m.nrows(),
                actual: dose.len(),
            });
        }

        let threads = self.threads.min(m.ncols().max(1));
        let chunk = m.ncols().div_ceil(threads.max(1)).max(1);

        // Per-thread scratch arrays, merged in thread order afterwards.
        let scratches: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        let mut scratch = vec![0.0f64; m.nrows()];
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(m.ncols());
                        #[allow(clippy::needless_range_loop)]
                        for c in lo..hi {
                            let w = weights[c];
                            if w == 0.0 {
                                continue;
                            }
                            for seg in m.column_segments(c) {
                                let base = seg.start_row as usize;
                                let vals = &m.values()
                                    [seg.value_offset..seg.value_offset + seg.len as usize];
                                for (k, v) in vals.iter().enumerate() {
                                    scratch[base + k] += v.to_f64() * w;
                                }
                            }
                        }
                        scratch
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cpu worker panicked"))
                .collect()
        });

        // Deterministic merge: fixed thread order.
        dose.fill(0.0);
        for scratch in &scratches {
            for (d, s) in dose.iter_mut().zip(scratch.iter()) {
                *d += s;
            }
        }
        Ok(())
    }

    /// Analytic DRAM traffic (bytes) of this algorithm on a real CPU with
    /// last-level cache `llc_bytes`, used for the Figure 5 CPU row:
    ///
    /// * matrix values stream once: `V::BYTES * nnz`;
    /// * segment metadata: 8 bytes per segment + column pointers;
    /// * scratch scatter: the clinical implementation accumulates into
    ///   single-precision scratch arrays (`threads * 4 * nrows` bytes);
    ///   when they exceed the LLC each update is a read-modify-write of
    ///   a cached line — runs are contiguous, so the cost amortizes to
    ///   8 bytes per non-zero (4 read + 4 write); when everything fits,
    ///   the scatter is cache-resident and only the final merge pays;
    /// * the merge: read `threads` scratch arrays + write the result.
    pub fn traffic_model_bytes<V: DoseScalar>(&self, m: &RsCompressed<V>, llc_bytes: usize) -> f64 {
        let nnz = m.nnz() as f64;
        let nrows = m.nrows() as f64;
        let values = V::BYTES as f64 * nnz;
        let metadata = 8.0 * m.segments().len() as f64 + 8.0 * m.col_ptr().len() as f64;
        let scratch_bytes = self.threads as f64 * 4.0 * nrows;
        let scatter = if scratch_bytes > llc_bytes as f64 {
            8.0 * nnz
        } else {
            0.0
        };
        let merge = (self.threads as f64 + 1.0) * 4.0 * nrows + 8.0 * nrows;
        values + metadata + scatter + merge
    }
}

/// Plain row-parallel CSR SpMV on the host: each worker computes a
/// contiguous block of rows (deterministic: row dot products have a
/// fixed sequential order). This is the "convert to CSR first" CPU
/// reference used by the Criterion benches.
pub fn cpu_csr_spmv<V: DoseScalar, I: ColIndex>(
    m: &Csr<V, I>,
    x: &[f64],
    y: &mut [f64],
    threads: usize,
) -> Result<(), SparseError> {
    if x.len() != m.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: m.ncols(),
            actual: x.len(),
        });
    }
    if y.len() != m.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: m.nrows(),
            actual: y.len(),
        });
    }
    let threads = threads.max(1).min(m.nrows().max(1));
    let chunk = m.nrows().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for (t, block) in y.chunks_mut(chunk).enumerate() {
            let lo = t * chunk;
            s.spawn(move || {
                for (i, out) in block.iter_mut().enumerate() {
                    let (cols, vals) = m.row(lo + i);
                    let mut acc = 0.0f64;
                    for (c, v) in cols.iter().zip(vals.iter()) {
                        acc += v.to_f64() * x[c.to_usize()];
                    }
                    *out = acc;
                }
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;

    fn random_pair(seed: u64) -> (Csr<F16, u32>, RsCompressed<F16>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (nrows, ncols) = (800, 60);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..10);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.1..2.0)))
                    .collect()
            })
            .collect();
        let csr: Csr<F16, u32> = Csr::<f64, u32>::from_rows(ncols, &rows)
            .unwrap()
            .convert_values();
        let rs = RsCompressed::from_csr(&csr);
        (csr, rs)
    }

    #[test]
    fn rs_cpu_matches_reference() {
        let (csr, rs) = random_pair(31);
        let w: Vec<f64> = (0..60).map(|i| (i % 5) as f64 * 0.3).collect();
        let mut want = vec![0.0; 800];
        csr.spmv_ref(&w, &mut want).unwrap();
        let mut got = vec![0.0; 800];
        RsCpu::with_threads(4).spmv(&rs, &w, &mut got).unwrap();
        for (g, wv) in got.iter().zip(want.iter()) {
            assert!((g - wv).abs() <= 1e-9 * (1.0 + wv.abs()));
        }
    }

    #[test]
    fn rs_cpu_bitwise_reproducible_at_fixed_thread_count() {
        let (_, rs) = random_pair(32);
        let w: Vec<f64> = (0..60).map(|i| 1.0 + (i as f64).sin()).collect();
        let run = || {
            let mut d = vec![0.0; 800];
            RsCpu::with_threads(5).spmv(&rs, &w, &mut d).unwrap();
            d.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // Different thread counts partition columns differently — the
        // merge changes the summation order, so only tolerance holds.
        let mut d1 = vec![0.0; 800];
        RsCpu::with_threads(1).spmv(&rs, &w, &mut d1).unwrap();
        let mut d5 = vec![0.0; 800];
        RsCpu::with_threads(5).spmv(&rs, &w, &mut d5).unwrap();
        for (a, b) in d1.iter().zip(d5.iter()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn cpu_csr_matches_reference_bitwise() {
        let (csr, _) = random_pair(33);
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut want = vec![0.0; 800];
        csr.spmv_ref(&x, &mut want).unwrap();
        for threads in [1, 3, 8] {
            let mut got = vec![0.0; 800];
            cpu_csr_spmv(&csr, &x, &mut got, threads).unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn traffic_model_scales_with_problem() {
        let (_, rs) = random_pair(34);
        let cpu = RsCpu::with_threads(14);
        // Tiny LLC: scratch arrays spill, scatter traffic counted.
        let spill = cpu.traffic_model_bytes(&rs, 1 << 10);
        // Huge LLC: everything resident, only streams + merge.
        let fit = cpu.traffic_model_bytes(&rs, 1 << 30);
        assert!(spill > fit);
        assert!(fit > (2 * rs.nnz()) as f64); // at least the value stream
    }

    #[test]
    fn dimension_errors() {
        let (csr, rs) = random_pair(35);
        let mut d = vec![0.0; 800];
        assert!(RsCpu::default().spmv(&rs, &[1.0; 3], &mut d).is_err());
        assert!(cpu_csr_spmv(&csr, &[1.0; 3], &mut d, 2).is_err());
        let w = vec![1.0; 60];
        assert!(RsCpu::default().spmv(&rs, &w, &mut [0.0; 5]).is_err());
    }
}
