//! The paper's contribution: mixed-precision CSR SpMV kernels for
//! radiation dose calculation, running on the `rt-gpusim` simulator.
//!
//! Kernel inventory (all functionally executed, all traced through the
//! simulated memory hierarchy):
//!
//! | Kernel | Paper name | Strategy |
//! |---|---|---|
//! | [`vector_csr_spmv`] with `V = F16`, `X = f64` | **Half/double** | warp-per-row, cooperative-groups reduction, matrix in binary16, vectors in binary64. Bitwise reproducible. |
//! | [`vector_csr_spmv`] with `V = f32`, `X = f32` | **Single** | same kernel in pure single precision (the library-comparison configuration) |
//! | [`scalar_csr_spmv`] | (ablation) | Bell–Garland scalar kernel, one *thread* per row — the motivating counter-example of §III |
//! | [`rs_baseline_gpu_spmv`] | **GPU Baseline** | the RayStation CPU algorithm ported with atomics: column-parallel over the compressed segment format. *Not* reproducible. |
//! | [`RsCpu`] | RayStation CPU | column-parallel with per-thread scratch arrays and a deterministic merge (the clinical implementation) |
//! | [`ginkgo_csr_spmv`] / [`cusparse_csr_spmv`] | Ginkgo / cuSPARSE | single-precision library stand-ins (see DESIGN.md) |
//!
//! The high-level entry point is [`DoseCalculator`], which owns the device
//! matrix and exposes `compute_dose(weights)` the way RayStation's
//! optimizer calls it every iteration.

pub mod baseline;
pub mod bucketed;
pub mod calculator;
pub mod cpu;
pub mod error;
pub mod libs;
pub mod placement;
pub mod scalar_csr;
pub mod select;
pub mod sell_kernel;
pub mod sharded;
pub mod tiled;
pub mod vector_csr;

pub use baseline::{rs_baseline_gpu_spmv, GpuRsMatrix};
pub use bucketed::{
    bucket_label, bucketed_group_report, gradient_csr_spmm_bucketed, gradient_csr_spmv_bucketed,
    vector_csr_bucketed_reference, vector_csr_spmm_bucketed, vector_csr_spmv_bucketed,
    BucketWidths, GpuRowPlan,
};
pub use calculator::{
    BatchDoseResult, DoseCalculator, DoseCalculatorBuilder, DoseResult, PrecisionProfile,
};
pub use cpu::{cpu_csr_spmv, RsCpu};
pub use error::RtError;
pub use libs::{cusparse_csr_spmv, ginkgo_csr_spmv};
pub use placement::{
    choose_shard_count, modeled_pool_throughput, modeled_whole_seconds, BreakEvenPoint,
    ShardBreakEven,
};
pub use scalar_csr::scalar_csr_spmv;
pub use select::{
    heuristic_width, probe_widths, BucketChoice, KernelChoice, KernelSelect, PartitionStrategy,
    TileCandidate,
};
pub use sell_kernel::{sell_spmv, GpuSellMatrix};
pub use sharded::{
    select_per_shard, vector_csr_spmm_sharded, vector_csr_spmv_sharded, ShardDispatch,
    ShardSelection, ShardedCsr,
};
pub use tiled::{vector_csr_spmm_tiled, vector_csr_spmv_tiled, vector_csr_tiled_reference};
pub use vector_csr::{vector_csr_spmm, vector_csr_spmv, GpuCsrMatrix, VecScalar, MAX_SPMM_BATCH};

pub use rt_gpusim::TILE_WIDTHS;

use rt_gpusim::{KernelProfile, Precision};

/// Calibrated profile of the Half/double kernel (the contribution).
pub fn profile_half_double() -> KernelProfile {
    KernelProfile::new("Half/double", Precision::Double)
}

/// Calibrated profile of the Single kernel.
pub fn profile_single() -> KernelProfile {
    KernelProfile::new("Single", Precision::Single)
}

/// Calibrated profile of the GPU Baseline kernel. Per-warp overhead is
/// secondary for it (few long-running warps); its costs are all traffic.
pub fn profile_baseline() -> KernelProfile {
    KernelProfile::new("GPU Baseline", Precision::Double).with_warp_cycles(400.0)
}

/// Calibrated profile of the scalar (thread-per-row) ablation kernel.
pub fn profile_scalar() -> KernelProfile {
    KernelProfile::new("Scalar CSR", Precision::Double).with_warp_cycles(200.0)
}

/// cuSPARSE stand-in profile: same vector strategy, slightly higher
/// per-row overhead than our tuned kernel (calibrated to Fig. 6: strong
/// on long liver rows, weaker on short prostate rows).
pub fn profile_cusparse() -> KernelProfile {
    KernelProfile::new("cuSPARSE", Precision::Single).with_warp_cycles(200.0)
}

/// Profile of the SELL-C-32 kernel (§VII future work, implemented):
/// very low per-row overhead (no pointer chasing, no reduction).
pub fn profile_sell() -> KernelProfile {
    KernelProfile::new("SELL-C-32", Precision::Double).with_warp_cycles(30.0)
}

/// Ginkgo stand-in profile: the load-balanced classical kernel handles
/// short rows well (low per-row overhead via sub-warps) at a small
/// streaming-efficiency cost (calibrated to Fig. 6: beats cuSPARSE on
/// prostate, trails on liver).
pub fn profile_ginkgo() -> KernelProfile {
    KernelProfile::new("Ginkgo", Precision::Single)
        .with_warp_cycles(110.0)
        .with_bw_efficiency(0.90)
}
