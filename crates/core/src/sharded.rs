//! Row-sharded multi-device SpMV/SpMM: one dose request executed
//! cooperatively across a [`DeviceGroup`].
//!
//! The vector kernel saturates one device's DRAM bandwidth, so a single
//! request only gets faster with more DRAM — more devices. This module
//! drives a [`rt_sparse::ShardPlan`] (contiguous row ranges, balanced by
//! nnz) across a [`DeviceGroup`]: shard `i` lives on device `i % N`
//! (matrix + row plan uploaded once, at [`ShardedCsr::upload`]), every
//! shard launches concurrently on its home device with its own cache and
//! counter state, and the partial doses scatter into disjoint slices of
//! the merged output.
//!
//! **Reproducibility contract.** Widths are pinned *globally*, from the
//! whole matrix, before sharding: [`ShardDispatch::Fixed`] runs every
//! shard at one width, and [`ShardDispatch::Bucketed`] shares one
//! [`BucketWidths`] table across shards — a row's bucket is a function of
//! its length alone, so every row runs the byte-identical per-row
//! arithmetic it would run unsharded. Each output element is produced by
//! exactly one shard, so the merge is a pure disjoint scatter, and the
//! doses are **bitwise identical** to the unsharded kernels for any shard
//! count, pool size, or completion order (asserted across all of them in
//! `crates/core/tests/sharded.rs`).
//!
//! The timing model charges each shard its compute time on its home
//! device plus an inter-device gather term
//! ([`rt_gpusim::timing::gather_estimate`]) for shipping its non-empty
//! row results to the merged buffer; the sharded launch completes at
//! `max_i(compute_i + gather_i)` — the critical path, not the sum
//! ([`ShardedReport::modeled_seconds`]).

use crate::bucketed::{
    vector_csr_spmm_bucketed, vector_csr_spmv_bucketed, BucketWidths, GpuRowPlan,
};
use crate::error::RtError;
use crate::select::{KernelChoice, KernelSelect};
use crate::tiled::{vector_csr_spmm_tiled, vector_csr_spmv_tiled};
use crate::vector_csr::{
    vector_csr_spmm, vector_csr_spmv, GpuCsrMatrix, VecScalar, MAX_SPMM_BATCH,
};
use rt_f16::DoseScalar;
use rt_gpusim::{
    timing, DeviceGroup, DeviceTask, Gpu, KernelProfile, KernelStats, ShardReport, ShardedReport,
    TILE_WIDTHS, WARP_SIZE,
};
use rt_sparse::{ColIndex, ShardPlan};

/// How every shard of a sharded launch dispatches its rows. Pinned once
/// per plan, from the *whole* matrix — never re-derived per shard — so
/// each row's tile width is shard-invariant (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardDispatch {
    /// One tile width for every row of every shard (32 = the classic
    /// warp-per-row kernel, exactly as the unsharded dispatch).
    Fixed(u32),
    /// Bucketed row-partition dispatch per shard, all shards sharing one
    /// global width table.
    Bucketed(BucketWidths),
}

impl ShardDispatch {
    /// Short human/JSON label ("w=8" or "bucketed").
    pub fn label(&self) -> String {
        match self {
            ShardDispatch::Fixed(w) => format!("w={w}"),
            ShardDispatch::Bucketed(_) => "bucketed".to_string(),
        }
    }

    fn validate(&self) -> Result<(), RtError> {
        match self {
            ShardDispatch::Fixed(w) => {
                if !TILE_WIDTHS.contains(w) {
                    return Err(RtError::InvalidTileWidth(*w));
                }
            }
            ShardDispatch::Bucketed(widths) => {
                if !widths.is_valid() {
                    return Err(RtError::InvalidTileWidth(
                        widths
                            .0
                            .iter()
                            .copied()
                            .find(|w| !TILE_WIDTHS.contains(w))
                            .unwrap_or(0),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One shard resident on its home device: the sub-CSR and its row plan,
/// uploaded once and reused by every sharded launch.
struct GpuShard<V, I = u32> {
    row_start: usize,
    row_end: usize,
    nnz: usize,
    nonempty_rows: usize,
    matrix: GpuCsrMatrix<V, I>,
    gplan: GpuRowPlan,
}

/// A [`ShardPlan`]'s shards uploaded across a [`DeviceGroup`]: shard `i`
/// on device `i % N`. Holds only the device-resident state — the host
/// [`ShardPlan`] can be dropped after upload.
pub struct ShardedCsr<V, I = u32> {
    nrows: usize,
    ncols: usize,
    shards: Vec<GpuShard<V, I>>,
}

impl<V: DoseScalar, I: ColIndex> ShardedCsr<V, I> {
    /// Uploads every shard's matrix and row plan to its home device.
    pub fn upload(group: &DeviceGroup, plan: &ShardPlan<V, I>) -> Self {
        let shards = plan
            .shards()
            .iter()
            .map(|s| {
                let gpu = group.device_for(s.index);
                GpuShard {
                    row_start: s.row_start,
                    row_end: s.row_end,
                    nnz: s.nnz(),
                    nonempty_rows: s.nonempty_rows(),
                    matrix: GpuCsrMatrix::upload(gpu, &s.matrix),
                    gplan: GpuRowPlan::upload(gpu, s.plan.clone()),
                }
            })
            .collect();
        ShardedCsr {
            nrows: plan.nrows(),
            ncols: plan.ncols(),
            shards,
        }
    }

    /// Rows of the full (unsharded) matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the full matrix (every shard keeps the full column
    /// space).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Device-resident bytes this sharded matrix puts on device
    /// `device` of a `pool`-device group (sum of the sub-CSR footprints
    /// of the shards homed there). The whole point of sharded residency:
    /// `sum_d(resident_bytes_on(d, pool)) ==` one full upload, instead of
    /// `pool ×` full uploads.
    pub fn resident_bytes_on(&self, device: usize, pool: usize) -> u64 {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| i % pool == device)
            .map(|(_, s)| s.matrix.size_bytes() as u64)
            .sum()
    }

    /// Total device-resident bytes across the pool.
    pub fn resident_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.matrix.size_bytes() as u64)
            .sum()
    }
}

/// Runs one shard's launch on its home device and returns the partial
/// result with the shard's merged counters.
fn shard_launch<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    shard: &GpuShard<V, I>,
    xs: &[Vec<X>],
    threads_per_block: u32,
    dispatch: ShardDispatch,
) -> (Vec<Vec<X>>, KernelStats) {
    let dxs: Vec<_> = xs.iter().map(|x| gpu.upload(x)).collect();
    let dys: Vec<_> = (0..xs.len())
        .map(|_| gpu.alloc_out::<X>(shard.matrix.nrows()))
        .collect();
    let xr: Vec<_> = dxs.iter().collect();
    let yr: Vec<_> = dys.iter().collect();
    let stats = match dispatch {
        // Width 32 dispatches the classic warp-per-row kernels, exactly
        // like the unsharded calculator path.
        ShardDispatch::Fixed(w) if w == WARP_SIZE as u32 => {
            if xs.len() == 1 {
                vector_csr_spmv(gpu, &shard.matrix, xr[0], yr[0], threads_per_block)
            } else {
                vector_csr_spmm(gpu, &shard.matrix, &xr, &yr, threads_per_block)
            }
        }
        ShardDispatch::Fixed(w) => {
            if xs.len() == 1 {
                vector_csr_spmv_tiled(gpu, &shard.matrix, xr[0], yr[0], threads_per_block, w)
            } else {
                vector_csr_spmm_tiled(gpu, &shard.matrix, &xr, &yr, threads_per_block, w)
            }
        }
        ShardDispatch::Bucketed(widths) => {
            let group = if xs.len() == 1 {
                vector_csr_spmv_bucketed(
                    gpu,
                    &shard.matrix,
                    xr[0],
                    yr[0],
                    threads_per_block,
                    &shard.gplan,
                    widths,
                )
            } else {
                vector_csr_spmm_bucketed(
                    gpu,
                    &shard.matrix,
                    &xr,
                    &yr,
                    threads_per_block,
                    &shard.gplan,
                    widths,
                )
            };
            group.merged
        }
    };
    (dys.iter().map(|dy| dy.to_vec()).collect(), stats)
}

fn sharded_launch<V: DoseScalar, I: ColIndex, X: VecScalar>(
    group: &DeviceGroup,
    sm: &ShardedCsr<V, I>,
    xs: &[Vec<X>],
    threads_per_block: u32,
    dispatch: ShardDispatch,
    profile: &KernelProfile,
) -> Result<(Vec<Vec<X>>, ShardedReport), RtError> {
    dispatch.validate()?;
    assert!(
        !xs.is_empty() && xs.len() <= MAX_SPMM_BATCH,
        "batch size must be 1..={MAX_SPMM_BATCH}, got {}",
        xs.len()
    );
    for x in xs {
        assert_eq!(x.len(), sm.ncols, "input vector length mismatch");
    }

    let tasks: Vec<DeviceTask<(Vec<Vec<X>>, KernelStats)>> = sm
        .shards
        .iter()
        .map(|shard| {
            Box::new(move |gpu: &Gpu| shard_launch(gpu, shard, xs, threads_per_block, dispatch))
                as DeviceTask<_>
        })
        .collect();
    let partials = group.run(tasks);

    let mut ys: Vec<Vec<X>> = (0..xs.len())
        .map(|_| vec![X::default(); sm.nrows])
        .collect();
    let mut reports = Vec::with_capacity(sm.shards.len());
    for (i, (shard, (parts, stats))) in sm.shards.iter().zip(partials).enumerate() {
        for (v, part) in parts.into_iter().enumerate() {
            ys[v][shard.row_start..shard.row_end].copy_from_slice(&part);
        }
        let gpu = group.device_for(i);
        let estimate = timing::estimate(gpu.spec(), profile, &stats);
        let gather_bytes = shard.nonempty_rows as u64 * 8 * xs.len() as u64;
        reports.push(ShardReport {
            shard: i,
            device: gpu.spec().name.to_string(),
            row_start: shard.row_start as u64,
            rows: (shard.row_end - shard.row_start) as u64,
            nnz: shard.nnz as u64,
            dispatch: dispatch.label(),
            stats,
            estimate,
            gather_bytes,
            gather_seconds: timing::gather_estimate(gpu.spec(), gather_bytes),
        });
    }
    Ok((ys, ShardedReport::new(profile.name.clone(), reports)))
}

/// Sharded `y = A x`: every shard launches concurrently on its home
/// device, partial doses scatter into disjoint slices of `y`. Bitwise
/// identical to the unsharded kernel at the same (pinned) widths for any
/// shard count, pool size, or completion order.
pub fn vector_csr_spmv_sharded<V: DoseScalar, I: ColIndex, X: VecScalar>(
    group: &DeviceGroup,
    sm: &ShardedCsr<V, I>,
    x: &[X],
    threads_per_block: u32,
    dispatch: ShardDispatch,
    profile: &KernelProfile,
) -> Result<(Vec<X>, ShardedReport), RtError> {
    let (mut ys, report) = sharded_launch(
        group,
        sm,
        &[x.to_vec()],
        threads_per_block,
        dispatch,
        profile,
    )?;
    Ok((ys.pop().unwrap(), report))
}

/// Multi-vector sharded dispatch: `ys[v] = A xs[v]` for every `v`, each
/// shard running one SpMM launch over the whole batch on its home device.
/// Per-vector arithmetic is identical to [`vector_csr_spmv_sharded`].
pub fn vector_csr_spmm_sharded<V: DoseScalar, I: ColIndex, X: VecScalar>(
    group: &DeviceGroup,
    sm: &ShardedCsr<V, I>,
    xs: &[Vec<X>],
    threads_per_block: u32,
    dispatch: ShardDispatch,
    profile: &KernelProfile,
) -> Result<(Vec<Vec<X>>, ShardedReport), RtError> {
    sharded_launch(group, sm, xs, threads_per_block, dispatch, profile)
}

/// One shard's autotuner verdict: [`KernelSelect`] resolved against the
/// shard's *own* sub-CSR on its *home* device. Reporting/CLI evidence
/// only — actual dispatch pins widths globally so sharded results stay
/// bitwise identical to unsharded ones (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSelection {
    pub shard: usize,
    /// Home device name (`shard % pool`).
    pub device: String,
    pub row_start: u64,
    pub rows: u64,
    pub nnz: u64,
    /// Result bytes the shard ships at gather time.
    pub gather_bytes: u64,
    /// Modeled gather seconds over the home device's interconnect.
    pub gather_seconds: f64,
    /// The autotuner's decision for the shard in isolation.
    pub choice: KernelChoice,
}

/// Resolves `select` per shard, against each shard's home device spec —
/// the `rtdose kernels` shard table and the engine's per-shard evidence.
pub fn select_per_shard<V: DoseScalar, I: ColIndex>(
    select: &KernelSelect,
    group: &DeviceGroup,
    plan: &ShardPlan<V, I>,
    threads_per_block: u32,
) -> Result<Vec<ShardSelection>, RtError> {
    plan.shards()
        .iter()
        .map(|s| {
            let spec = group.device_for(s.index).spec();
            let choice = select.choose(spec, &s.matrix, threads_per_block)?;
            Ok(ShardSelection {
                shard: s.index,
                device: spec.name.to_string(),
                row_start: s.row_start as u64,
                rows: s.nrows() as u64,
                nnz: s.nnz() as u64,
                gather_bytes: s.gather_bytes(),
                gather_seconds: timing::gather_estimate(spec, s.gather_bytes()),
                choice,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};
    use rt_sparse::Csr;

    fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<F16, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    return Vec::new();
                }
                let len = rng.gen_range(1..=max_row);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            })
            .collect();
        let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
        m.convert_values()
    }

    fn pool() -> DeviceGroup {
        DeviceGroup::with_mode(
            vec![DeviceSpec::a100(), DeviceSpec::v100(), DeviceSpec::p100()],
            ExecMode::Sequential,
        )
    }

    #[test]
    fn sharded_residency_sums_to_one_full_upload() {
        let m = random_csr(600, 96, 30, 40);
        let plan = ShardPlan::build(&m, 3);
        let group = pool();
        let sm = ShardedCsr::upload(&group, &plan);
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let full = GpuCsrMatrix::upload(&gpu, &m).size_bytes() as u64;
        let per_dev: u64 = (0..3).map(|d| sm.resident_bytes_on(d, 3)).sum();
        assert_eq!(per_dev, sm.resident_bytes());
        // Each shard re-stores a rebased row_ptr; the overhead is bounded
        // by (K-1) extra row-pointer entries, i.e. bytes, not a K× copy.
        assert!(sm.resident_bytes() < full + 3 * 8);
        assert!(sm.resident_bytes() >= full);
    }

    #[test]
    fn report_carries_per_shard_breakdown_and_critical_path() {
        let m = random_csr(500, 80, 24, 41);
        let x: Vec<f64> = (0..80).map(|i| (i as f64 * 0.23).cos() + 1.1).collect();
        let plan = ShardPlan::build(&m, 3);
        let group = pool();
        let sm = ShardedCsr::upload(&group, &plan);
        let (_, report) = vector_csr_spmv_sharded(
            &group,
            &sm,
            &x,
            256,
            ShardDispatch::Fixed(8),
            &crate::profile_half_double(),
        )
        .unwrap();
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.devices, vec!["A100", "V100", "P100"]);
        assert_eq!(
            report.stats.flops,
            2 * m.nnz() as u64,
            "merged flops = whole-matrix flops"
        );
        let worst = report
            .shards
            .iter()
            .map(|s| s.estimate.seconds + s.gather_seconds)
            .fold(0.0f64, f64::max);
        assert_eq!(report.modeled_seconds, worst);
        for s in &report.shards {
            assert_eq!(s.dispatch, "w=8");
            assert!(s.gather_seconds > 0.0);
        }
        let total_rows: u64 = report.shards.iter().map(|s| s.rows).sum();
        assert_eq!(total_rows, 500);
    }

    #[test]
    fn invalid_widths_are_rejected() {
        let m = random_csr(50, 16, 4, 42);
        let plan = ShardPlan::build(&m, 2);
        let group = pool();
        let sm = ShardedCsr::upload(&group, &plan);
        let x = vec![1.0f64; 16];
        let err = vector_csr_spmv_sharded(
            &group,
            &sm,
            &x,
            128,
            ShardDispatch::Fixed(7),
            &crate::profile_half_double(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_tile_width");
        let mut widths = BucketWidths::natural();
        widths.0[2] = 9;
        let err = vector_csr_spmv_sharded(
            &group,
            &sm,
            &x,
            128,
            ShardDispatch::Bucketed(widths),
            &crate::profile_half_double(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_tile_width");
    }

    #[test]
    fn per_shard_selection_resolves_against_home_devices() {
        let m = random_csr(900, 128, 12, 43);
        let plan = ShardPlan::build(&m, 4);
        let group = pool();
        let sel = select_per_shard(&KernelSelect::Heuristic, &group, &plan, 256).unwrap();
        assert_eq!(sel.len(), 4);
        assert_eq!(sel[0].device, "A100");
        assert_eq!(sel[3].device, "A100"); // 3 % 3 == 0
        for (i, s) in sel.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert!(s.rows > 0);
            assert_eq!(s.gather_bytes % 8, 0);
            assert!(TILE_WIDTHS.contains(&s.choice.tile_width));
        }
    }
}
