//! The scalar (thread-per-row) CSR kernel — Bell & Garland's baseline
//! and the paper's motivating counter-example (§III): when each *thread*
//! owns a row, the lanes of a warp read from 32 *different* rows at each
//! step, so consecutive lanes touch addresses a whole row apart and the
//! coalescer can merge almost nothing. The row-mapping ablation bench
//! quantifies the traffic amplification against the vector kernel.

use crate::vector_csr::{GpuCsrMatrix, VecScalar};
use rt_f16::DoseScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, WARP_SIZE};
use rt_sparse::ColIndex;

/// Launches the scalar CSR kernel: `y = A x` with one thread per row.
/// Like the vector kernel, accumulation order per row is fixed (purely
/// sequential here), so the result is bitwise reproducible too — its
/// problem is bandwidth, not reproducibility.
pub fn scalar_csr_spmv<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
    threads_per_block: u32,
) -> KernelStats {
    assert_eq!(x.len(), m.ncols(), "input vector length mismatch");
    assert_eq!(y.len(), m.nrows(), "output vector length mismatch");
    let nrows = m.nrows();
    let grid = Grid::thread_per_item(nrows, threads_per_block);

    gpu.launch(grid, |w| {
        let base_row = w.warp_id() * WARP_SIZE;
        if base_row >= nrows {
            return;
        }
        let lanes_active = WARP_SIZE.min(nrows - base_row);

        // Coalesced: consecutive row pointers cover all lanes' bounds.
        let ptrs = w.load_span(m.row_ptr(), base_row..base_row + lanes_active + 1);
        let mut offs = [0usize; WARP_SIZE];
        let mut ends = [0usize; WARP_SIZE];
        for k in 0..lanes_active {
            offs[k] = ptrs[k] as usize;
            ends[k] = ptrs[k + 1] as usize;
        }

        let mut acc = [X::default(); WARP_SIZE];
        let mut active: Vec<usize> = (0..lanes_active).filter(|&k| offs[k] < ends[k]).collect();
        let mut idxs = [0usize; WARP_SIZE];
        let mut cols = [I::try_from_usize(0).unwrap(); WARP_SIZE];
        let mut vals = [V::zero(); WARP_SIZE];
        let mut xs = [X::default(); WARP_SIZE];

        while !active.is_empty() {
            let n = active.len();
            // Each active lane reads the next element of its own row —
            // a gather across rows, the uncoalesced pattern.
            for (slot, &lane) in active.iter().enumerate() {
                idxs[slot] = offs[lane];
            }
            w.load_gather(m.col_idx(), &idxs[..n], &mut cols);
            w.load_gather(m.values(), &idxs[..n], &mut vals);
            for slot in 0..n {
                idxs[slot] = cols[slot].to_usize();
            }
            w.load_gather(x, &idxs[..n], &mut xs);
            for (slot, &lane) in active.iter().enumerate() {
                acc[lane] = acc[lane] + X::from_f64(vals[slot].to_f64()) * xs[slot];
                offs[lane] += 1;
            }
            w.add_flops(2 * n as u64);
            active.retain(|&lane| offs[lane] < ends[lane]);
        }

        // Coalesced output store: consecutive rows.
        w.store_span(y, base_row, &acc[..lanes_active]);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector_csr::vector_csr_spmv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};
    use rt_sparse::Csr;

    fn random_matrix(seed: u64) -> Csr<F16, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let nrows = 400;
        let ncols = 120;
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                let len = rng.gen_range(0..60);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..1.0)))
                    .collect()
            })
            .collect();
        Csr::<f64, u32>::from_rows(ncols, &rows)
            .unwrap()
            .convert_values()
    }

    #[test]
    fn matches_tolerance_against_reference() {
        let m = random_matrix(11);
        let x: Vec<f64> = (0..m.ncols()).map(|i| (i as f64).cos() + 2.0).collect();
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(m.nrows());
        scalar_csr_spmv(&gpu, &gm, &dx, &dy, 256);

        let mut want = vec![0.0; m.nrows()];
        m.spmv_ref(&x, &mut want).unwrap();
        // Sequential per-row accumulation == spmv_ref order: bitwise.
        assert_eq!(
            dy.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reproducible_across_runs() {
        let m = random_matrix(12);
        let x: Vec<f64> = vec![1.5; m.ncols()];
        let run = || {
            let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Parallel);
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(m.nrows());
            scalar_csr_spmv(&gpu, &gm, &dx, &dy, 256);
            dy.to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uses_more_dram_traffic_than_vector_kernel() {
        // The §III argument: thread-per-row reads the matrix arrays
        // uncoalesced. Use a device with a tiny L2 so the pattern shows
        // up as DRAM traffic.
        let m = random_matrix(13);
        let x: Vec<f64> = vec![1.0; m.ncols()];
        let spec = DeviceSpec::a100().scaled_l2(100_000.0);

        let gpu1 = Gpu::with_mode(spec.clone(), ExecMode::Sequential);
        let gm1 = GpuCsrMatrix::upload(&gpu1, &m);
        let dx1 = gpu1.upload(&x);
        let dy1 = gpu1.alloc_out::<f64>(m.nrows());
        let scalar = scalar_csr_spmv(&gpu1, &gm1, &dx1, &dy1, 256);

        let gpu2 = Gpu::with_mode(spec, ExecMode::Sequential);
        let gm2 = GpuCsrMatrix::upload(&gpu2, &m);
        let dx2 = gpu2.upload(&x);
        let dy2 = gpu2.alloc_out::<f64>(m.nrows());
        let vector = vector_csr_spmv(&gpu2, &gm2, &dx2, &dy2, 256);

        assert!(
            scalar.dram_read_bytes as f64 > 1.5 * vector.dram_read_bytes as f64,
            "scalar {} vs vector {}",
            scalar.dram_read_bytes,
            vector.dram_read_bytes
        );
        // Same useful work.
        assert_eq!(scalar.flops, vector.flops);
    }

    #[test]
    fn handles_trailing_partial_warp() {
        // 35 rows: the second warp has only 3 active lanes.
        let rows: Vec<Vec<(usize, f64)>> = (0..35).map(|r| vec![(r % 7, (r + 1) as f64)]).collect();
        let m: Csr<F16, u32> = Csr::<f64, u32>::from_rows(7, &rows)
            .unwrap()
            .convert_values();
        let x = vec![1.0f64; 7];
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(35);
        scalar_csr_spmv(&gpu, &gm, &dx, &dy, 128);
        let got = dy.to_vec();
        for (r, g) in got.iter().enumerate() {
            assert_eq!(*g, F16::from_f64((r + 1) as f64).to_f64(), "row {r}");
        }
    }
}
