//! The warp-per-row "vector" CSR kernel with cooperative-groups reduction
//! — the paper's Listing 1, in its mixed-precision generic form.
//!
//! One warp of 32 lanes processes each matrix row: lane `k` accumulates
//! elements `start+k, start+32+k, ...` of the row (so consecutive lanes
//! always read consecutive elements of the value and column-index arrays —
//! the coalescing argument of §III), gathers the corresponding input
//! vector entries, and a fixed-order shuffle-down tree (the cooperative
//! groups `reduce`) folds the 32 partial sums. Because the per-lane
//! accumulation order and the reduction tree are fixed, the result is
//! **bitwise reproducible** — the RayStation requirement that rules out
//! atomics (§II-D).

use rt_f16::DoseScalar;
use rt_gpusim::buffer::OutScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, WARP_SIZE};
use rt_sparse::{ColIndex, Csr};

/// Scalar type usable for the input/output vectors and the accumulator.
pub trait VecScalar:
    DoseScalar + OutScalar + core::ops::Add<Output = Self> + core::ops::Mul<Output = Self> + Default
{
}

impl VecScalar for f64 {}
impl VecScalar for f32 {}

/// A CSR matrix resident in simulated device memory.
pub struct GpuCsrMatrix<V, I = u32> {
    nrows: usize,
    ncols: usize,
    row_ptr: DeviceBuffer<u32>,
    col_idx: DeviceBuffer<I>,
    values: DeviceBuffer<V>,
}

impl<V: DoseScalar, I: ColIndex> GpuCsrMatrix<V, I> {
    /// Uploads a host CSR matrix ("cudaMemcpy H2D").
    pub fn upload(gpu: &Gpu, m: &Csr<V, I>) -> Self {
        GpuCsrMatrix {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr: gpu.upload(m.row_ptr()),
            col_idx: gpu.upload(m.col_idx()),
            values: gpu.upload(m.values()),
        }
    }

    /// Like [`GpuCsrMatrix::upload`], registering each array for
    /// per-buffer traffic attribution as `row_ptr`, `col_idx`, `values`.
    pub fn upload_named(gpu: &Gpu, m: &Csr<V, I>) -> Self {
        GpuCsrMatrix {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr: gpu.upload_named("row_ptr", m.row_ptr()),
            col_idx: gpu.upload_named("col_idx", m.col_idx()),
            values: gpu.upload_named("values", m.values()),
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Device footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.row_ptr.size_bytes() + self.col_idx.size_bytes() + self.values.size_bytes()
    }

    #[inline]
    pub fn row_ptr(&self) -> &DeviceBuffer<u32> {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &DeviceBuffer<I> {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &DeviceBuffer<V> {
        &self.values
    }
}

/// Launches the vector CSR kernel: `y = A x` with one warp per row.
///
/// `V` is the matrix storage scalar (`F16` for the paper's Half/double
/// configuration, `f32` for Single), `X` the vector/accumulator scalar
/// (`f64` / `f32` respectively). `threads_per_block` is the Figure 4
/// sweep parameter (the paper settles on 512).
pub fn vector_csr_spmv<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
    threads_per_block: u32,
) -> KernelStats {
    assert_eq!(x.len(), m.ncols, "input vector length mismatch");
    assert_eq!(y.len(), m.nrows, "output vector length mismatch");
    let grid = Grid::warp_per_item(m.nrows, threads_per_block);
    let nrows = m.nrows;

    gpu.launch(grid, |w| {
        let row = w.warp_id();
        if row >= nrows {
            return;
        }
        let start = w.load_scalar(&m.row_ptr, row) as usize;
        let end = w.load_scalar(&m.row_ptr, row + 1) as usize;

        let mut lanes = [X::default(); WARP_SIZE];
        let mut idxs = [0usize; WARP_SIZE];
        let mut xs = [X::default(); WARP_SIZE];

        let mut j = start;
        while j < end {
            let n = (end - j).min(WARP_SIZE);
            let cols = w.load_span(&m.col_idx, j..j + n);
            let vals = w.load_span(&m.values, j..j + n);
            for k in 0..n {
                idxs[k] = cols[k].to_usize();
            }
            w.load_gather(x, &idxs[..n], &mut xs);
            for k in 0..n {
                lanes[k] = lanes[k] + X::from_f64(vals[k].to_f64()) * xs[k];
            }
            w.add_flops(2 * n as u64);
            j += n;
        }

        let sum = w.reduce_sum(&mut lanes);
        w.store_scalar(y, row, sum);
    })
}

/// Maximum input vectors fused into one [`vector_csr_spmm`] launch (the
/// per-warp accumulator state is `MAX_SPMM_BATCH * 32` scalars on the
/// simulated register file, like a real multi-vector kernel's unroll
/// factor).
pub const MAX_SPMM_BATCH: usize = 8;

/// Launches the multi-vector (SpMM-style) variant of the vector CSR
/// kernel: `ys[v] = A xs[v]` for every `v`, one warp per matrix row,
/// all vectors in a single launch.
///
/// The matrix arrays (`row_ptr`, `col_idx`, `values`) are loaded **once
/// per row** and reused across the `k` vectors — the traffic saving that
/// makes batching compatible requests worthwhile (the matrix dominates
/// SpMV traffic at ~6 bytes/nnz, so a k-batch approaches a k-fold
/// reduction of the dominant term).
///
/// Per-vector arithmetic is **identical** to [`vector_csr_spmv`]: the
/// same lane partitioning and the same fixed shuffle-down reduction tree
/// per vector, so each output is bitwise identical to an unbatched
/// launch — batching can never change a plan's dose (§II-D holds
/// regardless of how a serving engine groups requests).
///
/// Internal invariants (callers validate at the API boundary): at most
/// [`MAX_SPMM_BATCH`] vectors, `xs.len() == ys.len()`, every `xs[v]` of
/// length `ncols`, every `ys[v]` of length `nrows`.
pub fn vector_csr_spmm<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    xs: &[&DeviceBuffer<X>],
    ys: &[&DeviceOutBuffer<X>],
    threads_per_block: u32,
) -> KernelStats {
    assert!(!xs.is_empty() && xs.len() <= MAX_SPMM_BATCH, "batch size");
    assert_eq!(xs.len(), ys.len(), "one output per input vector");
    for x in xs {
        assert_eq!(x.len(), m.ncols, "input vector length mismatch");
    }
    for y in ys {
        assert_eq!(y.len(), m.nrows, "output vector length mismatch");
    }
    let k = xs.len();
    let grid = Grid::warp_per_item(m.nrows, threads_per_block);
    let nrows = m.nrows;

    gpu.launch(grid, |w| {
        let row = w.warp_id();
        if row >= nrows {
            return;
        }
        let start = w.load_scalar(&m.row_ptr, row) as usize;
        let end = w.load_scalar(&m.row_ptr, row + 1) as usize;

        let mut lanes = [[X::default(); WARP_SIZE]; MAX_SPMM_BATCH];
        let mut idxs = [0usize; WARP_SIZE];
        let mut gathered = [X::default(); WARP_SIZE];

        let mut j = start;
        while j < end {
            let n = (end - j).min(WARP_SIZE);
            let cols = w.load_span(&m.col_idx, j..j + n);
            let vals = w.load_span(&m.values, j..j + n);
            for kk in 0..n {
                idxs[kk] = cols[kk].to_usize();
            }
            for (v, x) in xs.iter().enumerate() {
                w.load_gather(x, &idxs[..n], &mut gathered);
                for kk in 0..n {
                    lanes[v][kk] = lanes[v][kk] + X::from_f64(vals[kk].to_f64()) * gathered[kk];
                }
            }
            w.add_flops(2 * n as u64 * k as u64);
            j += n;
        }

        for (v, y) in ys.iter().enumerate() {
            let sum = w.reduce_sum(&mut lanes[v]);
            w.store_scalar(y, row, sum);
        }
    })
}

/// Host-side reference of the exact arithmetic the kernel performs —
/// same lane partitioning, same reduction tree — used by the
/// bitwise-reproducibility tests.
#[allow(clippy::needless_range_loop)] // mirrors the kernel's lane loop
pub fn vector_csr_reference<V: DoseScalar, I: ColIndex, X: VecScalar>(
    m: &Csr<V, I>,
    x: &[X],
) -> Vec<X> {
    let mut y = vec![X::default(); m.nrows()];
    for row in 0..m.nrows() {
        let (cols, vals) = m.row(row);
        let mut lanes = [X::default(); WARP_SIZE];
        for (k, (c, v)) in cols.iter().zip(vals.iter()).enumerate() {
            let lane = k % WARP_SIZE;
            lanes[lane] = lanes[lane] + X::from_f64(v.to_f64()) * x[c.to_usize()];
        }
        let mut offset = WARP_SIZE / 2;
        while offset > 0 {
            for i in 0..offset {
                lanes[i] = lanes[i] + lanes[i + offset];
            }
            offset /= 2;
        }
        y[row] = lanes[0];
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};

    fn random_csr(nrows: usize, ncols: usize, avg_row: usize, seed: u64) -> Csr<f64, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    return Vec::new(); // empty rows, like the real matrices
                }
                let len = rng.gen_range(1..=2 * avg_row);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    #[test]
    fn matches_reference_spmv_half_double() {
        let m64 = random_csr(300, 64, 40, 1);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();

        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(300);
        let stats = vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);

        let mut want = vec![0.0; 300];
        m.spmv_ref(&x, &mut want).unwrap();
        let got = dy.to_vec();
        for (g, w) in got.iter().zip(want.iter()) {
            // Same values summed in different order: tolerance only.
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
        assert_eq!(stats.flops, 2 * m.nnz() as u64);
    }

    #[test]
    fn bitwise_reproducible_across_runs_and_modes() {
        let m64 = random_csr(200, 128, 60, 2);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..128).map(|i| 1.0 / (i + 1) as f64).collect();

        let run = |mode| {
            let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(200);
            vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);
            dy.to_vec()
        };
        let a = run(ExecMode::Parallel);
        let b = run(ExecMode::Parallel);
        let c = run(ExecMode::Sequential);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "parallel runs must agree bitwise");
        assert_eq!(
            bits(&a),
            bits(&c),
            "parallel vs sequential must agree bitwise"
        );

        // And they match the documented lane/tree arithmetic exactly.
        let want = vector_csr_reference(&m, &x);
        assert_eq!(bits(&a), bits(&want));
    }

    #[test]
    fn single_precision_variant() {
        let m64 = random_csr(150, 80, 30, 3);
        let m32: Csr<f32, u32> = m64.convert_values();
        let x: Vec<f32> = (0..80).map(|i| (i as f32 * 0.1).cos()).collect();

        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m32);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f32>(150);
        vector_csr_spmv(&gpu, &gm, &dx, &dy, 256);

        let want = vector_csr_reference(&m32, &x);
        let got = dy.to_vec();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn u16_indices_work() {
        let m64 = random_csr(100, 50, 20, 4);
        let m: Csr<F16, u16> = m64.convert_values().convert_indices().unwrap();
        let x: Vec<f64> = vec![1.0; 50];
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(100);
        let stats16 = vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);

        // Compare traffic against u32 indices: strictly less.
        let m32: Csr<F16, u32> = m64.convert_values();
        let gpu2 = Gpu::new(DeviceSpec::a100());
        let gm32 = GpuCsrMatrix::upload(&gpu2, &m32);
        let dx2 = gpu2.upload(&x);
        let dy2 = gpu2.alloc_out::<f64>(100);
        let stats32 = vector_csr_spmv(&gpu2, &gm32, &dx2, &dy2, 512);

        assert!(stats16.dram_read_bytes < stats32.dram_read_bytes);
        // Same numeric results.
        assert_eq!(dy.to_vec(), dy2.to_vec());
    }

    #[test]
    fn spmm_batch_matches_single_vector_bitwise() {
        let m64 = random_csr(250, 96, 50, 9);
        let m: Csr<F16, u32> = m64.convert_values();
        let vectors: Vec<Vec<f64>> = (0..5)
            .map(|v| {
                (0..96)
                    .map(|i| ((v * 96 + i) as f64 * 0.21).sin())
                    .collect()
            })
            .collect();

        // Batched launch.
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dxs: Vec<_> = vectors.iter().map(|x| gpu.upload(x)).collect();
        let dys: Vec<_> = (0..5).map(|_| gpu.alloc_out::<f64>(250)).collect();
        let xrefs: Vec<&DeviceBuffer<f64>> = dxs.iter().collect();
        let yrefs: Vec<&DeviceOutBuffer<f64>> = dys.iter().collect();
        let stats = vector_csr_spmm(&gpu, &gm, &xrefs, &yrefs, 512);
        assert_eq!(stats.flops, 2 * m.nnz() as u64 * 5);

        // Each output must be bitwise identical to an unbatched launch.
        for (v, x) in vectors.iter().enumerate() {
            let gpu1 = Gpu::new(DeviceSpec::a100());
            let gm1 = GpuCsrMatrix::upload(&gpu1, &m);
            let dx = gpu1.upload(x);
            let dy = gpu1.alloc_out::<f64>(250);
            vector_csr_spmv(&gpu1, &gm1, &dx, &dy, 512);
            let single = dy.to_vec();
            let batched = dys[v].to_vec();
            assert_eq!(
                batched.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "vector {v} must not depend on batching"
            );
        }
    }

    #[test]
    fn spmm_saves_matrix_traffic() {
        // A batch of k vectors must move far fewer matrix bytes than k
        // single launches: the spans are loaded once per row.
        let m64 = random_csr(2000, 200, 120, 10);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = vec![1.0; 200];

        let single = {
            let gpu = Gpu::with_mode(DeviceSpec::a100().scaled_l2(1000.0), ExecMode::Sequential);
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(2000);
            vector_csr_spmv(&gpu, &gm, &dx, &dy, 512)
        };
        let batched = {
            let gpu = Gpu::with_mode(DeviceSpec::a100().scaled_l2(1000.0), ExecMode::Sequential);
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dxs: Vec<_> = (0..4).map(|_| gpu.upload(&x)).collect();
            let dys: Vec<_> = (0..4).map(|_| gpu.alloc_out::<f64>(2000)).collect();
            let xr: Vec<&DeviceBuffer<f64>> = dxs.iter().collect();
            let yr: Vec<&DeviceOutBuffer<f64>> = dys.iter().collect();
            vector_csr_spmm(&gpu, &gm, &xr, &yr, 512)
        };
        // 4 single launches would read ~4x the matrix; the batch must
        // stay well under 2x one launch's DRAM reads.
        assert!(
            batched.dram_read_bytes < single.dram_read_bytes * 2,
            "batched {} vs single {}",
            batched.dram_read_bytes,
            single.dram_read_bytes
        );
    }

    #[test]
    fn empty_rows_store_zero() {
        let m: Csr<F16, u32> = Csr::from_rows(4, &[vec![], vec![(0, 1.0)], vec![]])
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&[2.0f64; 4]);
        let dy = gpu.alloc_out::<f64>(3);
        // Pre-fill with garbage to prove the kernel writes every row.
        dy.set(0, 99.0);
        dy.set(2, 99.0);
        vector_csr_spmv(&gpu, &gm, &dx, &dy, 128);
        assert_eq!(dy.to_vec(), vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn per_buffer_traffic_matches_paper_decomposition() {
        // The §V model, component by component: 2B/nnz values, 4B/nnz
        // indices, 4B/row pointers, 8B/row output write, 8B/col input.
        let m64 = random_csr(3000, 400, 150, 6);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = vec![1.0; 400];
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload_named(&gpu, &m);
        let dx = gpu.upload_named("x", &x);
        let dy = gpu.alloc_out_named::<f64>("y", 3000);
        vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);

        let report = gpu.traffic_report();
        let by = |name: &str| report.iter().find(|b| b.name == name).unwrap();
        let nnz = m.nnz() as f64;
        let nr = m.nrows() as f64;

        // Values: 2 bytes per nnz, streamed from DRAM.
        let value_bytes = by("values").dram_read_bytes() as f64;
        assert!(
            (value_bytes / (2.0 * nnz) - 1.0).abs() < 0.25,
            "values {value_bytes}"
        );
        // Indices: 4 bytes per nnz.
        let idx_bytes = by("col_idx").dram_read_bytes() as f64;
        assert!(
            (idx_bytes / (4.0 * nnz) - 1.0).abs() < 0.25,
            "indices {idx_bytes}"
        );
        // Row pointers: ~4 bytes per row.
        let ptr_bytes = by("row_ptr").dram_read_bytes() as f64;
        assert!(
            (ptr_bytes / (4.0 * nr) - 1.0).abs() < 0.5,
            "row_ptr {ptr_bytes}"
        );
        // Output: one store transaction per row (the DRAM-side cost is
        // the write-back flush, counted globally: ~8 bytes per row after
        // four row-stores merge per 32-byte sector).
        let y_sectors = by("y").write_sectors as f64;
        assert_eq!(y_sectors, nr, "y {y_sectors}");
        // Input vector: read mostly from cache after first touch; its
        // DRAM traffic is at most a few times its size.
        let x_dram = by("x").dram_read_bytes() as f64;
        assert!(x_dram <= 4.0 * 8.0 * 400.0, "x dram {x_dram}");
    }

    #[test]
    fn dram_traffic_close_to_paper_model() {
        // The paper's Half/double traffic model: 6*nnz + 12*nr + 8*nc
        // (§V), assuming the input vector is L2-resident.
        let m64 = random_csr(2000, 300, 200, 5);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = vec![1.0; 300];
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(2000);
        let stats = vector_csr_spmv(&gpu, &gm, &dx, &dy, 512);

        let model = (6 * m.nnz() + 12 * m.nrows() + 8 * m.ncols()) as u64;
        let measured = stats.dram_total_bytes();
        let ratio = measured as f64 / model as f64;
        assert!(
            (0.85..1.35).contains(&ratio),
            "measured {measured} vs model {model} (ratio {ratio})"
        );
    }
}
