//! Break-even shard-count model for placed (replicated × sharded) plans.
//!
//! Sharding one dose request across `K` devices divides the streaming
//! traffic — the quantity that bounds SpMV — but buys three overheads
//! that do *not* shrink with `K`:
//!
//! 1. **Fan-out dispatch**: the dispatching worker enqueues `K` shard
//!    sub-tasks back-to-back, a serial `(K-1) · launch_overhead` term.
//! 2. **Per-shard launch**: every home device pays its own kernel launch
//!    overhead before touching a byte.
//! 3. **Result gather**: each shard's non-empty-row partials cross the
//!    interconnect to the merged dose vector
//!    ([`rt_gpusim::gather_estimate`]).
//!
//! For a small plan (the paper's prostate case streams in well under the
//! launch overhead) the overheads dominate instantly, so the right answer
//! is `K = 1`; for an 800k-row liver beam the traffic term dominates and
//! a pool-wide split wins. [`choose_shard_count`] evaluates the modeled
//! completion time at every candidate `K` and returns the full evidence
//! table, so reports can show *why* a width was picked — the same
//! philosophy as [`crate::KernelSelect`]'s candidate tables.
//!
//! The model assumes **throughput-weighted cuts**
//! ([`rt_sparse::ShardPlan::build_weighted`]): shard `i` gets an nnz
//! share proportional to its home device's
//! [`DeviceSpec::effective_dram_bw`], so every shard finishes its compute
//! at the same modeled time `work · w_ref / Σw` (the reference device's
//! whole-matrix time scaled by its share of the pooled bandwidth). That
//! closed form is what makes the sweep cheap: no per-`K` re-sharding, one
//! arithmetic pass per candidate.

use rt_gpusim::{gather_estimate, DeviceSpec};

/// One row of the break-even evidence table: the modeled completion time
/// of a single request at shard count `k`.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakEvenPoint {
    pub k: usize,
    /// Modeled seconds: fan-out dispatch + the slowest home device's
    /// (launches + equalized compute + gather) total.
    pub modeled_seconds: f64,
}

/// Outcome of a break-even sweep: the chosen shard count plus the full
/// candidate table (reported in `EngineReport.plans[].placement`).
///
/// The sweep is cheap enough to re-run live: when a device is drained
/// (or undrained) the engine re-deals replica groups over the surviving
/// members and calls [`choose_shard_count`] again with each shrunken
/// group's specs, so `K` is re-chosen against the pool that will
/// actually serve — a group that loses its slow member may shrink to
/// `K = 1` while the whole pool would have picked `K = 2`.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardBreakEven {
    /// The chosen shard count (smallest `k` at the minimum).
    pub k: usize,
    pub candidates: Vec<BreakEvenPoint>,
}

impl ShardBreakEven {
    /// The modeled completion time at candidate shard count `k`, if it
    /// was swept. Used by benchmarks to compare specific layouts
    /// without re-deriving the table.
    pub fn seconds_at(&self, k: usize) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.k == k)
            .map(|c| c.modeled_seconds)
    }
}

/// Aggregate modeled throughput (requests/second) of a set of replica
/// groups, each characterized by its per-request completion time in
/// seconds: groups serve independently, so pool throughput is the sum
/// of `1 / t_g`. Non-positive or non-finite group times contribute
/// nothing (a dead group serves no traffic).
///
/// This is the figure the simspeed `rebalance` suite compares before
/// and after a drain: losing a device degrades the group it lived in,
/// while a re-deal spreads the loss across the surviving pool.
pub fn modeled_pool_throughput(group_seconds: &[f64]) -> f64 {
    group_seconds
        .iter()
        .filter(|&&t| t.is_finite() && t > 0.0)
        .map(|&t| 1.0 / t)
        .sum()
}

/// Analytic lower-bound estimate of one whole-matrix SpMV on `spec`,
/// used as the break-even `whole_seconds` input when no measured probe
/// is available: compulsory traffic (row pointers + matrix entries +
/// input vector + result writes) over sustainable bandwidth, plus one
/// launch overhead. Deliberately ignores cache reuse and per-warp
/// scheduling — ranking candidate shard counts only needs the traffic
/// term to scale correctly with the matrix.
pub fn modeled_whole_seconds(
    spec: &DeviceSpec,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    value_bytes: usize,
    index_bytes: usize,
) -> f64 {
    let traffic = 4.0 * (nrows as f64 + 1.0)            // row_ptr
        + nnz as f64 * (value_bytes + index_bytes) as f64 // matrix entries
        + 8.0 * ncols as f64                              // input vector
        + 8.0 * nrows as f64; // result writes
    spec.launch_overhead_s + traffic / spec.effective_dram_bw()
}

/// Sweeps shard counts `1..=max_k` for a request served by `devices`
/// (shard `i` homes on `devices[i % devices.len()]`, the fastest device
/// first — the order a replica group lists its members) and returns the
/// break-even choice.
///
/// * `whole_seconds` — modeled time of the *whole* matrix on
///   `devices[0]`, either a measured-probe figure or
///   [`modeled_whole_seconds`].
/// * `nonempty_rows` — rows that actually cross the interconnect at
///   gather time (`8` bytes each).
///
/// When `k` exceeds the device count, extra shards stack round-robin and
/// the model charges the stacked device for each of its shards
/// back-to-back — so oversharding a small group is correctly penalized,
/// never rewarded.
///
/// # Panics
/// Panics if `devices` is empty.
pub fn choose_shard_count(
    devices: &[DeviceSpec],
    whole_seconds: f64,
    nonempty_rows: usize,
    max_k: usize,
) -> ShardBreakEven {
    assert!(!devices.is_empty(), "break-even sweep needs >= 1 device");
    let max_k = max_k.max(1);
    let n = devices.len();
    let reference = &devices[0];
    let w_ref = reference.effective_dram_bw();
    let work = (whole_seconds - reference.launch_overhead_s).max(0.0);
    let total_gather_bytes = nonempty_rows as f64 * 8.0;

    let mut candidates = Vec::with_capacity(max_k);
    let mut best = (0usize, f64::INFINITY);
    for k in 1..=max_k {
        let weights: Vec<f64> = (0..k).map(|i| devices[i % n].effective_dram_bw()).collect();
        let sum_w: f64 = weights.iter().sum();
        // Weighted cuts equalize compute: every shard streams for
        // `work * w_ref / sum_w` modeled seconds.
        let compute = work * w_ref / sum_w;
        let mut slowest = 0.0f64;
        for (d, dev) in devices.iter().enumerate().take(n.min(k)) {
            let mut t = 0.0;
            for i in (d..k).step_by(n) {
                let bytes = (total_gather_bytes * weights[i] / sum_w).ceil() as u64;
                t += dev.launch_overhead_s + compute + gather_estimate(dev, bytes);
            }
            slowest = slowest.max(t);
        }
        let fan = (k - 1) as f64 * reference.launch_overhead_s;
        let modeled_seconds = fan + slowest;
        candidates.push(BreakEvenPoint { k, modeled_seconds });
        if modeled_seconds < best.1 {
            best = (k, modeled_seconds);
        }
    }
    ShardBreakEven {
        k: best.0,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_plan_stays_unsharded() {
        // Work far below the launch overhead: every extra shard is pure
        // overhead, even on a homogeneous pool.
        let pool = vec![DeviceSpec::a100(); 4];
        let be = choose_shard_count(&pool, 4e-6, 200, 4);
        assert_eq!(be.k, 1);
        assert_eq!(be.candidates.len(), 4);
        assert!(be.candidates[0].modeled_seconds < be.candidates[1].modeled_seconds);
    }

    #[test]
    fn large_plan_takes_the_whole_homogeneous_pool() {
        // 10 ms of streaming vs microseconds of overhead.
        let pool = vec![DeviceSpec::a100(); 4];
        let be = choose_shard_count(&pool, 10e-3, 500_000, 4);
        assert_eq!(be.k, 4);
        // The table is monotone decreasing in this regime.
        for pair in be.candidates.windows(2) {
            assert!(pair[1].modeled_seconds < pair[0].modeled_seconds);
        }
    }

    #[test]
    fn mixed_pool_finds_an_interior_optimum() {
        // One fast card plus three slow ones, sized so the third P100's
        // bandwidth no longer pays for another fan-out launch.
        let pool = vec![
            DeviceSpec::a100(),
            DeviceSpec::p100(),
            DeviceSpec::p100(),
            DeviceSpec::p100(),
        ];
        let be = choose_shard_count(&pool, 33e-6, 12_000, 4);
        assert_eq!(be.k, 3, "table: {:?}", be.candidates);
    }

    #[test]
    fn oversharding_one_device_never_wins() {
        let pool = vec![DeviceSpec::a100()];
        let be = choose_shard_count(&pool, 5e-3, 100_000, 6);
        assert_eq!(be.k, 1);
        // Stacked shards pay their launches back-to-back.
        for pair in be.candidates.windows(2) {
            assert!(pair[1].modeled_seconds > pair[0].modeled_seconds);
        }
    }

    #[test]
    fn pool_throughput_sums_group_rates_and_skips_dead_groups() {
        let healthy = modeled_pool_throughput(&[2e-3, 4e-3]);
        assert!((healthy - (500.0 + 250.0)).abs() < 1e-9);
        // A drained group (infinite / zero time) serves nothing.
        let degraded = modeled_pool_throughput(&[2e-3, f64::INFINITY]);
        assert!((degraded - 500.0).abs() < 1e-9);
        assert_eq!(modeled_pool_throughput(&[]), 0.0);
    }

    #[test]
    fn seconds_at_reads_the_candidate_table() {
        let pool = vec![DeviceSpec::a100(); 4];
        let be = choose_shard_count(&pool, 10e-3, 500_000, 4);
        assert_eq!(be.seconds_at(1), Some(be.candidates[0].modeled_seconds));
        assert_eq!(be.seconds_at(4), Some(be.candidates[3].modeled_seconds));
        assert_eq!(be.seconds_at(9), None);
    }

    #[test]
    fn analytic_estimate_scales_with_matrix_and_device() {
        let a = modeled_whole_seconds(&DeviceSpec::a100(), 1000, 100, 50_000, 2, 4);
        let bigger = modeled_whole_seconds(&DeviceSpec::a100(), 1000, 100, 500_000, 2, 4);
        let slower = modeled_whole_seconds(&DeviceSpec::p100(), 1000, 100, 50_000, 2, 4);
        assert!(a > 0.0);
        assert!(bigger > a);
        assert!(slower > a);
    }
}
