//! Bucketed row-partition SpMV: empty-row elimination and per-bucket
//! tile-width dispatch.
//!
//! The tiled kernels of [`crate::tiled`] still schedule a tile for every
//! row — ~70% of which are empty in the paper's matrices — and pick one
//! tile width for the whole matrix. This module drives the sub-warp
//! kernels through a [`rt_sparse::RowPlan`] instead: empty rows
//! are never scheduled (the output is zero-filled by a dedicated streaming
//! member), and each length bucket launches at its own width through
//! [`Gpu::launch_group`], back-to-back on the same sim state.
//!
//! **Reproducibility contract.** For a row of length `l` processed at
//! width `w`, the lane partitioning (`k % w` accumulation order) and the
//! truncated halving reduction tree are pure functions of `(l, w)` — the
//! bucketed kernel executes the *byte-identical* per-row arithmetic of
//! [`vector_csr_spmv_tiled`](crate::vector_csr_spmv_tiled) at the same
//! width; only *which* tile visits the row changes. So for any
//! [`BucketWidths`] assignment, bucketed results are bitwise identical to
//! a whole-matrix tiled launch whose width matches each row's bucket —
//! and a uniform assignment is bitwise identical to the fixed-width
//! kernel at that width (width 32: to the classic kernel). Empty rows are
//! zero-filled exactly as the fixed-width kernels store their empty-row
//! sums (`+0.0`).
//!
//! Empty-row elimination is traffic-free by construction: an empty row in
//! the fixed-width kernel loads two row pointers and stores one zero; the
//! bucketed dispatch never touches its pointers and the zero-fill member
//! writes the same zero in a fully coalesced stream.

use crate::vector_csr::{GpuCsrMatrix, VecScalar, MAX_SPMM_BATCH};
use rt_f16::DoseScalar;
use rt_gpusim::{
    BucketReport, DeviceBuffer, DeviceOutBuffer, DeviceSpec, Gpu, Grid, GroupMember, GroupReport,
    GroupStats, KernelProfile, WarpCtx, TILE_WIDTHS, WARP_SIZE,
};
use rt_sparse::{bucket_index_for_len, ColIndex, Csr, RowPlan, NUM_ROW_BUCKETS};
use std::sync::Arc;

/// Output elements each warp of the zero-fill member clears: large enough
/// that the member adds only `ceil(nrows / 256)` warps to the group (vs
/// the `nrows * w / 32` warps a fixed-width launch spends visiting every
/// row), small enough to spread blocks across SMs.
const ZERO_STRIP: usize = 256;

/// Per-bucket tile widths for a bucketed dispatch, indexed by
/// [`ROW_BUCKET_BOUNDS`](rt_sparse::ROW_BUCKET_BOUNDS) position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketWidths(pub [u32; NUM_ROW_BUCKETS]);

impl BucketWidths {
    /// The natural assignment: the narrowest width covering each bucket's
    /// longest row in one pass — `[2, 4, 8, 16, 32, 32]`.
    pub fn natural() -> Self {
        BucketWidths([2, 4, 8, 16, 32, 32])
    }

    /// Same width for every bucket (for bitwise comparison against the
    /// fixed-width kernels).
    pub fn uniform(width: u32) -> Self {
        BucketWidths([width; NUM_ROW_BUCKETS])
    }

    /// True when every width is a supported tile width.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|w| TILE_WIDTHS.contains(w))
    }

    fn assert_valid(&self) {
        assert!(
            self.is_valid(),
            "bucket widths must each be one of {TILE_WIDTHS:?}, got {:?}",
            self.0
        );
    }
}

impl Default for BucketWidths {
    fn default() -> Self {
        BucketWidths::natural()
    }
}

/// Human-readable label of a bucket's length range (`"rows 1-2"`,
/// `"rows 33+"`), used as the group-member label.
pub fn bucket_label(min_len: u32, max_len: u32) -> String {
    if max_len == u32::MAX {
        format!("rows {min_len}+")
    } else {
        format!("rows {min_len}-{max_len}")
    }
}

/// A [`RowPlan`] with its per-bucket row-index arrays uploaded to a
/// device: built once per (matrix, device), reused by every bucketed
/// launch — exactly like [`GpuCsrMatrix`] for the matrix itself.
pub struct GpuRowPlan {
    plan: Arc<RowPlan>,
    /// One device buffer per non-empty bucket, `None` for empty buckets.
    rows: Vec<Option<DeviceBuffer<u32>>>,
}

impl GpuRowPlan {
    /// Uploads the plan's per-bucket row-index arrays.
    pub fn upload(gpu: &Gpu, plan: Arc<RowPlan>) -> Self {
        let rows = plan
            .buckets()
            .iter()
            .map(|b| {
                if b.is_empty() {
                    None
                } else {
                    Some(gpu.upload(&b.rows))
                }
            })
            .collect();
        GpuRowPlan { plan, rows }
    }

    /// The host-side plan.
    pub fn plan(&self) -> &Arc<RowPlan> {
        &self.plan
    }

    /// Number of group members a bucketed launch will run: the zero-fill
    /// member plus one per non-empty bucket.
    pub fn member_count(&self) -> usize {
        1 + self.rows.iter().filter(|r| r.is_some()).count()
    }
}

/// Builds the zero-fill group member: a coalesced streaming store of
/// zeros over every output vector, [`ZERO_STRIP`] elements per warp.
/// Runs first so bucket members' scattered row sums land on cleared
/// memory; empty rows keep exactly the `0.0` the fixed-width kernels
/// store for them.
fn zero_fill_member<'a, X: VecScalar>(
    ys: Vec<&'a DeviceOutBuffer<X>>,
    nrows: usize,
    threads_per_block: u32,
) -> GroupMember<'a> {
    let strips = nrows.div_ceil(ZERO_STRIP).max(1);
    let grid = Grid::warp_per_item(strips, threads_per_block);
    GroupMember::new("zero_fill", grid, WARP_SIZE as u32, move |w| {
        let start = w.warp_id() * ZERO_STRIP;
        if start >= nrows {
            return;
        }
        let count = ZERO_STRIP.min(nrows - start);
        let zeros = [X::default(); WARP_SIZE];
        for y in &ys {
            let mut off = 0;
            while off < count {
                let chunk = (count - off).min(WARP_SIZE);
                w.store_span(y, start + off, &zeros[..chunk]);
                off += chunk;
            }
        }
    })
}

/// The per-bucket kernel body: identical per-row arithmetic to
/// [`vector_csr_spmv_tiled`](crate::vector_csr_spmv_tiled) (same chunked
/// span loads, same gather, same truncated reduction tree), except rows
/// are taken from the bucket's row-index array and sums scatter to their
/// original positions.
fn bucket_body<V: DoseScalar, I: ColIndex, X: VecScalar>(
    w: &mut WarpCtx,
    m: &GpuCsrMatrix<V, I>,
    rows_buf: &DeviceBuffer<u32>,
    n_bucket_rows: usize,
    tw: usize,
    xs: &[&DeviceBuffer<X>],
    ys: &[&DeviceOutBuffer<X>],
) {
    let k = xs.len();
    let base = w.tile_base();
    if base >= n_bucket_rows {
        return;
    }
    let rows_here = (w.tiles_per_warp() as usize).min(n_bucket_rows - base);
    // One coalesced read of the warp's row indices, then two warp-wide
    // gathers for the row-pointer pairs (the indices are not contiguous,
    // so span loads cannot be used — this is the partition's only extra
    // traffic, and it replaces the fixed-width kernel's pointer span).
    let rids = w.load_span(rows_buf, base..base + rows_here);
    let rids: [u32; WARP_SIZE] = {
        let mut a = [0u32; WARP_SIZE];
        a[..rows_here].copy_from_slice(rids);
        a
    };
    let mut idxs = [0usize; WARP_SIZE];
    let mut starts = [0u32; WARP_SIZE];
    let mut ends = [0u32; WARP_SIZE];
    for t in 0..rows_here {
        idxs[t] = rids[t] as usize;
    }
    w.load_gather(m.row_ptr(), &idxs[..rows_here], &mut starts);
    for t in 0..rows_here {
        idxs[t] = rids[t] as usize + 1;
    }
    w.load_gather(m.row_ptr(), &idxs[..rows_here], &mut ends);

    let mut lanes = [[X::default(); WARP_SIZE]; MAX_SPMM_BATCH];
    let mut gathered = [X::default(); WARP_SIZE];
    let mut sums = [[X::default(); WARP_SIZE]; MAX_SPMM_BATCH];

    for t in 0..rows_here {
        let start = starts[t] as usize;
        let end = ends[t] as usize;
        for l in lanes.iter_mut().take(k) {
            l[..tw].fill(X::default());
        }

        let mut j = start;
        while j < end {
            let n = (end - j).min(tw);
            let cols = w.load_span(m.col_idx(), j..j + n);
            let vals = w.load_span(m.values(), j..j + n);
            for kk in 0..n {
                idxs[kk] = cols[kk].to_usize();
            }
            for (v, x) in xs.iter().enumerate() {
                w.load_gather(x, &idxs[..n], &mut gathered);
                for kk in 0..n {
                    lanes[v][kk] = lanes[v][kk] + X::from_f64(vals[kk].to_f64()) * gathered[kk];
                }
            }
            w.add_flops(2 * n as u64 * k as u64);
            j += n;
        }

        for v in 0..k {
            sums[v][t] = w.reduce_sum_tile(&mut lanes[v][..tw]);
        }
    }

    // Scatter each row sum back to its original position.
    for t in 0..rows_here {
        for (v, y) in ys.iter().enumerate() {
            w.store_scalar(y, rids[t] as usize, sums[v][t]);
        }
    }
}

fn bucketed_members<'a, V: DoseScalar, I: ColIndex, X: VecScalar>(
    m: &'a GpuCsrMatrix<V, I>,
    xs: Vec<&'a DeviceBuffer<X>>,
    ys: Vec<&'a DeviceOutBuffer<X>>,
    threads_per_block: u32,
    gplan: &'a GpuRowPlan,
    widths: BucketWidths,
) -> Vec<GroupMember<'a>> {
    widths.assert_valid();
    assert_eq!(
        gplan.plan.nrows(),
        m.nrows(),
        "row plan was built for a different matrix"
    );
    assert_eq!(
        gplan.plan.nnz(),
        m.row_ptr().as_slice().last().map_or(0, |&e| e as usize),
        "row plan was built for a different matrix"
    );
    assert!(!xs.is_empty() && xs.len() <= MAX_SPMM_BATCH, "batch size");
    assert_eq!(xs.len(), ys.len(), "one output per input vector");
    for x in &xs {
        assert_eq!(x.len(), m.ncols(), "input vector length mismatch");
    }
    for y in &ys {
        assert_eq!(y.len(), m.nrows(), "output vector length mismatch");
    }

    let mut members = Vec::with_capacity(gplan.member_count());
    members.push(zero_fill_member(ys.clone(), m.nrows(), threads_per_block));
    for (i, bucket) in gplan.plan.buckets().iter().enumerate() {
        let Some(rows_buf) = &gplan.rows[i] else {
            continue;
        };
        let width = widths.0[i];
        let n = bucket.len();
        let grid = Grid::tile_per_item(n, width, threads_per_block);
        let xs = xs.clone();
        let ys = ys.clone();
        members.push(GroupMember::new(
            bucket_label(bucket.min_len, bucket.max_len),
            grid,
            width,
            move |w| bucket_body(w, m, rows_buf, n, width as usize, &xs, &ys),
        ));
    }
    members
}

/// Bucketed `y = A x`: zero-fills `y` deterministically, then launches
/// one width-matched tiled kernel per non-empty row bucket through
/// [`Gpu::launch_group`]. Returns the merged group counters with the
/// per-bucket breakdown.
///
/// Bitwise identical to [`vector_csr_spmv_tiled`](crate::vector_csr_spmv_tiled)
/// row-for-row at each row's bucket width (see the module docs).
pub fn vector_csr_spmv_bucketed<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
    threads_per_block: u32,
    gplan: &GpuRowPlan,
    widths: BucketWidths,
) -> GroupStats {
    let members = bucketed_members(m, vec![x], vec![y], threads_per_block, gplan, widths);
    gpu.launch_group(members)
}

/// Multi-vector (SpMM-style) bucketed dispatch: `ys[v] = A xs[v]` for
/// every `v`, sharing the matrix spans across vectors within each bucket
/// member exactly like [`vector_csr_spmm_tiled`](crate::vector_csr_spmm_tiled).
/// Per-vector arithmetic is identical to an unbatched
/// [`vector_csr_spmv_bucketed`] launch with the same widths.
pub fn vector_csr_spmm_bucketed<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    xs: &[&DeviceBuffer<X>],
    ys: &[&DeviceOutBuffer<X>],
    threads_per_block: u32,
    gplan: &GpuRowPlan,
    widths: BucketWidths,
) -> GroupStats {
    let members = bucketed_members(
        m,
        xs.to_vec(),
        ys.to_vec(),
        threads_per_block,
        gplan,
        widths,
    );
    gpu.launch_group(members)
}

/// Bucketed back-projection `g = A^T r`, dispatched over a [`RowPlan`]
/// of the **transpose** (beamlet rows: empty beamlets dropped,
/// length-bucketed, width-matched per bucket). The kernels are the same
/// direction-agnostic bucket members as [`vector_csr_spmv_bucketed`] —
/// `t` must be the uploaded transpose and `gplan` its row plan, so the
/// name records which direction the partition describes.
///
/// Bitwise identical per beamlet-row to the fixed-width tiled kernel at
/// the row's bucket width, for any worker count or execution mode.
pub fn gradient_csr_spmv_bucketed<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    t: &GpuCsrMatrix<V, I>,
    r: &DeviceBuffer<X>,
    g: &DeviceOutBuffer<X>,
    threads_per_block: u32,
    gplan: &GpuRowPlan,
    widths: BucketWidths,
) -> GroupStats {
    vector_csr_spmv_bucketed(gpu, t, r, g, threads_per_block, gplan, widths)
}

/// Multi-residual bucketed back-projection: `gs[v] = A^T rs[v]` for
/// every `v`, the gradient-direction counterpart of
/// [`vector_csr_spmm_bucketed`]. Per-vector arithmetic is identical to
/// an unbatched [`gradient_csr_spmv_bucketed`] launch with the same
/// widths.
pub fn gradient_csr_spmm_bucketed<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    t: &GpuCsrMatrix<V, I>,
    rs: &[&DeviceBuffer<X>],
    gs: &[&DeviceOutBuffer<X>],
    threads_per_block: u32,
    gplan: &GpuRowPlan,
    widths: BucketWidths,
) -> GroupStats {
    vector_csr_spmm_bucketed(gpu, t, rs, gs, threads_per_block, gplan, widths)
}

/// Host-side reference of the exact arithmetic the bucketed dispatch
/// performs: each row is reduced with the truncated halving tree of its
/// bucket's width, empty rows are zero. Mirrors
/// [`vector_csr_tiled_reference`](crate::vector_csr_tiled_reference)
/// per row.
#[allow(clippy::needless_range_loop)] // mirrors the kernel's lane loop
pub fn vector_csr_bucketed_reference<V: DoseScalar, I: ColIndex, X: VecScalar>(
    m: &Csr<V, I>,
    x: &[X],
    widths: BucketWidths,
) -> Vec<X> {
    widths.assert_valid();
    let mut y = vec![X::default(); m.nrows()];
    for row in 0..m.nrows() {
        let (cols, vals) = m.row(row);
        if cols.is_empty() {
            continue; // zero-filled
        }
        let tw = widths.0[bucket_index_for_len(cols.len() as u32)] as usize;
        let mut lanes = vec![X::default(); tw];
        for (k, (c, v)) in cols.iter().zip(vals.iter()).enumerate() {
            let lane = k % tw;
            lanes[lane] = lanes[lane] + X::from_f64(v.to_f64()) * x[c.to_usize()];
        }
        let mut offset = tw / 2;
        while offset > 0 {
            for i in 0..offset {
                lanes[i] = lanes[i] + lanes[i + offset];
            }
            offset /= 2;
        }
        y[row] = lanes[0];
    }
    y
}

/// Assembles the fused [`GroupReport`] of a bucketed dispatch: merged
/// counters with a *single* launch-overhead charge (the members ran
/// back-to-back), plus the per-bucket breakdown — each member's own
/// counters, standalone time estimate, width, row count and true lane
/// occupancy (empty rows are eliminated, so no bucket ever reports a
/// padded-empty-row slot as occupied).
pub fn bucketed_group_report(
    spec: &DeviceSpec,
    profile: &KernelProfile,
    plan: &RowPlan,
    group: &GroupStats,
) -> GroupReport {
    let estimate = rt_gpusim::timing::estimate(spec, profile, &group.merged);
    let buckets = group
        .members
        .iter()
        .map(|member| {
            let (rows, lanes_active_frac) = if member.label == "zero_fill" {
                // A pure streaming store: every lane carries a value.
                (plan.nrows() as u64, 1.0)
            } else {
                let b = plan
                    .buckets()
                    .iter()
                    .find(|b| bucket_label(b.min_len, b.max_len) == member.label)
                    .expect("group member label matches no plan bucket");
                (b.len() as u64, b.lanes_active_frac(member.tile_width))
            };
            BucketReport {
                label: member.label.clone(),
                tile_width: member.tile_width,
                rows,
                lanes_active_frac,
                stats: member.stats.clone(),
                estimate: rt_gpusim::timing::estimate(spec, profile, &member.stats),
            }
        })
        .collect();
    GroupReport {
        kernel: profile.name.clone(),
        device: spec.name.to_string(),
        stats: group.merged.clone(),
        estimate,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiled::{vector_csr_spmv_tiled, vector_csr_tiled_reference};
    use crate::vector_csr::vector_csr_spmv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};

    fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<f64, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    return Vec::new();
                }
                let len = rng.gen_range(1..=max_row);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    fn bits(v: Vec<f64>) -> Vec<u64> {
        v.into_iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn natural_widths_match_bucketed_reference_bitwise() {
        let m64 = random_csr(500, 96, 60, 21);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.31).sin() + 1.1).collect();
        let plan = Arc::new(RowPlan::from_csr(&m));

        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(500);
        let group =
            vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 256, &gplan, BucketWidths::natural());
        assert_eq!(
            bits(dy.to_vec()),
            bits(vector_csr_bucketed_reference(
                &m,
                &x,
                BucketWidths::natural()
            ))
        );
        // Flops: 2 per nnz (zero-fill adds none).
        assert_eq!(group.merged.flops, 2 * m.nnz() as u64);
        assert_eq!(group.members[0].label, "zero_fill");
    }

    #[test]
    fn uniform_widths_are_bitwise_identical_to_fixed_width_kernels() {
        let m64 = random_csr(300, 80, 48, 22);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..80).map(|i| 1.0 / (i + 2) as f64).collect();
        let plan = Arc::new(RowPlan::from_csr(&m));
        for &w in &TILE_WIDTHS {
            let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let gplan = GpuRowPlan::upload(&gpu, plan.clone());
            let dx = gpu.upload(&x);
            let fixed = gpu.alloc_out::<f64>(300);
            let bucketed = gpu.alloc_out::<f64>(300);
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &fixed, 256, w);
            vector_csr_spmv_bucketed(
                &gpu,
                &gm,
                &dx,
                &bucketed,
                256,
                &gplan,
                BucketWidths::uniform(w),
            );
            assert_eq!(bits(fixed.to_vec()), bits(bucketed.to_vec()), "width {w}");
            // Width 32 uniform == classic kernel too.
            if w == 32 {
                let classic = gpu.alloc_out::<f64>(300);
                vector_csr_spmv(&gpu, &gm, &dx, &classic, 256);
                assert_eq!(bits(classic.to_vec()), bits(bucketed.to_vec()));
            }
        }
    }

    #[test]
    fn reference_rows_match_tiled_reference_per_bucket_width() {
        let m64 = random_csr(200, 64, 40, 23);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).cos()).collect();
        let widths = BucketWidths::natural();
        let want = vector_csr_bucketed_reference(&m, &x, widths);
        for row in 0..m.nrows() {
            let len = m.row_len(row);
            if len == 0 {
                assert_eq!(want[row], 0.0);
                continue;
            }
            let w = widths.0[bucket_index_for_len(len as u32)];
            let tiled = vector_csr_tiled_reference(&m, &x, w);
            assert_eq!(want[row].to_bits(), tiled[row].to_bits(), "row {row}");
        }
    }

    #[test]
    fn bucketed_schedules_fewer_warps_than_fixed_on_empty_heavy_matrix() {
        // 4096 rows, 87.5% empty, non-empty rows of length 1-2 — the
        // Table I shape the partition exists for.
        let rows: Vec<Vec<(usize, f64)>> = (0..4096)
            .map(|r| {
                if r % 8 != 0 {
                    Vec::new()
                } else if r % 16 == 0 {
                    vec![(r % 128, 1.5)]
                } else {
                    vec![(r % 128, 0.5), ((r + 7) % 128, 2.0)]
                }
            })
            .collect();
        let m: Csr<F16, u32> = Csr::from_rows(128, &rows)
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        let x = vec![1.0f64; 128];
        let plan = Arc::new(RowPlan::from_csr(&m));
        assert_eq!(plan.empty_rows(), 4096 - 512);

        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(4096);
        let group =
            vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 256, &gplan, BucketWidths::natural());

        let gpu2 = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm2 = GpuCsrMatrix::upload(&gpu2, &m);
        let dx2 = gpu2.upload(&x);
        let dy2 = gpu2.alloc_out::<f64>(4096);
        let fixed = vector_csr_spmv_tiled(&gpu2, &gm2, &dx2, &dy2, 256, 2);
        assert!(
            group.merged.warps < fixed.warps / 2,
            "bucketed {} vs fixed-w2 {}",
            group.merged.warps,
            fixed.warps
        );
        assert_eq!(bits(dy.to_vec()), bits(dy2.to_vec()));
    }

    #[test]
    fn spmm_bucketed_matches_spmv_bucketed_per_vector() {
        let m64 = random_csr(180, 64, 20, 25);
        let m: Csr<F16, u32> = m64.convert_values();
        let plan = Arc::new(RowPlan::from_csr(&m));
        let vectors: Vec<Vec<f64>> = (0..3)
            .map(|v| {
                (0..64)
                    .map(|i| ((v * 64 + i) as f64 * 0.13).sin())
                    .collect()
            })
            .collect();
        let widths = BucketWidths::natural();

        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan.clone());
        let dxs: Vec<_> = vectors.iter().map(|x| gpu.upload(x)).collect();
        let dys: Vec<_> = (0..3).map(|_| gpu.alloc_out::<f64>(180)).collect();
        let xr: Vec<&DeviceBuffer<f64>> = dxs.iter().collect();
        let yr: Vec<&DeviceOutBuffer<f64>> = dys.iter().collect();
        let group = vector_csr_spmm_bucketed(&gpu, &gm, &xr, &yr, 256, &gplan, widths);
        assert_eq!(group.merged.flops, 2 * m.nnz() as u64 * 3);

        for (v, x) in vectors.iter().enumerate() {
            assert_eq!(
                bits(dys[v].to_vec()),
                bits(vector_csr_bucketed_reference(&m, x, widths)),
                "vector {v}"
            );
        }
    }

    #[test]
    fn all_empty_matrix_only_zero_fills() {
        let m: Csr<F16, u32> = Csr::from_rows(8, &[vec![], vec![], vec![]])
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        let plan = Arc::new(RowPlan::from_csr(&m));
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan);
        let dx = gpu.upload(&[1.0f64; 8]);
        let dy = gpu.alloc_out::<f64>(3);
        dy.set(0, 99.0);
        dy.set(2, 99.0);
        let group =
            vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 128, &gplan, BucketWidths::natural());
        assert_eq!(dy.to_vec(), vec![0.0, 0.0, 0.0]);
        assert_eq!(group.members.len(), 1); // zero_fill only
        assert_eq!(group.merged.flops, 0);
    }

    #[test]
    fn group_report_breaks_down_buckets() {
        let m64 = random_csr(400, 96, 40, 26);
        let m: Csr<F16, u32> = m64.convert_values();
        let x = vec![1.0f64; 96];
        let plan = Arc::new(RowPlan::from_csr(&m));
        let gpu = Gpu::with_mode(DeviceSpec::a100(), ExecMode::Sequential);
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan.clone());
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(400);
        let widths = BucketWidths::natural();
        let group = vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 256, &gplan, widths);
        let report =
            bucketed_group_report(gpu.spec(), &crate::profile_half_double(), &plan, &group);
        assert_eq!(report.buckets.len(), group.members.len());
        assert_eq!(report.buckets[0].label, "zero_fill");
        assert_eq!(report.buckets[0].rows, 400);
        // The fused estimate pays launch overhead once: it is cheaper
        // than the sum of standalone member estimates.
        let standalone: f64 = report.buckets.iter().map(|b| b.estimate.seconds).sum();
        assert!(report.estimate.seconds < standalone);
        // Row counts across non-zero-fill buckets = non-empty rows.
        let rows: u64 = report.buckets[1..].iter().map(|b| b.rows).sum();
        assert_eq!(rows, plan.nonempty_rows() as u64);
        // Occupancy is a real fraction and never counts empty rows.
        for b in &report.buckets[1..] {
            assert!(b.lanes_active_frac > 0.0 && b.lanes_active_frac <= 1.0);
        }
        let j = report.to_json();
        assert!(j.contains("\"buckets\""));
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn rejects_invalid_bucket_width() {
        let m: Csr<F16, u32> = Csr::from_rows(2, &[vec![(0, 1.0)]])
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        let plan = Arc::new(RowPlan::from_csr(&m));
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let gplan = GpuRowPlan::upload(&gpu, plan);
        let dx = gpu.upload(&[1.0f64; 2]);
        let dy = gpu.alloc_out::<f64>(1);
        vector_csr_spmv_bucketed(&gpu, &gm, &dx, &dy, 128, &gplan, BucketWidths([7; 6]));
    }
}
