//! SELL-C-σ SpMV kernel — the paper's §VII future work, implemented.
//!
//! With C = 32 (one warp per chunk), lane `l` owns the chunk's lane-`l`
//! row and the warp marches across the chunk's padded width: at every
//! step the 32 lanes read 32 *consecutive* elements of the slab
//! (perfectly coalesced by construction — the property ELLPACK pioneered
//! and σ-sorting makes affordable). Output stores go through the σ-sort
//! permutation.
//!
//! Compared to the vector CSR kernel the trade-offs are:
//!
//! * no per-row pointer chasing and no intra-warp reduction (each lane
//!   accumulates its own row) — lower fixed overhead per row;
//! * padding: every slot of the padded slab is read, so wasted traffic
//!   is `padding_factor - 1`;
//! * the scattered (permuted) output store.
//!
//! Results are bitwise reproducible: each lane accumulates its row
//! sequentially in slab order, which equals ascending-column order.

use crate::vector_csr::VecScalar;
use rt_f16::DoseScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, WARP_SIZE};
use rt_sparse::{ColIndex, SellCSigma};

/// A SELL-C-σ matrix resident in simulated device memory. Requires
/// `chunk == 32` (warp-sized chunks).
pub struct GpuSellMatrix<V, I = u32> {
    nrows: usize,
    ncols: usize,
    chunk_ptr: DeviceBuffer<u64>,
    chunk_width: DeviceBuffer<u32>,
    perm: DeviceBuffer<u32>,
    col_idx: DeviceBuffer<I>,
    values: DeviceBuffer<V>,
}

impl<V: DoseScalar, I: ColIndex> GpuSellMatrix<V, I> {
    pub fn upload(gpu: &Gpu, m: &SellCSigma<V, I>) -> Self {
        assert_eq!(m.chunk(), WARP_SIZE, "GPU SELL kernel needs C = 32");
        GpuSellMatrix {
            nrows: m.nrows(),
            ncols: m.ncols(),
            chunk_ptr: gpu.upload(&m.chunk_ptrs().iter().map(|&p| p as u64).collect::<Vec<_>>()),
            chunk_width: gpu.upload(
                &m.chunk_widths()
                    .iter()
                    .map(|&w| w as u32)
                    .collect::<Vec<_>>(),
            ),
            perm: gpu.upload(m.perm()),
            col_idx: gpu.upload(m.col_idx_slab()),
            values: gpu.upload(m.values_slab()),
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn size_bytes(&self) -> usize {
        self.chunk_ptr.size_bytes()
            + self.chunk_width.size_bytes()
            + self.perm.size_bytes()
            + self.col_idx.size_bytes()
            + self.values.size_bytes()
    }
}

/// Launches the SELL-C-32 kernel: `y = A x`, one warp per chunk.
pub fn sell_spmv<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuSellMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
    threads_per_block: u32,
) -> KernelStats {
    assert_eq!(x.len(), m.ncols, "input vector length mismatch");
    assert_eq!(y.len(), m.nrows, "output vector length mismatch");
    let nchunks = m.chunk_width.len();
    let nrows = m.nrows;
    let grid = Grid::warp_per_item(nchunks.max(1), threads_per_block);

    gpu.launch(grid, |w| {
        let k = w.warp_id();
        if k >= nchunks {
            return;
        }
        let base = w.load_scalar(&m.chunk_ptr, k) as usize;
        let width = w.load_scalar(&m.chunk_width, k) as usize;
        let lanes = WARP_SIZE.min(nrows - k * WARP_SIZE);

        let mut acc = [X::default(); WARP_SIZE];
        let mut idxs = [0usize; WARP_SIZE];
        let mut xs = [X::default(); WARP_SIZE];
        for s in 0..width {
            let slot = base + s * WARP_SIZE;
            // Both loads are consecutive across lanes: fully coalesced.
            let cols = w.load_span(&m.col_idx, slot..slot + lanes);
            let vals = w.load_span(&m.values, slot..slot + lanes);
            for l in 0..lanes {
                idxs[l] = cols[l].to_usize();
            }
            w.load_gather(x, &idxs[..lanes], &mut xs);
            for l in 0..lanes {
                acc[l] = acc[l] + X::from_f64(vals[l].to_f64()) * xs[l];
            }
            w.add_flops(2 * lanes as u64);
        }

        // Permuted output scatter.
        let rows = w.load_span(&m.perm, k * WARP_SIZE..k * WARP_SIZE + lanes);
        for l in 0..lanes {
            w.store_scalar(y, rows[l] as usize, acc[l]);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::{DeviceSpec, ExecMode};
    use rt_sparse::Csr;

    fn random_matrix(seed: u64, nrows: usize, ncols: usize, max_len: usize) -> Csr<F16, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    return Vec::new();
                }
                let len = rng.gen_range(1..=max_len);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.1..1.0)))
                    .collect()
            })
            .collect();
        Csr::<f64, u32>::from_rows(ncols, &rows)
            .unwrap()
            .convert_values()
    }

    #[test]
    fn matches_reference() {
        let m = random_matrix(61, 500, 80, 60);
        let sell = SellCSigma::from_csr(&m, 32, 256);
        let x: Vec<f64> = (0..80).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();

        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuSellMatrix::upload(&gpu, &sell);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(500);
        let stats = sell_spmv(&gpu, &gm, &dx, &dy, 512);

        let mut want = vec![0.0; 500];
        m.spmv_ref(&x, &mut want).unwrap();
        for (g, w) in dy.to_vec().iter().zip(want.iter()) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
        // SELL executes the padded FMAs too (lanes past the row count in
        // the final chunk excluded).
        assert!(stats.flops >= 2 * m.nnz() as u64);
        assert!(stats.flops <= 2 * sell.padded_slots() as u64);
    }

    #[test]
    fn bitwise_reproducible() {
        let m = random_matrix(62, 300, 64, 40);
        let sell = SellCSigma::from_csr(&m, 32, 128);
        let x: Vec<f64> = vec![1.5; 64];
        let run = |mode| {
            let gpu = Gpu::with_mode(DeviceSpec::a100(), mode);
            let gm = GpuSellMatrix::upload(&gpu, &sell);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(300);
            sell_spmv(&gpu, &gm, &dx, &dy, 256);
            dy.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(ExecMode::Parallel), run(ExecMode::Sequential));
    }

    #[test]
    fn slab_reads_are_fully_coalesced() {
        let m = random_matrix(63, 2000, 128, 30);
        let sell = SellCSigma::from_csr(&m, 32, 512);
        let x: Vec<f64> = vec![1.0; 128];
        let spec = DeviceSpec::a100().scaled_l2(50_000.0);
        let gpu = Gpu::with_mode(spec, ExecMode::Sequential);
        let gm = GpuSellMatrix::upload(&gpu, &sell);
        let dx = gpu.upload(&x);
        let dy = gpu.alloc_out::<f64>(2000);
        let stats = sell_spmv(&gpu, &gm, &dx, &dy, 256);
        // High coalescing: the slab accounts for most of the requested
        // bytes and is read in full consecutive spans.
        assert!(
            stats.coalescing_efficiency() > 0.5,
            "coalescing {}",
            stats.coalescing_efficiency()
        );
    }

    #[test]
    #[should_panic(expected = "C = 32")]
    fn rejects_non_warp_chunks() {
        let m = random_matrix(64, 64, 16, 5);
        let sell = SellCSigma::from_csr(&m, 16, 64);
        let gpu = Gpu::new(DeviceSpec::a100());
        let _ = GpuSellMatrix::upload(&gpu, &sell);
    }
}
