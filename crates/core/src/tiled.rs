//! Sub-warp tiled vector CSR kernels: multiple rows per warp.
//!
//! The paper's Listing 1 kernel assigns one full 32-lane warp to every
//! row, but its own Figure 2 shows dose-deposition rows are mostly
//! *short* — the average non-empty row is well under 32 entries, so most
//! lanes compute zeros and the gather is padded. CUDA cooperative groups
//! support `tiled_partition<W>` for exactly this case: a warp is split
//! into `32 / W` tiles of `W` lanes, each tile owning one row.
//!
//! This module is the simulated counterpart. A width-`W` launch covers
//! `32 / W` consecutive rows per warp:
//!
//! * **fewer warps** — `ceil(nrows * W / 32)` instead of `nrows`, which
//!   cuts the per-warp fixed overhead term of the timing model (the term
//!   that dominates short-row matrices);
//! * **fewer padded lanes** — a row of length `l` costs
//!   `ceil(l / W) * W` lane slots instead of `ceil(l / 32) * 32`
//!   ([`RowStats::lanes_active_frac`](rt_sparse::stats::RowStats::lanes_active_frac));
//! * **the same reproducibility contract** — per width, the per-lane
//!   accumulation order and the [`reduce_sum_tile`](rt_gpusim::WarpCtx::reduce_sum_tile)
//!   halving tree are fixed, so every width is bitwise reproducible
//!   run-to-run and across `ExecMode` / worker counts. Results
//!   legitimately differ *between* widths (a different tree folds the
//!   partial sums in a different order); width 32 is bitwise identical
//!   to the classic [`vector_csr_spmv`](crate::vector_csr_spmv).
//!
//! The cost of narrow tiles is memory-side: each tile's span loads touch
//! at most `W` consecutive elements, so long rows issue more, smaller L2
//! sector transactions than a full-warp pass would. The
//! [`KernelSelect`](crate::KernelSelect) autotuner weighs exactly this
//! trade via the traffic counters.

use crate::vector_csr::{GpuCsrMatrix, VecScalar, MAX_SPMM_BATCH};
use rt_f16::DoseScalar;
use rt_gpusim::{DeviceBuffer, DeviceOutBuffer, Gpu, Grid, KernelStats, TILE_WIDTHS, WARP_SIZE};
use rt_sparse::{ColIndex, Csr};

/// Launches the sub-warp tiled vector CSR kernel: `y = A x` with one
/// width-`tile_width` cooperative tile per row (`32 / tile_width` rows
/// per warp).
///
/// `tile_width` must be one of [`TILE_WIDTHS`]. Row pointers are loaded
/// once per *warp* (a single coalesced span covering all its rows) and
/// the per-row sums are stored with one coalesced span per warp — on
/// hardware the tiles of a warp execute the same instruction, so their
/// same-PC accesses coalesce warp-wide.
pub fn vector_csr_spmv_tiled<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    x: &DeviceBuffer<X>,
    y: &DeviceOutBuffer<X>,
    threads_per_block: u32,
    tile_width: u32,
) -> KernelStats {
    assert!(
        TILE_WIDTHS.contains(&tile_width),
        "tile width must be one of {TILE_WIDTHS:?}, got {tile_width}"
    );
    assert_eq!(x.len(), m.ncols(), "input vector length mismatch");
    assert_eq!(y.len(), m.nrows(), "output vector length mismatch");
    let grid = Grid::tile_per_item(m.nrows(), tile_width, threads_per_block);
    let nrows = m.nrows();
    let tw = tile_width as usize;

    gpu.launch_tiled(grid, tile_width, |w| {
        let base = w.tile_base();
        if base >= nrows {
            return;
        }
        let rows_here = (w.tiles_per_warp() as usize).min(nrows - base);
        // One coalesced row-pointer read for the whole warp's rows.
        let ptrs = w.load_span(m.row_ptr(), base..base + rows_here + 1);

        let mut lanes = [X::default(); WARP_SIZE];
        let mut idxs = [0usize; WARP_SIZE];
        let mut xs = [X::default(); WARP_SIZE];
        let mut sums = [X::default(); WARP_SIZE];

        for t in 0..rows_here {
            let start = ptrs[t] as usize;
            let end = ptrs[t + 1] as usize;
            lanes[..tw].fill(X::default());

            let mut j = start;
            while j < end {
                let n = (end - j).min(tw);
                let cols = w.load_span(m.col_idx(), j..j + n);
                let vals = w.load_span(m.values(), j..j + n);
                for k in 0..n {
                    idxs[k] = cols[k].to_usize();
                }
                w.load_gather(x, &idxs[..n], &mut xs);
                for k in 0..n {
                    lanes[k] = lanes[k] + X::from_f64(vals[k].to_f64()) * xs[k];
                }
                w.add_flops(2 * n as u64);
                j += n;
            }

            sums[t] = w.reduce_sum_tile(&mut lanes[..tw]);
        }

        // One coalesced store of all the warp's row sums.
        w.store_span(y, base, &sums[..rows_here]);
    })
}

/// Multi-vector (SpMM-style) variant of [`vector_csr_spmv_tiled`]:
/// `ys[v] = A xs[v]` for every `v` in one launch, sharing the matrix
/// spans across vectors exactly like
/// [`vector_csr_spmm`](crate::vector_csr_spmm).
///
/// Per-vector arithmetic is identical to an unbatched
/// [`vector_csr_spmv_tiled`] launch at the same width, so batching never
/// changes a dose (the serving engine relies on this).
pub fn vector_csr_spmm_tiled<V: DoseScalar, I: ColIndex, X: VecScalar>(
    gpu: &Gpu,
    m: &GpuCsrMatrix<V, I>,
    xs: &[&DeviceBuffer<X>],
    ys: &[&DeviceOutBuffer<X>],
    threads_per_block: u32,
    tile_width: u32,
) -> KernelStats {
    assert!(
        TILE_WIDTHS.contains(&tile_width),
        "tile width must be one of {TILE_WIDTHS:?}, got {tile_width}"
    );
    assert!(!xs.is_empty() && xs.len() <= MAX_SPMM_BATCH, "batch size");
    assert_eq!(xs.len(), ys.len(), "one output per input vector");
    for x in xs {
        assert_eq!(x.len(), m.ncols(), "input vector length mismatch");
    }
    for y in ys {
        assert_eq!(y.len(), m.nrows(), "output vector length mismatch");
    }
    let k = xs.len();
    let grid = Grid::tile_per_item(m.nrows(), tile_width, threads_per_block);
    let nrows = m.nrows();
    let tw = tile_width as usize;

    gpu.launch_tiled(grid, tile_width, |w| {
        let base = w.tile_base();
        if base >= nrows {
            return;
        }
        let rows_here = (w.tiles_per_warp() as usize).min(nrows - base);
        let ptrs = w.load_span(m.row_ptr(), base..base + rows_here + 1);

        let mut lanes = [[X::default(); WARP_SIZE]; MAX_SPMM_BATCH];
        let mut idxs = [0usize; WARP_SIZE];
        let mut gathered = [X::default(); WARP_SIZE];
        let mut sums = [[X::default(); WARP_SIZE]; MAX_SPMM_BATCH];

        for t in 0..rows_here {
            let start = ptrs[t] as usize;
            let end = ptrs[t + 1] as usize;
            for l in lanes.iter_mut().take(k) {
                l[..tw].fill(X::default());
            }

            let mut j = start;
            while j < end {
                let n = (end - j).min(tw);
                let cols = w.load_span(m.col_idx(), j..j + n);
                let vals = w.load_span(m.values(), j..j + n);
                for kk in 0..n {
                    idxs[kk] = cols[kk].to_usize();
                }
                for (v, x) in xs.iter().enumerate() {
                    w.load_gather(x, &idxs[..n], &mut gathered);
                    for kk in 0..n {
                        lanes[v][kk] = lanes[v][kk] + X::from_f64(vals[kk].to_f64()) * gathered[kk];
                    }
                }
                w.add_flops(2 * n as u64 * k as u64);
                j += n;
            }

            for v in 0..k {
                sums[v][t] = w.reduce_sum_tile(&mut lanes[v][..tw]);
            }
        }

        for (v, y) in ys.iter().enumerate() {
            w.store_span(y, base, &sums[v][..rows_here]);
        }
    })
}

/// Host-side reference of the exact arithmetic the tiled kernel performs
/// at `tile_width` — same lane partitioning, same per-tile halving tree —
/// used by the bitwise-reproducibility tests.
#[allow(clippy::needless_range_loop)] // mirrors the kernel's lane loop
pub fn vector_csr_tiled_reference<V: DoseScalar, I: ColIndex, X: VecScalar>(
    m: &Csr<V, I>,
    x: &[X],
    tile_width: u32,
) -> Vec<X> {
    assert!(
        TILE_WIDTHS.contains(&tile_width),
        "tile width must be one of {TILE_WIDTHS:?}, got {tile_width}"
    );
    let tw = tile_width as usize;
    let mut y = vec![X::default(); m.nrows()];
    for row in 0..m.nrows() {
        let (cols, vals) = m.row(row);
        let mut lanes = vec![X::default(); tw];
        for (k, (c, v)) in cols.iter().zip(vals.iter()).enumerate() {
            let lane = k % tw;
            lanes[lane] = lanes[lane] + X::from_f64(v.to_f64()) * x[c.to_usize()];
        }
        let mut offset = tw / 2;
        while offset > 0 {
            for i in 0..offset {
                lanes[i] = lanes[i] + lanes[i + offset];
            }
            offset /= 2;
        }
        y[row] = lanes[0];
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector_csr::{vector_csr_reference, vector_csr_spmv};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rt_f16::F16;
    use rt_gpusim::DeviceSpec;

    fn random_csr(nrows: usize, ncols: usize, max_row: usize, seed: u64) -> Csr<f64, u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    return Vec::new();
                }
                let len = rng.gen_range(1..=max_row);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    #[test]
    fn every_width_matches_tiled_reference_bitwise() {
        let m64 = random_csr(400, 96, 24, 11);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..96).map(|i| (i as f64 * 0.29).sin() + 1.2).collect();
        for &w in &TILE_WIDTHS {
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(400);
            let stats = vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, w);
            assert_eq!(stats.flops, 2 * m.nnz() as u64, "width {w}");

            let want = vector_csr_tiled_reference(&m, &x, w);
            let got = dy.to_vec();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "width {w}"
            );
        }
    }

    #[test]
    fn width_32_is_bitwise_identical_to_classic_kernel() {
        let m64 = random_csr(300, 128, 80, 12);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..128).map(|i| 1.0 / (i + 3) as f64).collect();

        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&x);
        let classic = gpu.alloc_out::<f64>(300);
        let tiled = gpu.alloc_out::<f64>(300);
        vector_csr_spmv(&gpu, &gm, &dx, &classic, 512);
        vector_csr_spmv_tiled(&gpu, &gm, &dx, &tiled, 512, 32);

        let bits = |v: Vec<f64>| v.into_iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(classic.to_vec()), bits(tiled.to_vec()));
        // And the classic reference agrees too.
        assert_eq!(
            bits(vector_csr_reference(&m, &x)),
            bits(vector_csr_tiled_reference(&m, &x, 32))
        );
    }

    #[test]
    fn tolerance_against_host_spmv() {
        let m64 = random_csr(500, 64, 16, 13);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.43).cos() + 1.5).collect();
        let mut want = vec![0.0; 500];
        m.spmv_ref(&x, &mut want).unwrap();
        for &w in &TILE_WIDTHS {
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(500);
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, w);
            for (g, want) in dy.to_vec().iter().zip(want.iter()) {
                assert!(
                    (g - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "width {w}: {g} vs {want}"
                );
            }
        }
    }

    #[test]
    fn narrow_tiles_launch_fewer_warps_on_short_rows() {
        let m64 = random_csr(2000, 256, 8, 14);
        let m: Csr<F16, u32> = m64.convert_values();
        let x: Vec<f64> = vec![1.0; 256];

        let run = |w: u32| {
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&x);
            let dy = gpu.alloc_out::<f64>(2000);
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 512, w)
        };
        let narrow = run(4);
        let wide = run(32);
        assert!(
            narrow.warps * 4 <= wide.warps,
            "narrow {} vs wide {}",
            narrow.warps,
            wide.warps
        );
    }

    #[test]
    fn spmm_tiled_matches_spmv_tiled_bitwise_per_vector() {
        let m64 = random_csr(250, 96, 12, 15);
        let m: Csr<F16, u32> = m64.convert_values();
        let vectors: Vec<Vec<f64>> = (0..4)
            .map(|v| {
                (0..96)
                    .map(|i| ((v * 96 + i) as f64 * 0.17).sin())
                    .collect()
            })
            .collect();

        for &w in &[4u32, 16] {
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dxs: Vec<_> = vectors.iter().map(|x| gpu.upload(x)).collect();
            let dys: Vec<_> = (0..4).map(|_| gpu.alloc_out::<f64>(250)).collect();
            let xr: Vec<&DeviceBuffer<f64>> = dxs.iter().collect();
            let yr: Vec<&DeviceOutBuffer<f64>> = dys.iter().collect();
            let stats = vector_csr_spmm_tiled(&gpu, &gm, &xr, &yr, 512, w);
            assert_eq!(stats.flops, 2 * m.nnz() as u64 * 4);

            for (v, x) in vectors.iter().enumerate() {
                let gpu1 = Gpu::new(DeviceSpec::a100());
                let gm1 = GpuCsrMatrix::upload(&gpu1, &m);
                let dx = gpu1.upload(x);
                let dy = gpu1.alloc_out::<f64>(250);
                vector_csr_spmv_tiled(&gpu1, &gm1, &dx, &dy, 512, w);
                assert_eq!(
                    dys[v]
                        .to_vec()
                        .iter()
                        .map(|s| s.to_bits())
                        .collect::<Vec<_>>(),
                    dy.to_vec().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    "width {w} vector {v}"
                );
            }
        }
    }

    #[test]
    fn empty_rows_store_zero_at_every_width() {
        let m: Csr<F16, u32> = Csr::from_rows(4, &[vec![], vec![(0, 1.0)], vec![], vec![]])
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        for &w in &TILE_WIDTHS {
            let gpu = Gpu::new(DeviceSpec::a100());
            let gm = GpuCsrMatrix::upload(&gpu, &m);
            let dx = gpu.upload(&[2.0f64; 4]);
            let dy = gpu.alloc_out::<f64>(4);
            dy.set(0, 99.0);
            dy.set(2, 99.0);
            dy.set(3, 99.0);
            vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 128, w);
            assert_eq!(dy.to_vec(), vec![0.0, 2.0, 0.0, 0.0], "width {w}");
        }
    }

    #[test]
    #[should_panic(expected = "tile width")]
    fn rejects_invalid_width() {
        let m: Csr<F16, u32> = Csr::from_rows(2, &[vec![(0, 1.0)]])
            .map(|m: Csr<f64, u32>| m.convert_values())
            .unwrap();
        let gpu = Gpu::new(DeviceSpec::a100());
        let gm = GpuCsrMatrix::upload(&gpu, &m);
        let dx = gpu.upload(&[1.0f64; 2]);
        let dy = gpu.alloc_out::<f64>(1);
        vector_csr_spmv_tiled(&gpu, &gm, &dx, &dy, 128, 7);
    }
}
