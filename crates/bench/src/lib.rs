//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary regenerates one paper artifact (`table1`, `fig2` … `fig7`,
//! `speedups`, `ablation_*`) or all of them (`repro_all`). They honor the
//! `RT_SHRINK` environment variable (default 1.0 = the full simulation
//! scale documented in DESIGN.md; larger values shrink the matrices for
//! quick runs) and write each artifact to stdout and to
//! `results/<name>.txt`.

use std::io::Write;
use std::path::PathBuf;

/// Where artifacts are written (`results/` under the workspace root, or
/// `RT_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("RT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Prints an artifact and persists it under `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
            Ok(()) => eprintln!("[saved {}]", path.display()),
            Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
        }
    }
}

/// Builds the experiment context, reporting scale and timing to stderr.
pub fn context() -> rt_repro::Context {
    let t0 = std::time::Instant::now();
    let ctx = rt_repro::Context::from_env();
    eprintln!(
        "[generated 6 dose deposition matrices at shrink {} in {:.1?}]",
        ctx.scale.shrink,
        t0.elapsed()
    );
    ctx
}
