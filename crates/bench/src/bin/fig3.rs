//! Regenerates Figure 3 (A100 roofline analysis).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig3", &rt_repro::fig3::generate(&ctx).render());
}
