//! Extension: the SELL-C-32 GPU kernel (§VII future work) vs the CSR
//! vector kernel.
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let rows = ablations::sell_vs_csr(&ctx);
    rt_bench::emit("ablation_sell", &ablations::render_sell_vs_csr(&rows));
}
