//! Regenerates every table, figure and ablation in one run.
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("table1", &rt_repro::table1::generate(&ctx).render());
    rt_bench::emit("fig1", &rt_repro::fig1::generate(&ctx).render());
    rt_bench::emit("fig2", &rt_repro::fig2::generate(&ctx).render());
    rt_bench::emit("fig3", &rt_repro::fig3::generate(&ctx).render());
    rt_bench::emit("fig4", &rt_repro::fig4::generate(&ctx).render());
    rt_bench::emit("fig5", &rt_repro::fig5::generate(&ctx).render());
    rt_bench::emit("fig6", &rt_repro::fig6::generate(&ctx).render());
    rt_bench::emit("fig7", &rt_repro::fig7::generate(&ctx).render());
    rt_bench::emit("speedups", &rt_repro::speedups::generate(&ctx).render());
    rt_bench::emit(
        "ablation_indices",
        &ablations::render_index_width(&ablations::index_width(&ctx)),
    );
    let mut formats = String::new();
    let mut precision = String::new();
    for case in [ctx.liver1(), ctx.prostate1()] {
        formats.push_str(&ablations::render_formats(
            case.name(),
            &ablations::formats(case),
        ));
        formats.push('\n');
        precision.push_str(&ablations::render_value_encoding(
            case.name(),
            &ablations::value_encoding(case),
        ));
        precision.push('\n');
    }
    rt_bench::emit("ablation_formats", &formats);
    rt_bench::emit("ablation_precision", &precision);
    rt_bench::emit(
        "traffic",
        &rt_repro::traffic::render(&rt_repro::traffic::generate(&ctx)),
    );
    rt_bench::emit(
        "ablation_sell",
        &ablations::render_sell_vs_csr(&ablations::sell_vs_csr(&ctx)),
    );
    rt_bench::emit(
        "ablation_rowmap",
        &ablations::render_row_mapping(&ablations::row_mapping(&ctx)),
    );
    rt_bench::emit(
        "ablation_repro",
        &ablations::render_reproducibility(&ablations::reproducibility(&ctx)),
    );
}
