//! Regenerates Figure 6 (single-precision library comparison).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig6", &rt_repro::fig6::generate(&ctx).render());
}
