//! Simulator throughput tracker: times the `sim_kernels` workloads and
//! emits machine-readable `BENCH_simspeed.json` so the perf trajectory is
//! tracked across PRs.
//!
//! Reported per kernel: median wall-clock per launch, simulated non-zeros
//! per second, simulated L2 sector transactions per second, and the
//! speedup over the recorded pre-batching pipeline (the scalar
//! per-sector path this repo shipped before the warp-granular rework) on
//! the same workload.

use rt_core::{
    profile_baseline, profile_half_double, rs_baseline_gpu_spmv, vector_csr_spmv, GpuCsrMatrix,
    GpuRsMatrix,
};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_gpusim::{timing, DeviceSpec, Gpu, KernelProfile, KernelStats, LaunchReport};
use rt_sparse::{Csr, RsCompressed};
use std::fmt::Write as _;
use std::time::Instant;

/// Medians recorded from the pre-batching pipeline (same workload, same
/// harness, `ExecMode::Parallel`) immediately before the rework landed.
const BASELINE_NS: &[(&str, f64)] = &[
    ("vector_csr_half_double", 8_936_737.0),
    ("baseline_segment_atomic", 8_906_043.0),
];

struct Measurement {
    name: &'static str,
    ns_per_iter: f64,
    nnz: u64,
    sectors_per_launch: u64,
    /// Unified per-launch record (counters + modeled time) in the same
    /// shape the serving engine and the calculator emit.
    report: LaunchReport,
}

/// Total simulated L2 sector transactions in one launch.
fn sectors(s: &KernelStats) -> u64 {
    s.l2_read_hits + s.l2_read_misses + s.l2_write_sectors + s.atomic_ops
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn time_kernel(
    name: &'static str,
    nnz: u64,
    device: &DeviceSpec,
    profile: &KernelProfile,
    mut launch: impl FnMut() -> KernelStats,
) -> Measurement {
    const WARMUP: usize = 3;
    const SAMPLES: usize = 15;
    let mut stats = KernelStats::default();
    for _ in 0..WARMUP {
        stats = launch();
    }
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            stats = launch();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let estimate = timing::estimate(device, profile, &stats);
    Measurement {
        name,
        ns_per_iter: median_ns(samples),
        nnz,
        sectors_per_launch: sectors(&stats),
        report: LaunchReport::new(profile.name.clone(), device.name, stats, estimate),
    }
}

fn render_json(measurements: &[Measurement], workers: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"sim_kernels\",").unwrap();
    writeln!(out, "  \"mode\": \"parallel\",").unwrap();
    writeln!(out, "  \"workers\": {workers},").unwrap();
    out.push_str("  \"kernels\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let per_sec = 1e9 / m.ns_per_iter;
        let baseline = BASELINE_NS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, ns)| *ns);
        out.push_str("    {\n");
        writeln!(out, "      \"name\": \"{}\",", m.name).unwrap();
        writeln!(out, "      \"ns_per_iter\": {:.1},", m.ns_per_iter).unwrap();
        writeln!(out, "      \"nnz\": {},", m.nnz).unwrap();
        writeln!(
            out,
            "      \"nnz_per_sec\": {:.4e},",
            m.nnz as f64 * per_sec
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_launch\": {},",
            m.sectors_per_launch
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_sec\": {:.4e},",
            m.sectors_per_launch as f64 * per_sec
        )
        .unwrap();
        match baseline {
            Some(ns) => {
                writeln!(out, "      \"baseline_ns_per_iter\": {ns:.1},").unwrap();
                writeln!(
                    out,
                    "      \"speedup_vs_baseline\": {:.2},",
                    ns / m.ns_per_iter
                )
                .unwrap();
            }
            None => writeln!(out, "      \"baseline_ns_per_iter\": null,").unwrap(),
        }
        // The unified LaunchReport shape (same as the serving engine's
        // per-response reports and DoseCalculator results).
        writeln!(out, "      \"report\": {}", m.report.to_json_indented(6)).unwrap();
        out.push_str(if i + 1 == measurements.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let case = prostate_case(ScaleConfig { shrink: 12.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);
    let weights = vec![1.0f64; csr.ncols()];
    let nnz = csr.nnz() as u64;

    let device = DeviceSpec::a100();
    let vector = {
        let gpu = Gpu::new(device.clone());
        let m = GpuCsrMatrix::upload(&gpu, &csr);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(csr.nrows());
        time_kernel(
            "vector_csr_half_double",
            nnz,
            &device,
            &profile_half_double(),
            || vector_csr_spmv(&gpu, &m, &x, &y, 512),
        )
    };
    let baseline = {
        let gpu = Gpu::new(device.clone());
        let m = GpuRsMatrix::upload(&gpu, &rs);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(rs.nrows());
        time_kernel(
            "baseline_segment_atomic",
            nnz,
            &device,
            &profile_baseline(),
            || {
                y.clear();
                rs_baseline_gpu_spmv(&gpu, &m, &x, &y, 128)
            },
        )
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = render_json(&[vector, baseline], workers);
    print!("{json}");
    let path = "BENCH_simspeed.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[could not save {path}: {e}]"),
    }
}
