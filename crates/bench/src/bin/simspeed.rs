//! Simulator throughput tracker: times the `sim_kernels` workloads and
//! emits machine-readable `BENCH_simspeed.json` so the perf trajectory is
//! tracked across PRs.
//!
//! Three suites:
//!
//! * the prostate case (paper workload) timing the warp-per-row vector
//!   kernel against the recorded pre-batching baseline,
//! * a deterministic short-row demo matrix (avg nnz per non-empty row
//!   ≈ 4.5) timing every sub-warp tile width plus the autotuned pick
//!   against fixed warp-per-row — the shape the row-adaptive tiles
//!   exist for, and
//! * a deterministic "liver beam 1" serving shape (85% empty rows, a
//!   short-row shell plus a dense tail) timing every fixed width, the
//!   whole-matrix autotuned pick, and the bucketed row-partition
//!   dispatch — the shape empty-row elimination and per-bucket width
//!   dispatch exist for, and
//! * the same liver shape **row-sharded across a 3×A100 pool**: one
//!   request executed cooperatively, 3 nnz-balanced row shards running
//!   concurrently, the interconnect gather of each shard's rows charged
//!   to the critical path. Its `sim_speedup_vs_one_device` compares the
//!   pool's modeled critical path against the same bucketed dispatch
//!   fully resident on one device, and
//! * a deterministic "liver gradient" optimizer shape (a wide beamlet
//!   axis where ~98% of beamlets never touch the dose shell, so the
//!   **transpose** is empty-row heavy) timing the backward pass `Aᵀ r`
//!   as every fixed-width whole-transpose kernel and as the bucketed
//!   partition of the transpose — the gradient-direction counterpart of
//!   the liver beam-1 suite, with the forward direction alongside so
//!   the report carries forward vs backward lane occupancy, and
//! * a **placement break-even sweep** on the mixed 4-device demo pool
//!   (2×A100 + V100 + P100): the shard count `ExecPolicy`'s
//!   `ShardSpec::Auto` resolves to for the liver and prostate plans,
//!   the full K=1..=4 evidence table, and the modeled throughput of two
//!   concurrent requests under R=2 replica groups vs R=1 serializing
//!   pool-wide fan-outs (the `placement` JSON object), and
//! * a **drain-recovery sweep** on the same pool: modeled R=2 group
//!   times and pool throughput before the P100 is drained, after the
//!   drain with the registration-time deal kept (the group that lost
//!   its member stops serving), and after the engine's live re-deal
//!   over the three survivors (the `rebalance` JSON object).
//!
//! The JSON carries `schema_version` and a stable `suite` id per kernel
//! entry (`prostate-paper`, `shortrow`, `liver-beam-1`,
//! `liver-beam-1-sharded`, `liver-grad`) so trend tooling can group
//! entries without parsing names.
//!
//! Reported per kernel: median wall-clock per launch, simulated non-zeros
//! per second, simulated L2 sector transactions per second, and (for the
//! short-row suites) `tile_width`, `lanes_active_frac` (scheduled
//! occupancy — empty rows still cost a whole-matrix kernel a tile), host
//! `speedup_vs_warp32` and modeled `sim_speedup_vs_warp32`. The
//! partitioned entry adds `speedup_vs_autotuned_w` (host wall-clock vs
//! the whole-matrix autotuned pick), `sim_speedup_vs_best_fixed`
//! (modeled vs the best fixed-width whole-matrix kernel) and a
//! per-bucket `buckets` breakdown with each bucket's true
//! `lanes_active_frac` (empty rows never count as occupied lane slots in
//! a partitioned launch).
//!
//! `--quick` runs a trimmed smoke check (no file write) and exits
//! non-zero if the autotuned pick is modeled slower than warp-per-row on
//! the short-row suite, if the partitioned pick is modeled slower than
//! the best fixed-width whole-matrix kernel on the liver beam-1 suite,
//! if the 3-device sharded dispatch models less than 1.6× one device
//! on the same suite, if the placement model's auto shard count fails
//! to beat both forced K=1 and K=pool on the liver plan (or R=2 fails
//! to model >1.5× R=1 serialized throughput), if the small prostate
//! plan is not auto-placed at K=1, or if the partitioned transpose
//! dispatch on the liver gradient suite models less than 1.4× the best
//! fixed-width whole-transpose kernel, or if draining the P100 and
//! re-dealing over the survivors recovers less than 80% of the
//! pre-drain modeled throughput — the CI gates for the autotuners, the
//! cooperative pool, the placement engine, live rebalancing, and the
//! backward-pass partition.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{
    choose_shard_count, modeled_pool_throughput, modeled_whole_seconds, profile_baseline,
    profile_half_double, rs_baseline_gpu_spmv, vector_csr_spmv, vector_csr_spmv_bucketed,
    vector_csr_spmv_sharded, vector_csr_spmv_tiled, BucketWidths, GpuCsrMatrix, GpuRowPlan,
    GpuRsMatrix, KernelChoice, KernelSelect, PartitionStrategy, ShardBreakEven, ShardDispatch,
    ShardedCsr, TILE_WIDTHS,
};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_gpusim::{
    snake_partition, snake_partition_subset, timing, BucketReport, DeviceGroup, DeviceSpec, Gpu,
    GroupStats, KernelProfile, KernelStats, LaunchReport, ShardReport, ShardedReport,
};
use rt_sparse::stats::RowStats;
use rt_sparse::{Csr, RowPlan, RsCompressed, ShardPlan};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Medians recorded from the pre-batching pipeline (same workload, same
/// harness, `ExecMode::Parallel`) immediately before the rework landed.
const BASELINE_NS: &[(&str, f64)] = &[
    ("vector_csr_half_double", 8_936_737.0),
    ("baseline_segment_atomic", 8_906_043.0),
];

struct Measurement {
    name: &'static str,
    ns_per_iter: f64,
    nnz: u64,
    sectors_per_launch: u64,
    /// Short-row suite only: the tile width this entry ran at.
    tile_width: Option<u32>,
    /// Short-row suites only: fraction of *scheduled* lane slots carrying
    /// a stored entry at this width
    /// ([`RowStats::scheduled_lanes_active_frac`](rt_sparse::stats::RowStats::scheduled_lanes_active_frac)
    /// — a whole-matrix kernel schedules a tile for every row, so empty
    /// rows' padded lanes count against its occupancy; they are never
    /// counted as *occupied* slots anywhere).
    lanes_active_frac: Option<f64>,
    /// Host wall-clock speedup over the fixed warp-per-row entry.
    speedup_vs_warp32: Option<f64>,
    /// Modeled-time speedup over the fixed warp-per-row entry.
    sim_speedup_vs_warp32: Option<f64>,
    /// Partitioned entry only: host wall-clock speedup over the
    /// whole-matrix autotuned pick.
    speedup_vs_autotuned_w: Option<f64>,
    /// Partitioned entry only: modeled-time speedup over the best
    /// fixed-width whole-matrix kernel of the suite.
    sim_speedup_vs_best_fixed: Option<f64>,
    /// Partitioned entry only: per-bucket breakdown of the fused
    /// dispatch (width, rows, true lane occupancy, standalone estimate).
    buckets: Option<Vec<BucketReport>>,
    /// Liver-grad partitioned entry only: modeled speedup of the
    /// bucketed transpose dispatch over the best fixed-width
    /// whole-transpose kernel — the backward-pass counterpart of
    /// `sim_speedup_vs_best_fixed`, under the name the gradient CI gate
    /// keys on.
    grad_speedup_vs_whole: Option<f64>,
    /// Sharded entry only: modeled critical-path speedup of the pool
    /// over the same dispatch fully resident on one device.
    sim_speedup_vs_one_device: Option<f64>,
    /// Sharded entry only: per-shard breakdown (home device, row range,
    /// nnz, standalone compute estimate, gather cost).
    shards: Option<Vec<ShardReport>>,
    /// Unified per-launch record (counters + modeled time) in the same
    /// shape the serving engine and the calculator emit.
    report: LaunchReport,
}

/// Stable suite id for a kernel entry — the grouping key trend tooling
/// keys on, independent of entry names.
fn suite_id(name: &str) -> &'static str {
    if name.starts_with("shortrow_") {
        "shortrow"
    } else if name.starts_with("livergrad_") {
        "liver-grad"
    } else if name.starts_with("liverb1_sharded") {
        "liver-beam-1-sharded"
    } else if name.starts_with("liverb1_") {
        "liver-beam-1"
    } else {
        "prostate-paper"
    }
}

/// Total simulated L2 sector transactions in one launch.
fn sectors(s: &KernelStats) -> u64 {
    s.l2_read_hits + s.l2_read_misses + s.l2_write_sectors + s.atomic_ops
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn time_kernel(
    name: &'static str,
    nnz: u64,
    device: &DeviceSpec,
    profile: &KernelProfile,
    warmup: usize,
    samples: usize,
    mut launch: impl FnMut() -> KernelStats,
) -> Measurement {
    let mut stats = KernelStats::default();
    for _ in 0..warmup {
        stats = launch();
    }
    let samples: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            stats = launch();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let estimate = timing::estimate(device, profile, &stats);
    Measurement {
        name,
        ns_per_iter: median_ns(samples),
        nnz,
        sectors_per_launch: sectors(&stats),
        tile_width: None,
        lanes_active_frac: None,
        speedup_vs_warp32: None,
        sim_speedup_vs_warp32: None,
        speedup_vs_autotuned_w: None,
        sim_speedup_vs_best_fixed: None,
        grad_speedup_vs_whole: None,
        buckets: None,
        sim_speedup_vs_one_device: None,
        shards: None,
        report: LaunchReport::new(profile.name.clone(), device.name, stats, estimate),
    }
}

/// Deterministic short-row demo matrix: 60k voxel rows over 4096 spots,
/// ~30% empty, non-empty rows hold 1–8 entries (avg ≈ 4.5 nnz per
/// non-empty row). Warp-per-row wastes ≥ 24 of 32 lanes on every row
/// here; this is the shape the sub-warp tiles are for.
fn short_row_matrix() -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(42);
    let ncols = 4096;
    let rows: Vec<Vec<(usize, f64)>> = (0..60_000)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=8);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    m.convert_values()
}

/// Times one short-row entry. `classic` dispatches the paper's
/// warp-per-row kernel (what width 32 resolves to in the calculator);
/// otherwise the tiled kernel runs at `width`.
#[allow(clippy::too_many_arguments)]
fn time_shortrow(
    name: &'static str,
    csr: &Csr<F16, u32>,
    row_stats: &RowStats,
    width: u32,
    classic: bool,
    device: &DeviceSpec,
    warmup: usize,
    samples: usize,
) -> Measurement {
    let gpu = Gpu::new(device.clone());
    let m = GpuCsrMatrix::upload(&gpu, csr);
    let x = gpu.upload(&vec![1.0f64; csr.ncols()]);
    let y = gpu.alloc_out::<f64>(csr.nrows());
    let mut meas = time_kernel(
        name,
        csr.nnz() as u64,
        device,
        &profile_half_double(),
        warmup,
        samples,
        || {
            if classic {
                vector_csr_spmv(&gpu, &m, &x, &y, 512)
            } else {
                vector_csr_spmv_tiled(&gpu, &m, &x, &y, 512, width)
            }
        },
    );
    meas.report.tile_width = width;
    meas.tile_width = Some(width);
    // Scheduled occupancy: a whole-matrix launch gives every row —
    // including every empty row — a tile, so empty rows' padded lanes
    // count against this figure (they are never *occupied*).
    meas.lanes_active_frac = Some(row_stats.scheduled_lanes_active_frac(width));
    meas
}

fn width_entry_name(w: u32) -> &'static str {
    match w {
        2 => "shortrow_tiled_w2",
        4 => "shortrow_tiled_w4",
        8 => "shortrow_tiled_w8",
        16 => "shortrow_tiled_w16",
        32 => "shortrow_tiled_w32",
        _ => unreachable!("width {w} is not in TILE_WIDTHS"),
    }
}

fn liver_width_entry_name(w: u32) -> &'static str {
    match w {
        2 => "liverb1_tiled_w2",
        4 => "liverb1_tiled_w4",
        8 => "liverb1_tiled_w8",
        16 => "liverb1_tiled_w16",
        32 => "liverb1_tiled_w32",
        _ => unreachable!("width {w} is not in TILE_WIDTHS"),
    }
}

/// Deterministic "liver beam 1" serving shape: a large dose grid where
/// one beam's dose shell touches few voxels. ~95% of the 800k voxel
/// rows are empty; the non-empty rows split into a short-row shell
/// (1–2 nnz) and a dense core tail (~900 rows of 512–1024 nnz) that
/// carries most of the bytes — the Table I row-1 shape at serving
/// resolution. A whole-matrix kernel pays a tile per empty row here;
/// the bucketed partition drops them outright.
fn liver_beam1_matrix() -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(1337);
    let ncols = 8192;
    let rows: Vec<Vec<(usize, f64)>> = (0..800_000)
        .map(|i| {
            if i % 889 == 0 {
                // Core voxel: hit by hundreds of overlapping spots.
                let len: usize = rng.gen_range(512..=1024);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            } else if rng.gen_bool(0.05) {
                // Shell voxel: grazed by one or two scattered spots.
                let len = rng.gen_range(1..=2);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    m.convert_values()
}

fn livergrad_width_entry_name(w: u32) -> &'static str {
    match w {
        2 => "livergrad_grad_w2",
        4 => "livergrad_grad_w4",
        8 => "livergrad_grad_w8",
        16 => "livergrad_grad_w16",
        32 => "livergrad_grad_w32",
        _ => unreachable!("width {w} is not in TILE_WIDTHS"),
    }
}

/// Deterministic "liver gradient" optimizer shape: one beam's dose
/// shell over the *full plan's* beamlet axis (480k beamlets). The
/// interesting operand is the **transpose** (one beamlet per row —
/// what every gradient `Aᵀ r` runs over): ~98% of beamlet rows are
/// empty (beams that never graze this shell), a handful of
/// central-axis beamlets deposit along their whole track through the
/// grid (256–512 voxels each), and a ~2% fringe of edge beamlets
/// graze one or two shell voxels. No single tile width suits both
/// populations, and a whole-transpose kernel pays a tile per silent
/// beamlet on every gradient — the same Table I skew the forward-path
/// liver beam-1 suite has, now on the backward operand. The bucketed
/// partition of the transpose drops the silent rows and splits the
/// fringe from the tracks; this is the shape the §4g gradient
/// partition exists for. Built transpose-first, returned as the
/// forward voxels × beamlets operand.
fn liver_grad_matrix() -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(2021);
    let nvoxels = 32_768;
    let beamlet_rows: Vec<Vec<(usize, f64)>> = (0..480_000)
        .map(|i| {
            if i % 4_666 == 0 {
                // Central-axis beamlet: deposits along its whole track.
                let len: usize = rng.gen_range(256..=512);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..nvoxels)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            } else if rng.gen_bool(0.02) {
                // Edge beamlet: grazes one or two shell voxels.
                let len = rng.gen_range(1..=2);
                let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..nvoxels)).collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, rng.gen_range(0.0..2.0)))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let t: Csr<f64, u32> = Csr::from_rows(nvoxels, &beamlet_rows).unwrap();
    let t: Csr<F16, u32> = t.convert_values();
    t.transpose()
}

/// Times the bucketed row-partition dispatch with its probe-autotuned
/// per-bucket widths; attaches the per-bucket breakdown of the last
/// (warm-cache) launch.
fn time_partitioned(
    name: &'static str,
    csr: &Csr<F16, u32>,
    device: &DeviceSpec,
    warmup: usize,
    samples: usize,
) -> Measurement {
    let choice = KernelSelect::Partitioned(PartitionStrategy::MeasuredProbe)
        .choose(device, csr, 512)
        .expect("partitioned probe cannot fail on a valid matrix");
    let mut widths = BucketWidths::natural();
    for bc in &choice.buckets {
        widths.0[bc.bucket] = bc.tile_width;
    }
    let plan = Arc::new(RowPlan::from_csr(csr));
    let gpu = Gpu::new(device.clone());
    let m = GpuCsrMatrix::upload(&gpu, csr);
    let gplan = GpuRowPlan::upload(&gpu, plan.clone());
    let x = gpu.upload(&vec![1.0f64; csr.ncols()]);
    let y = gpu.alloc_out::<f64>(csr.nrows());
    let profile = profile_half_double();
    let mut last: Option<GroupStats> = None;
    let mut meas = time_kernel(
        name,
        csr.nnz() as u64,
        device,
        &profile,
        warmup,
        samples,
        || {
            let g = vector_csr_spmv_bucketed(&gpu, &m, &x, &y, 512, &gplan, widths);
            let merged = g.merged.clone();
            last = Some(g);
            merged
        },
    );
    let group = last.expect("at least one timed launch");
    let report = rt_core::bucketed_group_report(device, &profile, &plan, &group);
    meas.buckets = Some(report.buckets);
    meas
}

/// Times the row-sharded multi-device dispatch: `pool` nnz-balanced row
/// shards, one resident per device of a `pool`-wide group of identical
/// devices, every shard running the bucketed dispatch at the globally
/// pinned (probe-autotuned) widths. The modeled figure is the pool's
/// critical path — `max` over shards of compute plus the interconnect
/// gather of the shard's rows — i.e. what one cooperative request
/// finishes in.
fn time_sharded(
    name: &'static str,
    csr: &Csr<F16, u32>,
    device: &DeviceSpec,
    pool: usize,
    warmup: usize,
    samples: usize,
) -> Measurement {
    let choice = KernelSelect::Partitioned(PartitionStrategy::MeasuredProbe)
        .choose(device, csr, 512)
        .expect("partitioned probe cannot fail on a valid matrix");
    let mut widths = BucketWidths::natural();
    for bc in &choice.buckets {
        widths.0[bc.bucket] = bc.tile_width;
    }
    let dispatch = ShardDispatch::Bucketed(widths);
    let plan = ShardPlan::build(csr, pool);
    let group = DeviceGroup::new(vec![device.clone(); pool]);
    let sm = ShardedCsr::upload(&group, &plan);
    let x = vec![1.0f64; csr.ncols()];
    let profile = profile_half_double();
    let run = || {
        vector_csr_spmv_sharded(&group, &sm, &x, 512, dispatch, &profile)
            .expect("sharded dispatch cannot fail on validated widths")
            .1
    };
    let mut last: ShardedReport = run();
    for _ in 1..warmup {
        last = run();
    }
    let samples_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            last = run();
            t.elapsed().as_nanos() as f64
        })
        .collect();

    // Pool-level record: merged counters; seconds and the derived rates
    // rebuilt around the critical path (the per-device estimator has no
    // notion of concurrent shards or the gather hop).
    let mut estimate = timing::estimate(device, &profile, &last.stats);
    estimate.seconds = last.modeled_seconds;
    estimate.gflops = last.stats.flops as f64 / last.modeled_seconds / 1e9;
    let dram = (last.stats.dram_read_bytes + last.stats.dram_write_bytes) as f64;
    estimate.dram_bw_gbps = dram / last.modeled_seconds / 1e9;
    estimate.frac_peak_bw = dram / last.modeled_seconds / (device.dram_bw * pool as f64);
    Measurement {
        name,
        ns_per_iter: median_ns(samples_ns),
        nnz: csr.nnz() as u64,
        sectors_per_launch: sectors(&last.stats),
        tile_width: None,
        lanes_active_frac: None,
        speedup_vs_warp32: None,
        sim_speedup_vs_warp32: None,
        speedup_vs_autotuned_w: None,
        sim_speedup_vs_best_fixed: None,
        grad_speedup_vs_whole: None,
        buckets: None,
        sim_speedup_vs_one_device: None,
        shards: Some(last.shards.clone()),
        report: LaunchReport::new(
            profile.name.clone(),
            format!("{} x{}", device.name, pool),
            last.stats.clone(),
            estimate,
        ),
    }
}

/// Modeled placement verdict for one plan on the mixed 4-device demo
/// pool (2×A100 + V100 + P100) — the same break-even model the serving
/// engine's `ShardSpec::Auto` runs at plan registration.
///
/// * `breakeven` sweeps K=1..=pool on the full pool (shard `i` homes on
///   the `i`-th fastest device, throughput-weighted cuts).
/// * `r2_throughput_ratio` compares two concurrent requests under R=2
///   (pool snake-dealt into two bandwidth-matched groups, each serving
///   one whole request at its own break-even K) against R=1 serializing
///   two pool-wide K=pool fan-outs back-to-back.
struct PlacementVerdict {
    breakeven: ShardBreakEven,
    t_k1: f64,
    t_kpool: f64,
    t_auto: f64,
    group_seconds: Vec<f64>,
    r2_throughput_ratio: f64,
}

fn placement_pool() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::a100(),
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::p100(),
    ]
}

/// `whole_seconds` is the plan's modeled whole-matrix time on the pool's
/// reference (fastest) device — a measured-probe figure where one
/// exists, the analytic [`modeled_whole_seconds`] otherwise.
fn placement_verdict(whole_seconds: f64, nonempty_rows: usize) -> PlacementVerdict {
    let pool = placement_pool();
    let breakeven = choose_shard_count(&pool, whole_seconds, nonempty_rows, pool.len());
    let t_k1 = breakeven.candidates[0].modeled_seconds;
    let t_kpool = breakeven.candidates[pool.len() - 1].modeled_seconds;
    let t_auto = breakeven.candidates[breakeven.k - 1].modeled_seconds;

    let weights: Vec<f64> = pool.iter().map(|d| d.effective_dram_bw()).collect();
    let group_seconds = group_seconds_over(
        &pool,
        &snake_partition(&weights, 2),
        whole_seconds,
        nonempty_rows,
    );
    let slowest_group = group_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
    PlacementVerdict {
        breakeven,
        t_k1,
        t_kpool,
        t_auto,
        group_seconds,
        r2_throughput_ratio: 2.0 * t_kpool / slowest_group,
    }
}

/// Modeled time of each replica group over `members` (absolute pool
/// indices), at the group's own break-even K. The whole-matrix time is
/// rescaled from the pool's reference device to the group's own
/// reference device — the same scaling the engine applies at placement.
fn group_seconds_over(
    pool: &[DeviceSpec],
    groups: &[Vec<usize>],
    whole_seconds: f64,
    nonempty_rows: usize,
) -> Vec<f64> {
    let reference = &pool[0];
    let work = (whole_seconds - reference.launch_overhead_s).max(0.0);
    groups
        .iter()
        .map(|members| {
            let devs: Vec<DeviceSpec> = members.iter().map(|&i| pool[i].clone()).collect();
            let scaled = devs[0].launch_overhead_s
                + work * reference.effective_dram_bw() / devs[0].effective_dram_bw();
            let gbe = choose_shard_count(&devs, scaled, nonempty_rows, devs.len());
            gbe.candidates[gbe.k - 1].modeled_seconds
        })
        .collect()
}

/// Modeled drain-recovery verdict on the mixed 4-device pool: R=2
/// snake-dealt groups pre-drain, then the P100 (pool device 3) taken
/// out for maintenance.
///
/// * `naive_throughput` keeps the registration-time deal — the group
///   that placed shards on the drained device can accept no new
///   fan-outs, so only the untouched groups keep serving;
/// * `redealt_throughput` is the engine's live re-deal
///   (`snake_partition_subset` over the survivors, each group back at
///   its own break-even K) — what `drain_device` swaps in.
struct RebalanceVerdict {
    drained_name: &'static str,
    pre_group_seconds: Vec<f64>,
    pre_throughput: f64,
    naive_throughput: f64,
    redealt_group_seconds: Vec<f64>,
    redealt_throughput: f64,
}

fn rebalance_verdict(whole_seconds: f64, nonempty_rows: usize) -> RebalanceVerdict {
    let pool = placement_pool();
    let weights: Vec<f64> = pool.iter().map(|d| d.effective_dram_bw()).collect();
    let drained = pool.len() - 1;
    let pre_groups = snake_partition(&weights, 2);
    let pre_group_seconds = group_seconds_over(&pool, &pre_groups, whole_seconds, nonempty_rows);
    let pre_throughput = modeled_pool_throughput(&pre_group_seconds);
    let naive: Vec<f64> = pre_groups
        .iter()
        .zip(&pre_group_seconds)
        .filter(|(members, _)| !members.contains(&drained))
        .map(|(_, &s)| s)
        .collect();
    let naive_throughput = modeled_pool_throughput(&naive);
    let live: Vec<usize> = (0..pool.len()).filter(|&d| d != drained).collect();
    let redealt = snake_partition_subset(&weights, &live, 2);
    let redealt_group_seconds = group_seconds_over(&pool, &redealt, whole_seconds, nonempty_rows);
    let redealt_throughput = modeled_pool_throughput(&redealt_group_seconds);
    RebalanceVerdict {
        drained_name: pool[drained].name,
        pre_group_seconds,
        pre_throughput,
        naive_throughput,
        redealt_group_seconds,
        redealt_throughput,
    }
}

fn render_rebalance(v: &RebalanceVerdict) -> String {
    let us = |xs: &[f64]| {
        xs.iter()
            .map(|s| format!("{:.3}", s * 1e6))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("  \"rebalance\": {\n");
    writeln!(out, "    \"drained_device\": \"{}\",", v.drained_name).unwrap();
    writeln!(out, "    \"pre_group_us\": [{}],", us(&v.pre_group_seconds)).unwrap();
    writeln!(
        out,
        "    \"pre_throughput_per_s\": {:.1},",
        v.pre_throughput
    )
    .unwrap();
    writeln!(
        out,
        "    \"naive_throughput_per_s\": {:.1},",
        v.naive_throughput
    )
    .unwrap();
    writeln!(
        out,
        "    \"redealt_group_us\": [{}],",
        us(&v.redealt_group_seconds)
    )
    .unwrap();
    writeln!(
        out,
        "    \"redealt_throughput_per_s\": {:.1},",
        v.redealt_throughput
    )
    .unwrap();
    writeln!(
        out,
        "    \"recovery_ratio\": {:.3},",
        v.redealt_throughput / v.pre_throughput
    )
    .unwrap();
    writeln!(
        out,
        "    \"naive_ratio\": {:.3}",
        v.naive_throughput / v.pre_throughput
    )
    .unwrap();
    out.push_str("  },\n");
    out
}

fn render_placement(liver: &PlacementVerdict, prostate: &PlacementVerdict) -> String {
    let mut out = String::new();
    out.push_str("  \"placement\": {\n");
    out.push_str("    \"pool\": [\"A100\", \"A100\", \"V100\", \"P100\"],\n");
    writeln!(out, "    \"liver_auto_k\": {},", liver.breakeven.k).unwrap();
    out.push_str("    \"liver_breakeven_us\": [");
    for (i, p) in liver.breakeven.candidates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(
            out,
            "{{\"k\": {}, \"modeled_us\": {:.3}}}",
            p.k,
            p.modeled_seconds * 1e6
        )
        .unwrap();
    }
    out.push_str("],\n");
    writeln!(
        out,
        "    \"liver_auto_speedup_vs_k1\": {:.2},",
        liver.t_k1 / liver.t_auto
    )
    .unwrap();
    writeln!(
        out,
        "    \"liver_auto_speedup_vs_kpool\": {:.2},",
        liver.t_kpool / liver.t_auto
    )
    .unwrap();
    out.push_str("    \"liver_r2_group_us\": [");
    for (i, s) in liver.group_seconds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{:.3}", s * 1e6).unwrap();
    }
    out.push_str("],\n");
    writeln!(
        out,
        "    \"liver_r2_throughput_ratio_vs_r1\": {:.2},",
        liver.r2_throughput_ratio
    )
    .unwrap();
    writeln!(out, "    \"prostate_auto_k\": {}", prostate.breakeven.k).unwrap();
    out.push_str("  },\n");
    out
}

fn render_json(
    measurements: &[Measurement],
    workers: usize,
    auto: &KernelChoice,
    placement: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"sim_kernels\",").unwrap();
    writeln!(out, "  \"schema_version\": 2,").unwrap();
    writeln!(out, "  \"mode\": \"parallel\",").unwrap();
    writeln!(out, "  \"workers\": {workers},").unwrap();
    writeln!(
        out,
        "  \"shortrow_autotune\": {{\"mode\": \"{}\", \"tile_width\": {}, \"avg_nnz_nonempty\": {:.2}}},",
        auto.mode, auto.tile_width, auto.avg_nnz_nonempty
    )
    .unwrap();
    out.push_str(placement);
    out.push_str("  \"kernels\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let per_sec = 1e9 / m.ns_per_iter;
        let baseline = BASELINE_NS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, ns)| *ns);
        out.push_str("    {\n");
        writeln!(out, "      \"name\": \"{}\",", m.name).unwrap();
        writeln!(out, "      \"suite\": \"{}\",", suite_id(m.name)).unwrap();
        writeln!(out, "      \"ns_per_iter\": {:.1},", m.ns_per_iter).unwrap();
        writeln!(out, "      \"nnz\": {},", m.nnz).unwrap();
        writeln!(
            out,
            "      \"nnz_per_sec\": {:.4e},",
            m.nnz as f64 * per_sec
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_launch\": {},",
            m.sectors_per_launch
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_sec\": {:.4e},",
            m.sectors_per_launch as f64 * per_sec
        )
        .unwrap();
        if let Some(w) = m.tile_width {
            writeln!(out, "      \"tile_width\": {w},").unwrap();
        }
        if let Some(f) = m.lanes_active_frac {
            writeln!(out, "      \"lanes_active_frac\": {f:.4},").unwrap();
        }
        if let Some(s) = m.speedup_vs_warp32 {
            writeln!(out, "      \"speedup_vs_warp32\": {s:.2},").unwrap();
        }
        if let Some(s) = m.sim_speedup_vs_warp32 {
            writeln!(out, "      \"sim_speedup_vs_warp32\": {s:.2},").unwrap();
        }
        if let Some(s) = m.speedup_vs_autotuned_w {
            writeln!(out, "      \"speedup_vs_autotuned_w\": {s:.2},").unwrap();
        }
        if let Some(s) = m.sim_speedup_vs_best_fixed {
            writeln!(out, "      \"sim_speedup_vs_best_fixed\": {s:.2},").unwrap();
        }
        if let Some(s) = m.grad_speedup_vs_whole {
            writeln!(out, "      \"grad_speedup_vs_whole\": {s:.2},").unwrap();
        }
        if let Some(s) = m.sim_speedup_vs_one_device {
            writeln!(out, "      \"sim_speedup_vs_one_device\": {s:.2},").unwrap();
        }
        if let Some(shards) = &m.shards {
            out.push_str("      \"shards\": [");
            for (j, s) in shards.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write!(
                    out,
                    "{{\"shard\": {}, \"device\": \"{}\", \"row_start\": {}, \"rows\": {}, \"nnz\": {}, \"modeled_us\": {:.3}, \"gather_us\": {:.3}}}",
                    s.shard,
                    s.device,
                    s.row_start,
                    s.rows,
                    s.nnz,
                    s.estimate.seconds * 1e6,
                    s.gather_seconds * 1e6
                )
                .unwrap();
            }
            out.push_str("],\n");
        }
        if let Some(buckets) = &m.buckets {
            out.push_str("      \"buckets\": [");
            for (j, b) in buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write!(
                    out,
                    "{{\"label\": \"{}\", \"tile_width\": {}, \"rows\": {}, \"lanes_active_frac\": {:.4}}}",
                    b.label, b.tile_width, b.rows, b.lanes_active_frac
                )
                .unwrap();
            }
            out.push_str("],\n");
        }
        match baseline {
            Some(ns) => {
                writeln!(out, "      \"baseline_ns_per_iter\": {ns:.1},").unwrap();
                writeln!(
                    out,
                    "      \"speedup_vs_baseline\": {:.2},",
                    ns / m.ns_per_iter
                )
                .unwrap();
            }
            None => writeln!(out, "      \"baseline_ns_per_iter\": null,").unwrap(),
        }
        // The unified LaunchReport shape (same as the serving engine's
        // per-response reports and DoseCalculator results).
        writeln!(out, "      \"report\": {}", m.report.to_json_indented(6)).unwrap();
        out.push_str(if i + 1 == measurements.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Trimmed CI gate. Two checks, both on warm-cache modeled time (host
/// timing is too noisy to gate on):
///
/// 1. short-row suite: the whole-matrix autotuned pick must not be
///    modeled slower than fixed warp-per-row;
/// 2. liver beam-1 suite: the partitioned autotuned pick must not be
///    modeled slower than the best fixed-width whole-matrix kernel.
fn quick_smoke() -> ! {
    let device = DeviceSpec::a100();
    let csr = short_row_matrix();
    let row_stats = RowStats::from_csr(&csr);
    let choice = KernelSelect::MeasuredProbe
        .choose(&device, &csr, 512)
        .expect("probe cannot fail on a valid matrix");
    let warp32 = time_shortrow("shortrow_warp32", &csr, &row_stats, 32, true, &device, 1, 5);
    let auto = time_shortrow(
        "shortrow_tiled_auto",
        &csr,
        &row_stats,
        choice.tile_width,
        choice.tile_width == 32,
        &device,
        1,
        5,
    );
    let (w32_s, auto_s) = (warp32.report.estimate.seconds, auto.report.estimate.seconds);
    println!(
        "quick: autotuned w{} ({}): {:.3} us modeled vs warp32 {:.3} us ({:.2}x), host {:.2}x",
        choice.tile_width,
        choice.mode,
        auto_s * 1e6,
        w32_s * 1e6,
        w32_s / auto_s,
        warp32.ns_per_iter / auto.ns_per_iter,
    );
    let mut failed = false;
    if auto_s > w32_s {
        eprintln!(
            "FAIL: autotuned tile width {} is modeled slower than warp-per-row",
            choice.tile_width
        );
        failed = true;
    }

    let liver = liver_beam1_matrix();
    let liver_stats = RowStats::from_csr(&liver);
    let best_fixed = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                liver_width_entry_name(w),
                &liver,
                &liver_stats,
                w,
                w == 32,
                &device,
                1,
                2,
            )
            .report
            .estimate
            .seconds
        })
        .fold(f64::INFINITY, f64::min);
    let part = time_partitioned("liverb1_partitioned", &liver, &device, 1, 2);
    let part_s = part.report.estimate.seconds;
    println!(
        "quick: partitioned: {:.3} us modeled vs best fixed {:.3} us ({:.2}x)",
        part_s * 1e6,
        best_fixed * 1e6,
        best_fixed / part_s,
    );
    if part_s > best_fixed {
        eprintln!("FAIL: partitioned dispatch is modeled slower than the best fixed width");
        failed = true;
    }

    // Gate 3: one request sharded across a 3-device pool must model a
    // real cooperative win over the same dispatch on one device — gather
    // cost and per-shard launch overhead included.
    let sharded = time_sharded("liverb1_sharded_x3", &liver, &device, 3, 1, 2);
    let shard_s = sharded.report.estimate.seconds;
    println!(
        "quick: sharded x3: {:.3} us modeled critical path vs one device {:.3} us ({:.2}x)",
        shard_s * 1e6,
        part_s * 1e6,
        part_s / shard_s,
    );
    if part_s / shard_s < 1.6 {
        eprintln!("FAIL: 3-device sharded dispatch models less than 1.6x one device");
        failed = true;
    }

    // Gates 4-6: the placement break-even model on the mixed 4-device
    // pool. The liver plan must find an interior optimum (auto-K strictly
    // beats both K=1 and K=pool), two R=2 concurrent requests must model
    // >1.5x the throughput of R=1 serializing pool-wide fan-outs, and
    // the small prostate plan must stay at K=1 (break-even sanity).
    let liver_place = placement_verdict(part_s, liver.nrows() - liver_stats.empty_rows);
    println!(
        "quick: placement: liver auto K={} ({:.3} us) vs K=1 {:.3} us, K=4 {:.3} us; R2/R1 throughput {:.2}x",
        liver_place.breakeven.k,
        liver_place.t_auto * 1e6,
        liver_place.t_k1 * 1e6,
        liver_place.t_kpool * 1e6,
        liver_place.r2_throughput_ratio,
    );
    if liver_place.t_auto >= liver_place.t_k1 || liver_place.t_auto >= liver_place.t_kpool {
        eprintln!("FAIL: liver auto shard count does not beat both forced K=1 and K=pool");
        failed = true;
    }
    if liver_place.r2_throughput_ratio <= 1.5 {
        eprintln!("FAIL: R=2 concurrent placement models <= 1.5x R=1 serialized fan-out");
        failed = true;
    }
    let prostate: Csr<F16, u32> = prostate_case(ScaleConfig { shrink: 12.0 })
        .remove(0)
        .matrix
        .convert_values();
    let prostate_stats = RowStats::from_csr(&prostate);
    let prostate_whole = modeled_whole_seconds(
        &device,
        prostate.nrows(),
        prostate.ncols(),
        prostate.nnz(),
        2,
        4,
    );
    let prostate_place =
        placement_verdict(prostate_whole, prostate.nrows() - prostate_stats.empty_rows);
    println!(
        "quick: placement: prostate auto K={} (whole {:.3} us)",
        prostate_place.breakeven.k,
        prostate_whole * 1e6,
    );
    if prostate_place.breakeven.k != 1 {
        eprintln!(
            "FAIL: small prostate plan auto-picked K={} instead of 1",
            prostate_place.breakeven.k
        );
        failed = true;
    }

    // Gate 7: the backward-pass partition. On the liver gradient shape
    // (the transpose is ~96% empty beamlet rows), the bucketed
    // transpose dispatch must model at least 1.4x the best fixed-width
    // whole-transpose kernel — the gradient-direction counterpart of
    // gate 2, and the acceptance bar for the §4g gradient partition.
    let grad_case = liver_grad_matrix();
    let grad_t: Csr<F16, u32> = grad_case.transpose();
    let bwd_stats = RowStats::from_csr(&grad_t);
    let grad_best_fixed = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                livergrad_width_entry_name(w),
                &grad_t,
                &bwd_stats,
                w,
                w == 32,
                &device,
                1,
                2,
            )
            .report
            .estimate
            .seconds
        })
        .fold(f64::INFINITY, f64::min);
    let grad_part = time_partitioned("livergrad_grad_partitioned", &grad_t, &device, 1, 2);
    let grad_part_s = grad_part.report.estimate.seconds;
    println!(
        "quick: gradient partitioned: {:.3} us modeled vs best fixed whole-transpose {:.3} us ({:.2}x)",
        grad_part_s * 1e6,
        grad_best_fixed * 1e6,
        grad_best_fixed / grad_part_s,
    );
    if grad_best_fixed / grad_part_s < 1.4 {
        eprintln!(
            "FAIL: partitioned transpose dispatch models less than 1.4x the best fixed width"
        );
        failed = true;
    }
    // Gate 8: drain recovery. Taking the P100 out of the mixed pool
    // mid-session and re-dealing R=2 groups over the three survivors
    // must recover at least 80% of the pre-drain modeled throughput on
    // the liver plan (the naive no-re-deal figure is reported for
    // contrast: the group that lost its member stops serving).
    let rebal = rebalance_verdict(part_s, liver.nrows() - liver_stats.empty_rows);
    println!(
        "quick: rebalance: drain {}: pre {:.0}/s -> naive {:.0}/s, re-dealt {:.0}/s (recovery {:.2}x)",
        rebal.drained_name,
        rebal.pre_throughput,
        rebal.naive_throughput,
        rebal.redealt_throughput,
        rebal.redealt_throughput / rebal.pre_throughput,
    );
    if rebal.redealt_throughput < 0.8 * rebal.pre_throughput {
        eprintln!("FAIL: post-drain re-dealt throughput recovers less than 80% of pre-drain");
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_smoke();
    }

    const WARMUP: usize = 3;
    const SAMPLES: usize = 15;
    let device = DeviceSpec::a100();

    // Suite 1: the paper's prostate case, warp-per-row vector kernel vs
    // the reduced-precision baseline pipeline.
    let case = prostate_case(ScaleConfig { shrink: 12.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);
    let weights = vec![1.0f64; csr.ncols()];
    let nnz = csr.nnz() as u64;

    let vector = {
        let gpu = Gpu::new(device.clone());
        let m = GpuCsrMatrix::upload(&gpu, &csr);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(csr.nrows());
        time_kernel(
            "vector_csr_half_double",
            nnz,
            &device,
            &profile_half_double(),
            WARMUP,
            SAMPLES,
            || vector_csr_spmv(&gpu, &m, &x, &y, 512),
        )
    };
    let baseline = {
        let gpu = Gpu::new(device.clone());
        let m = GpuRsMatrix::upload(&gpu, &rs);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(rs.nrows());
        time_kernel(
            "baseline_segment_atomic",
            nnz,
            &device,
            &profile_baseline(),
            WARMUP,
            SAMPLES,
            || {
                y.clear();
                rs_baseline_gpu_spmv(&gpu, &m, &x, &y, 128)
            },
        )
    };

    // Suite 2: the short-row demo matrix across every tile width plus
    // the autotuned pick, all against fixed warp-per-row.
    let short = short_row_matrix();
    let short_stats = RowStats::from_csr(&short);
    let choice = KernelSelect::MeasuredProbe
        .choose(&device, &short, 512)
        .expect("probe cannot fail on a valid matrix");

    let warp32 = time_shortrow(
        "shortrow_warp32",
        &short,
        &short_stats,
        32,
        true,
        &device,
        WARMUP,
        SAMPLES,
    );
    let mut tiled: Vec<Measurement> = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                width_entry_name(w),
                &short,
                &short_stats,
                w,
                false,
                &device,
                WARMUP,
                SAMPLES,
            )
        })
        .collect();
    tiled.push(time_shortrow(
        "shortrow_tiled_auto",
        &short,
        &short_stats,
        choice.tile_width,
        choice.tile_width == 32,
        &device,
        WARMUP,
        SAMPLES,
    ));
    let (w32_ns, w32_s) = (warp32.ns_per_iter, warp32.report.estimate.seconds);
    for m in &mut tiled {
        m.speedup_vs_warp32 = Some(w32_ns / m.ns_per_iter);
        m.sim_speedup_vs_warp32 = Some(w32_s / m.report.estimate.seconds);
    }

    // Suite 3: the liver beam-1 serving shape — every fixed width, the
    // whole-matrix autotuned pick, and the bucketed row partition.
    let liver = liver_beam1_matrix();
    let liver_stats = RowStats::from_csr(&liver);
    let liver_choice = KernelSelect::MeasuredProbe
        .choose(&device, &liver, 512)
        .expect("probe cannot fail on a valid matrix");
    let liver_fixed: Vec<Measurement> = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                liver_width_entry_name(w),
                &liver,
                &liver_stats,
                w,
                w == 32,
                &device,
                2,
                7,
            )
        })
        .collect();
    let liver_auto = time_shortrow(
        "liverb1_tiled_auto",
        &liver,
        &liver_stats,
        liver_choice.tile_width,
        liver_choice.tile_width == 32,
        &device,
        2,
        7,
    );
    let mut liver_part = time_partitioned("liverb1_partitioned", &liver, &device, 2, 7);
    let liver_w32 = liver_fixed
        .iter()
        .find(|m| m.tile_width == Some(32))
        .expect("width 32 is always timed");
    let (lw32_ns, lw32_s) = (liver_w32.ns_per_iter, liver_w32.report.estimate.seconds);
    let best_fixed_s = liver_fixed
        .iter()
        .map(|m| m.report.estimate.seconds)
        .fold(f64::INFINITY, f64::min);
    liver_part.speedup_vs_warp32 = Some(lw32_ns / liver_part.ns_per_iter);
    liver_part.sim_speedup_vs_warp32 = Some(lw32_s / liver_part.report.estimate.seconds);
    liver_part.speedup_vs_autotuned_w = Some(liver_auto.ns_per_iter / liver_part.ns_per_iter);
    liver_part.sim_speedup_vs_best_fixed = Some(best_fixed_s / liver_part.report.estimate.seconds);
    let mut liver_entries = liver_fixed;
    liver_entries.push(liver_auto);
    for m in &mut liver_entries {
        m.speedup_vs_warp32 = Some(lw32_ns / m.ns_per_iter);
        m.sim_speedup_vs_warp32 = Some(lw32_s / m.report.estimate.seconds);
    }
    let liver_part_s = liver_part.report.estimate.seconds;
    liver_entries.push(liver_part);

    // Suite 4: the same liver shape row-sharded across a 3×A100 pool —
    // one cooperative request, nnz-balanced shards, gather on the
    // critical path. Compared against the same bucketed dispatch fully
    // resident on one device.
    let mut liver_sharded = time_sharded("liverb1_sharded_x3", &liver, &device, 3, 2, 7);
    liver_sharded.sim_speedup_vs_one_device =
        Some(liver_part_s / liver_sharded.report.estimate.seconds);
    liver_entries.push(liver_sharded);

    // Suite 6: the liver gradient shape — the backward pass `Aᵀ r` as
    // every fixed-width whole-transpose kernel and as the bucketed
    // partition of the transpose (what `gradient_csr_spmv_bucketed`
    // runs), with one forward entry alongside so the report carries
    // forward vs backward lane occupancy for the same plan.
    let grad_case = liver_grad_matrix();
    let grad_t: Csr<F16, u32> = grad_case.transpose();
    let fwd_stats = RowStats::from_csr(&grad_case);
    let bwd_stats = RowStats::from_csr(&grad_t);
    let fwd_choice = KernelSelect::MeasuredProbe
        .choose(&device, &grad_case, 512)
        .expect("probe cannot fail on a valid matrix");
    let mut grad_entries = vec![time_shortrow(
        "livergrad_forward_auto",
        &grad_case,
        &fwd_stats,
        fwd_choice.tile_width,
        fwd_choice.tile_width == 32,
        &device,
        2,
        7,
    )];
    let grad_fixed: Vec<Measurement> = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                livergrad_width_entry_name(w),
                &grad_t,
                &bwd_stats,
                w,
                w == 32,
                &device,
                2,
                7,
            )
        })
        .collect();
    let grad_w32 = grad_fixed
        .iter()
        .find(|m| m.tile_width == Some(32))
        .expect("width 32 is always timed");
    let (gw32_ns, gw32_s) = (grad_w32.ns_per_iter, grad_w32.report.estimate.seconds);
    let grad_best_fixed_s = grad_fixed
        .iter()
        .map(|m| m.report.estimate.seconds)
        .fold(f64::INFINITY, f64::min);
    let mut grad_part = time_partitioned("livergrad_grad_partitioned", &grad_t, &device, 2, 7);
    grad_part.speedup_vs_warp32 = Some(gw32_ns / grad_part.ns_per_iter);
    grad_part.sim_speedup_vs_warp32 = Some(gw32_s / grad_part.report.estimate.seconds);
    grad_part.grad_speedup_vs_whole = Some(grad_best_fixed_s / grad_part.report.estimate.seconds);
    grad_entries.extend(grad_fixed);
    for m in &mut grad_entries[1..] {
        m.speedup_vs_warp32 = Some(gw32_ns / m.ns_per_iter);
        m.sim_speedup_vs_warp32 = Some(gw32_s / m.report.estimate.seconds);
    }
    grad_entries.push(grad_part);

    // Suite 5: the placement break-even model on the mixed 4-device pool
    // — what `ExecPolicy` with `ShardSpec::Auto` resolves to for each
    // plan. Liver uses the measured partitioned time as its whole-matrix
    // figure; prostate uses the analytic estimate (the engine's fallback
    // when no probe ran).
    let liver_place = placement_verdict(liver_part_s, liver.nrows() - liver_stats.empty_rows);
    let prostate_stats = RowStats::from_csr(&csr);
    let prostate_whole = modeled_whole_seconds(&device, csr.nrows(), csr.ncols(), csr.nnz(), 2, 4);
    let prostate_place = placement_verdict(prostate_whole, csr.nrows() - prostate_stats.empty_rows);
    // Suite 7: drain recovery on the same pool — what `drain_device`
    // models when the P100 leaves mid-session and every placed plan is
    // re-dealt over the survivors (the `rebalance` JSON object).
    let liver_rebalance = rebalance_verdict(liver_part_s, liver.nrows() - liver_stats.empty_rows);
    let placement_json = format!(
        "{}{}",
        render_placement(&liver_place, &prostate_place),
        render_rebalance(&liver_rebalance)
    );

    let mut measurements = vec![vector, baseline, warp32];
    measurements.extend(tiled);
    measurements.extend(liver_entries);
    measurements.extend(grad_entries);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = render_json(&measurements, workers, &choice, &placement_json);
    print!("{json}");
    let path = "BENCH_simspeed.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[could not save {path}: {e}]"),
    }
}
