//! Simulator throughput tracker: times the `sim_kernels` workloads and
//! emits machine-readable `BENCH_simspeed.json` so the perf trajectory is
//! tracked across PRs.
//!
//! Two suites:
//!
//! * the prostate case (paper workload) timing the warp-per-row vector
//!   kernel against the recorded pre-batching baseline, and
//! * a deterministic short-row demo matrix (avg nnz per non-empty row
//!   ≈ 4.5) timing every sub-warp tile width plus the autotuned pick
//!   against fixed warp-per-row — the shape the row-adaptive tiles
//!   exist for.
//!
//! Reported per kernel: median wall-clock per launch, simulated non-zeros
//! per second, simulated L2 sector transactions per second, and (for the
//! short-row suite) `tile_width`, `lanes_active_frac`, host
//! `speedup_vs_warp32` and modeled `sim_speedup_vs_warp32`.
//!
//! `--quick` runs a trimmed smoke check (warp-per-row vs the autotuned
//! pick only, no file write) and exits non-zero if the autotuned kernel's
//! simulated estimate is slower than warp-per-row — the CI gate for the
//! autotuner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_core::{
    profile_baseline, profile_half_double, rs_baseline_gpu_spmv, vector_csr_spmv,
    vector_csr_spmv_tiled, GpuCsrMatrix, GpuRsMatrix, KernelChoice, KernelSelect, TILE_WIDTHS,
};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_gpusim::{timing, DeviceSpec, Gpu, KernelProfile, KernelStats, LaunchReport};
use rt_sparse::stats::RowStats;
use rt_sparse::{Csr, RsCompressed};
use std::fmt::Write as _;
use std::time::Instant;

/// Medians recorded from the pre-batching pipeline (same workload, same
/// harness, `ExecMode::Parallel`) immediately before the rework landed.
const BASELINE_NS: &[(&str, f64)] = &[
    ("vector_csr_half_double", 8_936_737.0),
    ("baseline_segment_atomic", 8_906_043.0),
];

struct Measurement {
    name: &'static str,
    ns_per_iter: f64,
    nnz: u64,
    sectors_per_launch: u64,
    /// Short-row suite only: the tile width this entry ran at.
    tile_width: Option<u32>,
    /// Short-row suite only: fraction of lane slots carrying a stored
    /// entry at this width ([`RowStats::lanes_active_frac`](rt_sparse::stats::RowStats::lanes_active_frac)).
    lanes_active_frac: Option<f64>,
    /// Host wall-clock speedup over the fixed warp-per-row entry.
    speedup_vs_warp32: Option<f64>,
    /// Modeled-time speedup over the fixed warp-per-row entry.
    sim_speedup_vs_warp32: Option<f64>,
    /// Unified per-launch record (counters + modeled time) in the same
    /// shape the serving engine and the calculator emit.
    report: LaunchReport,
}

/// Total simulated L2 sector transactions in one launch.
fn sectors(s: &KernelStats) -> u64 {
    s.l2_read_hits + s.l2_read_misses + s.l2_write_sectors + s.atomic_ops
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn time_kernel(
    name: &'static str,
    nnz: u64,
    device: &DeviceSpec,
    profile: &KernelProfile,
    warmup: usize,
    samples: usize,
    mut launch: impl FnMut() -> KernelStats,
) -> Measurement {
    let mut stats = KernelStats::default();
    for _ in 0..warmup {
        stats = launch();
    }
    let samples: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            stats = launch();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let estimate = timing::estimate(device, profile, &stats);
    Measurement {
        name,
        ns_per_iter: median_ns(samples),
        nnz,
        sectors_per_launch: sectors(&stats),
        tile_width: None,
        lanes_active_frac: None,
        speedup_vs_warp32: None,
        sim_speedup_vs_warp32: None,
        report: LaunchReport::new(profile.name.clone(), device.name, stats, estimate),
    }
}

/// Deterministic short-row demo matrix: 60k voxel rows over 4096 spots,
/// ~30% empty, non-empty rows hold 1–8 entries (avg ≈ 4.5 nnz per
/// non-empty row). Warp-per-row wastes ≥ 24 of 32 lanes on every row
/// here; this is the shape the sub-warp tiles are for.
fn short_row_matrix() -> Csr<F16, u32> {
    let mut rng = StdRng::seed_from_u64(42);
    let ncols = 4096;
    let rows: Vec<Vec<(usize, f64)>> = (0..60_000)
        .map(|_| {
            if rng.gen_bool(0.3) {
                return Vec::new();
            }
            let len = rng.gen_range(1..=8);
            let mut cols: Vec<usize> = (0..len).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0..2.0)))
                .collect()
        })
        .collect();
    let m: Csr<f64, u32> = Csr::from_rows(ncols, &rows).unwrap();
    m.convert_values()
}

/// Times one short-row entry. `classic` dispatches the paper's
/// warp-per-row kernel (what width 32 resolves to in the calculator);
/// otherwise the tiled kernel runs at `width`.
#[allow(clippy::too_many_arguments)]
fn time_shortrow(
    name: &'static str,
    csr: &Csr<F16, u32>,
    row_stats: &RowStats,
    width: u32,
    classic: bool,
    device: &DeviceSpec,
    warmup: usize,
    samples: usize,
) -> Measurement {
    let gpu = Gpu::new(device.clone());
    let m = GpuCsrMatrix::upload(&gpu, csr);
    let x = gpu.upload(&vec![1.0f64; csr.ncols()]);
    let y = gpu.alloc_out::<f64>(csr.nrows());
    let mut meas = time_kernel(
        name,
        csr.nnz() as u64,
        device,
        &profile_half_double(),
        warmup,
        samples,
        || {
            if classic {
                vector_csr_spmv(&gpu, &m, &x, &y, 512)
            } else {
                vector_csr_spmv_tiled(&gpu, &m, &x, &y, 512, width)
            }
        },
    );
    meas.report.tile_width = width;
    meas.tile_width = Some(width);
    meas.lanes_active_frac = Some(row_stats.lanes_active_frac(width));
    meas
}

fn width_entry_name(w: u32) -> &'static str {
    match w {
        2 => "shortrow_tiled_w2",
        4 => "shortrow_tiled_w4",
        8 => "shortrow_tiled_w8",
        16 => "shortrow_tiled_w16",
        32 => "shortrow_tiled_w32",
        _ => unreachable!("width {w} is not in TILE_WIDTHS"),
    }
}

fn render_json(measurements: &[Measurement], workers: usize, auto: &KernelChoice) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"sim_kernels\",").unwrap();
    writeln!(out, "  \"mode\": \"parallel\",").unwrap();
    writeln!(out, "  \"workers\": {workers},").unwrap();
    writeln!(
        out,
        "  \"shortrow_autotune\": {{\"mode\": \"{}\", \"tile_width\": {}, \"avg_nnz_nonempty\": {:.2}}},",
        auto.mode, auto.tile_width, auto.avg_nnz_nonempty
    )
    .unwrap();
    out.push_str("  \"kernels\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let per_sec = 1e9 / m.ns_per_iter;
        let baseline = BASELINE_NS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, ns)| *ns);
        out.push_str("    {\n");
        writeln!(out, "      \"name\": \"{}\",", m.name).unwrap();
        writeln!(out, "      \"ns_per_iter\": {:.1},", m.ns_per_iter).unwrap();
        writeln!(out, "      \"nnz\": {},", m.nnz).unwrap();
        writeln!(
            out,
            "      \"nnz_per_sec\": {:.4e},",
            m.nnz as f64 * per_sec
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_launch\": {},",
            m.sectors_per_launch
        )
        .unwrap();
        writeln!(
            out,
            "      \"sectors_per_sec\": {:.4e},",
            m.sectors_per_launch as f64 * per_sec
        )
        .unwrap();
        if let Some(w) = m.tile_width {
            writeln!(out, "      \"tile_width\": {w},").unwrap();
        }
        if let Some(f) = m.lanes_active_frac {
            writeln!(out, "      \"lanes_active_frac\": {f:.4},").unwrap();
        }
        if let Some(s) = m.speedup_vs_warp32 {
            writeln!(out, "      \"speedup_vs_warp32\": {s:.2},").unwrap();
        }
        if let Some(s) = m.sim_speedup_vs_warp32 {
            writeln!(out, "      \"sim_speedup_vs_warp32\": {s:.2},").unwrap();
        }
        match baseline {
            Some(ns) => {
                writeln!(out, "      \"baseline_ns_per_iter\": {ns:.1},").unwrap();
                writeln!(
                    out,
                    "      \"speedup_vs_baseline\": {:.2},",
                    ns / m.ns_per_iter
                )
                .unwrap();
            }
            None => writeln!(out, "      \"baseline_ns_per_iter\": null,").unwrap(),
        }
        // The unified LaunchReport shape (same as the serving engine's
        // per-response reports and DoseCalculator results).
        writeln!(out, "      \"report\": {}", m.report.to_json_indented(6)).unwrap();
        out.push_str(if i + 1 == measurements.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Trimmed CI gate: warp-per-row vs the autotuned pick on the short-row
/// demo matrix. Exits 1 if the autotuned kernel's simulated estimate is
/// slower than fixed warp-per-row (host timing is too noisy to gate on).
fn quick_smoke() -> ! {
    let device = DeviceSpec::a100();
    let csr = short_row_matrix();
    let row_stats = RowStats::from_csr(&csr);
    let choice = KernelSelect::MeasuredProbe
        .choose(&device, &csr, 512)
        .expect("probe cannot fail on a valid matrix");
    let warp32 = time_shortrow("shortrow_warp32", &csr, &row_stats, 32, true, &device, 1, 5);
    let auto = time_shortrow(
        "shortrow_tiled_auto",
        &csr,
        &row_stats,
        choice.tile_width,
        choice.tile_width == 32,
        &device,
        1,
        5,
    );
    let (w32_s, auto_s) = (warp32.report.estimate.seconds, auto.report.estimate.seconds);
    println!(
        "quick: autotuned w{} ({}): {:.3} us modeled vs warp32 {:.3} us ({:.2}x), host {:.2}x",
        choice.tile_width,
        choice.mode,
        auto_s * 1e6,
        w32_s * 1e6,
        w32_s / auto_s,
        warp32.ns_per_iter / auto.ns_per_iter,
    );
    if auto_s > w32_s {
        eprintln!(
            "FAIL: autotuned tile width {} is modeled slower than warp-per-row",
            choice.tile_width
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_smoke();
    }

    const WARMUP: usize = 3;
    const SAMPLES: usize = 15;
    let device = DeviceSpec::a100();

    // Suite 1: the paper's prostate case, warp-per-row vector kernel vs
    // the reduced-precision baseline pipeline.
    let case = prostate_case(ScaleConfig { shrink: 12.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);
    let weights = vec![1.0f64; csr.ncols()];
    let nnz = csr.nnz() as u64;

    let vector = {
        let gpu = Gpu::new(device.clone());
        let m = GpuCsrMatrix::upload(&gpu, &csr);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(csr.nrows());
        time_kernel(
            "vector_csr_half_double",
            nnz,
            &device,
            &profile_half_double(),
            WARMUP,
            SAMPLES,
            || vector_csr_spmv(&gpu, &m, &x, &y, 512),
        )
    };
    let baseline = {
        let gpu = Gpu::new(device.clone());
        let m = GpuRsMatrix::upload(&gpu, &rs);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(rs.nrows());
        time_kernel(
            "baseline_segment_atomic",
            nnz,
            &device,
            &profile_baseline(),
            WARMUP,
            SAMPLES,
            || {
                y.clear();
                rs_baseline_gpu_spmv(&gpu, &m, &x, &y, 128)
            },
        )
    };

    // Suite 2: the short-row demo matrix across every tile width plus
    // the autotuned pick, all against fixed warp-per-row.
    let short = short_row_matrix();
    let short_stats = RowStats::from_csr(&short);
    let choice = KernelSelect::MeasuredProbe
        .choose(&device, &short, 512)
        .expect("probe cannot fail on a valid matrix");

    let warp32 = time_shortrow(
        "shortrow_warp32",
        &short,
        &short_stats,
        32,
        true,
        &device,
        WARMUP,
        SAMPLES,
    );
    let mut tiled: Vec<Measurement> = TILE_WIDTHS
        .iter()
        .map(|&w| {
            time_shortrow(
                width_entry_name(w),
                &short,
                &short_stats,
                w,
                false,
                &device,
                WARMUP,
                SAMPLES,
            )
        })
        .collect();
    tiled.push(time_shortrow(
        "shortrow_tiled_auto",
        &short,
        &short_stats,
        choice.tile_width,
        choice.tile_width == 32,
        &device,
        WARMUP,
        SAMPLES,
    ));
    let (w32_ns, w32_s) = (warp32.ns_per_iter, warp32.report.estimate.seconds);
    for m in &mut tiled {
        m.speedup_vs_warp32 = Some(w32_ns / m.ns_per_iter);
        m.sim_speedup_vs_warp32 = Some(w32_s / m.report.estimate.seconds);
    }

    let mut measurements = vec![vector, baseline, warp32];
    measurements.extend(tiled);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = render_json(&measurements, workers, &choice);
    print!("{json}");
    let path = "BENCH_simspeed.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[could not save {path}: {e}]"),
    }
}
