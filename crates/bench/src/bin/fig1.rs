//! Regenerates Figure 1 (the spot-scanning beam's-eye-view).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig1", &rt_repro::fig1::generate(&ctx).render());
}
