//! Regenerates the headline speedup claims of §V / §VII.
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("speedups", &rt_repro::speedups::generate(&ctx).render());
}
