//! Ablation: 16-bit vs 32-bit column indices (§V future work).
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let rows = ablations::index_width(&ctx);
    rt_bench::emit("ablation_indices", &ablations::render_index_width(&rows));
}
