//! Regenerates Figure 2 (cumulative row-length histograms).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig2", &rt_repro::fig2::generate(&ctx).render());
}
