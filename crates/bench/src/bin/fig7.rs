//! Regenerates Figure 7 (Half/double across A100 / V100 / P100).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig7", &rt_repro::fig7::generate(&ctx).render());
}
