//! Regenerates Table I (dose deposition matrix characteristics).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("table1", &rt_repro::table1::generate(&ctx).render());
}
