//! Ablation: sparse-format storage footprints (§II-C / §VII).
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let mut out = String::new();
    for case in [ctx.liver1(), ctx.prostate1()] {
        let rows = ablations::formats(case);
        out.push_str(&ablations::render_formats(case.name(), &rows));
        out.push('\n');
    }
    rt_bench::emit("ablation_formats", &out);
}
