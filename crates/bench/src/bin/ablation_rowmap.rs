//! Ablation: warp-per-row vs thread-per-row (§III).
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let rows = ablations::row_mapping(&ctx);
    rt_bench::emit("ablation_rowmap", &ablations::render_row_mapping(&rows));
}
