//! Per-buffer DRAM traffic decomposition (the measurable version of the
//! paper's §V traffic model).
fn main() {
    let ctx = rt_bench::context();
    let cases = rt_repro::traffic::generate(&ctx);
    rt_bench::emit("traffic", &rt_repro::traffic::render(&cases));
}
