//! Regenerates Figure 5 (kernel performance on the A100 + CPU row).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig5", &rt_repro::fig5::generate(&ctx).render());
}
