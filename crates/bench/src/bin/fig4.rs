//! Regenerates Figure 4 (threads-per-block sweep on liver beam 1).
fn main() {
    let ctx = rt_bench::context();
    rt_bench::emit("fig4", &rt_repro::fig4::generate(&ctx).render());
}
