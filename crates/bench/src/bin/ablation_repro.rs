//! Ablation: the cost of bitwise reproducibility (§II-D).
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let rows = ablations::reproducibility(&ctx);
    rt_bench::emit("ablation_repro", &ablations::render_reproducibility(&rows));
}
