//! Ablation: 16-bit value encodings (binary16 / bfloat16 / fixed16).
use rt_repro::ablations;
fn main() {
    let ctx = rt_bench::context();
    let mut out = String::new();
    for case in [ctx.liver1(), ctx.prostate1()] {
        let rows = ablations::value_encoding(case);
        out.push_str(&ablations::render_value_encoding(case.name(), &rows));
        out.push('\n');
    }
    rt_bench::emit("ablation_precision", &out);
}
