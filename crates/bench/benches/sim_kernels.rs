//! Simulator throughput: how fast the warp-synchronous executor plus
//! cache model chews through the kernels (host wall-clock per simulated
//! non-zero). Useful for sizing experiment scales.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rt_core::{rs_baseline_gpu_spmv, vector_csr_spmv, GpuCsrMatrix, GpuRsMatrix};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_gpusim::{DeviceSpec, Gpu};
use rt_sparse::{Csr, RsCompressed};

fn bench_sim(c: &mut Criterion) {
    let case = prostate_case(ScaleConfig { shrink: 12.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);
    let weights = vec![1.0f64; csr.ncols()];

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(csr.nnz() as u64));

    g.bench_function("vector_csr_half_double", |b| {
        let gpu = Gpu::new(DeviceSpec::a100());
        let m = GpuCsrMatrix::upload(&gpu, &csr);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(csr.nrows());
        b.iter(|| vector_csr_spmv(&gpu, &m, &x, &y, 512).flops)
    });

    g.bench_function("baseline_segment_atomic", |b| {
        let gpu = Gpu::new(DeviceSpec::a100());
        let m = GpuRsMatrix::upload(&gpu, &rs);
        let x = gpu.upload(&weights);
        let y = gpu.alloc_out::<f64>(rs.nrows());
        b.iter(|| {
            y.clear();
            rs_baseline_gpu_spmv(&gpu, &m, &x, &y, 128).flops
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
