//! Conversion throughput of the software binary16 implementation — the
//! cost RayStation pays once per matrix export (f64 master data down to
//! 16-bit storage) and the kernels pay per element on the way up.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rt_f16::{Bf16, Quantizer, F16};

const N: usize = 1 << 16;

fn bench_conversions(c: &mut Criterion) {
    let f64s: Vec<f64> = (0..N)
        .map(|i| (i as f64 * 0.37).sin().abs() * 10.0)
        .collect();
    let f32s: Vec<f32> = f64s.iter().map(|&x| x as f32).collect();
    let halves: Vec<F16> = f64s.iter().map(|&x| F16::from_f64(x)).collect();

    let mut g = c.benchmark_group("f16_conversion");
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("f32_to_f16", |b| {
        b.iter(|| {
            f32s.iter()
                .map(|&x| F16::from_f32(x).to_bits() as u32)
                .sum::<u32>()
        })
    });
    g.bench_function("f64_to_f16_single_rounding", |b| {
        b.iter(|| {
            f64s.iter()
                .map(|&x| F16::from_f64(x).to_bits() as u32)
                .sum::<u32>()
        })
    });
    g.bench_function("f16_to_f32", |b| {
        b.iter(|| halves.iter().map(|&h| h.to_f32()).sum::<f32>())
    });
    g.bench_function("f16_to_f64", |b| {
        b.iter(|| halves.iter().map(|&h| h.to_f64()).sum::<f64>())
    });
    g.bench_function("f32_to_bf16", |b| {
        b.iter(|| {
            f32s.iter()
                .map(|&x| Bf16::from_f32(x).to_bits() as u32)
                .sum::<u32>()
        })
    });
    g.bench_function("f64_quantize_fixed16", |b| {
        let q = Quantizer::for_max_value(10.0);
        b.iter(|| f64s.iter().map(|&x| q.quantize(x).0 as u32).sum::<u32>())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_conversions
}
criterion_main!(benches);
