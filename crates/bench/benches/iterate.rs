//! End-to-end optimizer iterate (ISSUE 9): one projected-gradient step
//! is a forward dose `A w`, an objective gradient, and a backward
//! projection `A^T r`. PRs 4–8 tuned only the forward half; this bench
//! measures the full iterate with the gradient path running (a) the
//! whole-matrix transpose kernel and (b) the bucketed partition of the
//! transpose. This compares *host* wall-clock on the simulator, and it
//! is shape-dependent: the liver case's transpose is dense in beamlet
//! rows, so the partitioned dispatch's extra launches cost more here
//! than empty-row elimination saves. The modeled backward-pass win on
//! the empty-transpose serving shape is measured (and CI-gated ≥ 1.4×)
//! by the `liver-grad` suite in `simspeed`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rt_core::{DoseCalculator, KernelSelect, PartitionStrategy};
use rt_dose::cases::{liver_case, ScaleConfig};
use rt_gpusim::DeviceSpec;
use rt_optim::{DoseEngine, GpuDoseEngine};

/// One full iterate: forward dose, residual against a uniform
/// prescription, gradient back-projection, projected step.
fn iterate(engine: &GpuDoseEngine, w: &[f64]) -> Vec<f64> {
    let d = engine.dose(w);
    let r: Vec<f64> = d.iter().map(|&di| di - 1.0).collect();
    let g = engine.backproject(&r);
    w.iter()
        .zip(g.iter())
        .map(|(&wi, &gi)| (wi - 1e-3 * gi).max(0.0))
        .collect()
}

fn bench_iterate(c: &mut Criterion) {
    let case = liver_case(ScaleConfig { shrink: 24.0 }).remove(0);
    let m = &case.matrix;
    let spec = DeviceSpec::a100();
    let w0 = vec![0.5f64; m.ncols()];

    // (a) Whole-matrix gradients at the transpose's autotuned width.
    let whole = GpuDoseEngine::new(spec.clone(), m).unwrap();

    // (b) Both directions partitioned, each from its own heuristic
    // per-bucket table (dose on A's row plan, gradients on A^T's).
    let select = KernelSelect::Partitioned(PartitionStrategy::Heuristic);
    let choice = select.choose(&spec, m, 512).unwrap();
    let grad_choice = select.choose(&spec, &m.transpose(), 512).unwrap();
    let calc = DoseCalculator::builder(m)
        .device(spec)
        .with_transpose()
        .partitioned(choice.bucket_widths())
        .grad_partitioned(grad_choice.bucket_widths())
        .build()
        .unwrap();
    let partitioned = GpuDoseEngine::with_calculator(calc).unwrap();

    let mut g = c.benchmark_group("iterate");
    g.throughput(Throughput::Elements(m.nnz() as u64 * 2));
    g.bench_function("liver_whole_gradient", |b| b.iter(|| iterate(&whole, &w0)));
    g.bench_function("liver_partitioned_gradient", |b| {
        b.iter(|| iterate(&partitioned, &w0))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_iterate
}
criterion_main!(benches);
