//! Wall-clock Criterion benches of the *real* host implementations:
//! the RayStation-style column-parallel engine (scratch arrays) and the
//! row-parallel CSR SpMV, on generated dose matrices. These are actual
//! measurements, unlike the figure binaries' modeled GPU times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rt_core::{cpu_csr_spmv, RsCpu};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_sparse::{Csr, RsCompressed};

fn bench_cpu_spmv(c: &mut Criterion) {
    let case = prostate_case(ScaleConfig { shrink: 8.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);
    let weights = vec![1.0f64; csr.ncols()];
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut g = c.benchmark_group("cpu_spmv");
    g.throughput(Throughput::Elements(csr.nnz() as u64));

    g.bench_function(BenchmarkId::new("csr_row_parallel", csr.nnz()), |b| {
        let mut y = vec![0.0; csr.nrows()];
        b.iter(|| cpu_csr_spmv(&csr, &weights, &mut y, threads).unwrap());
    });

    g.bench_function(BenchmarkId::new("rs_scratch_arrays", rs.nnz()), |b| {
        let engine = RsCpu::with_threads(threads);
        let mut y = vec![0.0; rs.nrows()];
        b.iter(|| engine.spmv(&rs, &weights, &mut y).unwrap());
    });

    g.bench_function(BenchmarkId::new("csr_sequential_ref", csr.nnz()), |b| {
        let mut y = vec![0.0; csr.nrows()];
        b.iter(|| csr.spmv_ref(&weights, &mut y).unwrap());
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cpu_spmv
}
criterion_main!(benches);
