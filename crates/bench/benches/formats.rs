//! Format-conversion throughput: the one-time costs the paper's export
//! pipeline pays (RayStation compressed -> CSR) plus the future-work
//! format builds (SELL-C-sigma, ELLPACK).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rt_dose::cases::{prostate_case, ScaleConfig};
use rt_f16::F16;
use rt_sparse::{Csr, RsCompressed, SellCSigma};

fn bench_formats(c: &mut Criterion) {
    let case = prostate_case(ScaleConfig { shrink: 12.0 }).remove(0);
    let csr: Csr<F16, u32> = case.matrix.convert_values();
    let rs = RsCompressed::from_csr(&csr);

    let mut g = c.benchmark_group("format_conversion");
    g.throughput(Throughput::Elements(csr.nnz() as u64));

    g.bench_function("csr_to_rs_compressed", |b| {
        b.iter(|| RsCompressed::from_csr(&csr).nnz())
    });
    g.bench_function("rs_compressed_to_csr", |b| {
        b.iter(|| rs.to_csr().unwrap().nnz())
    });
    g.bench_function("csr_transpose", |b| b.iter(|| csr.transpose().nnz()));
    g.bench_function("csr_to_sell_32_1024", |b| {
        b.iter(|| SellCSigma::from_csr(&csr, 32, 1024).nnz())
    });
    g.bench_function("csr_values_f64_to_f16", |b| {
        b.iter(|| case.matrix.convert_values::<F16>().nnz())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_formats
}
criterion_main!(benches);
