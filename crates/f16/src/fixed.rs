//! 16-bit scaled fixed-point encoding.
//!
//! Dose deposition values are non-negative (a spot cannot remove dose), so a
//! `u16` with a per-matrix linear scale is a natural 16-bit encoding: it
//! spends all 65536 code points on the value range actually present. Its
//! weakness is *relative* accuracy for small values, exactly where Monte
//! Carlo noise lives — the ablation bench quantifies this against binary16
//! and bfloat16.

use core::fmt;

/// A quantized dose value: `value = bits as f64 * scale`.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Fixed16(pub u16);

impl fmt::Debug for Fixed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Fixed16 {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(s)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Fixed16 {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u16::deserialize(d).map(Fixed16)
    }
}

/// Linear quantizer mapping `[0, max_value]` onto `0..=65535`.
///
/// The scale is chosen once per matrix (RayStation-style: the format header
/// carries the scale; every entry is a `u16` multiple of it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantizer {
    scale: f64,
    inv_scale: f64,
}

impl Quantizer {
    /// Builds a quantizer that can represent values up to `max_value`
    /// without clamping. `max_value` must be positive and finite.
    pub fn for_max_value(max_value: f64) -> Self {
        assert!(
            max_value.is_finite() && max_value > 0.0,
            "quantizer max_value must be positive and finite, got {max_value}"
        );
        let scale = max_value / u16::MAX as f64;
        Quantizer {
            scale,
            inv_scale: 1.0 / scale,
        }
    }

    /// The value of one code step.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes with round-to-nearest; clamps to the representable range.
    /// Negative and NaN inputs map to zero (dose is non-negative).
    #[inline]
    pub fn quantize(&self, value: f64) -> Fixed16 {
        let scaled = value * self.inv_scale;
        // NaN and non-positive inputs map to zero (dose is non-negative).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(scaled > 0.0) {
            return Fixed16(0);
        }
        if scaled >= u16::MAX as f64 {
            return Fixed16(u16::MAX);
        }
        Fixed16((scaled + 0.5) as u16)
    }

    /// Reconstructs the represented value.
    #[inline]
    pub fn dequantize(&self, q: Fixed16) -> f64 {
        q.0 as f64 * self.scale
    }

    /// Worst-case absolute representation error (half a code step) for
    /// in-range inputs.
    #[inline]
    pub fn max_abs_error(&self) -> f64 {
        self.scale * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded() {
        let q = Quantizer::for_max_value(10.0);
        for i in 0..10_000 {
            let x = i as f64 * 1e-3;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.max_abs_error() * (1.0 + 1e-12), "err {err} at {x}");
        }
    }

    #[test]
    fn codes_roundtrip_exactly() {
        let q = Quantizer::for_max_value(3.5);
        for bits in [0u16, 1, 7, 255, 32768, 65535] {
            assert_eq!(q.quantize(q.dequantize(Fixed16(bits))), Fixed16(bits));
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let q = Quantizer::for_max_value(1.0);
        assert_eq!(q.quantize(2.0), Fixed16(u16::MAX));
        assert_eq!(q.quantize(-0.5), Fixed16(0));
        assert_eq!(q.quantize(f64::NAN), Fixed16(0));
        assert_eq!(q.quantize(0.0), Fixed16(0));
    }

    #[test]
    fn max_value_is_representable() {
        let q = Quantizer::for_max_value(42.0);
        assert_eq!(q.quantize(42.0), Fixed16(u16::MAX));
        assert!((q.dequantize(Fixed16(u16::MAX)) - 42.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_max() {
        let _ = Quantizer::for_max_value(0.0);
    }
}
