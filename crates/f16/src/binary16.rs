//! IEEE-754 binary16 implemented in software.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Smallest positive subnormal is 2^-24, smallest normal 2^-14, largest
//! finite value 65504.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// An IEEE-754 binary16 ("half precision") floating-point number.
///
/// Arithmetic is performed by promoting to `f32`, which is exact for a
/// single operation (binary16 -> binary32 is lossless and one rounding step
/// back is correctly rounded). This mirrors what GPU half-precision ALUs do
/// for the multiply-into-wider-accumulator pattern used by the dose kernel.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct F16(u16);

// IEEE equality, not bit equality: -0 == +0 and NaN != NaN.
impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

const EXP_MASK: u16 = 0x7c00;
const MAN_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    pub const ZERO: F16 = F16(0x0000);
    pub const NEG_ZERO: F16 = F16(0x8000);
    pub const ONE: F16 = F16(0x3c00);
    pub const INFINITY: F16 = F16(0x7c00);
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN with the canonical payload.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Most negative finite value, -65504.
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: the difference between 1.0 and the next larger
    /// representable value, 2^-10.
    pub const EPSILON: F16 = F16(0x1400);

    /// Reinterprets raw bits as a binary16 value.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest, ties-to-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let man = bits & 0x7f_ffff;

        if exp == 0xff {
            // Infinity or NaN. Keep NaN-ness: force a mantissa bit if the
            // truncated payload would be zero.
            if man == 0 {
                return F16(sign | EXP_MASK);
            }
            let payload = ((man >> 13) as u16) & MAN_MASK;
            return F16(sign | EXP_MASK | payload | 0x0200);
        }

        // Unbiased exponent of the f32 value (f32 subnormals have
        // magnitude < 2^-126, far below the f16 underflow threshold, so
        // treating exp == 0 like a tiny normal is fine: it flushes to zero
        // through the `< -10` branch below).
        let unbiased = exp - 127;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1f {
            // Overflow. Round-to-nearest maps everything >= 2^16 - 2^4 (the
            // midpoint above MAX) to infinity; values in (MAX, midpoint)
            // round down to MAX. The midpoint 65520 has unbiased exponent
            // 15, i.e. half_exp == 30 < 0x1f, so any value reaching this
            // branch is >= 2^16 and becomes infinity.
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Result is subnormal (or zero). Values below 2^-25 round to
            // zero; 2^-25 exactly is a tie against zero and ties-to-even
            // also gives zero.
            if half_exp < -10 || exp == 0 {
                return F16(sign);
            }
            let m = man | 0x80_0000; // make the implicit leading 1 explicit
                                     // v = m * 2^(unbiased-23); result = round(v / 2^-24) = m >> shift.
            let shift = (-unbiased - 1) as u32; // in 14..=24
            let result = (m >> shift) as u16;
            let rem = m & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let round_up = rem > halfway || (rem == halfway && result & 1 == 1);
            return F16(sign | (result + round_up as u16));
        }

        // Normal result: drop 13 mantissa bits with RNE. A mantissa
        // carry-out increments the exponent; carrying out of the largest
        // exponent correctly produces infinity because the bit layout is
        // contiguous.
        let mut out = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
            out += 1;
        }
        F16(out)
    }

    /// Converts from `f64` with a single round-to-nearest-even step.
    ///
    /// This is *not* the same as `F16::from_f32(x as f32)`: the intermediate
    /// f32 rounding can land exactly on a binary16 tie and then break the
    /// tie the wrong way (double rounding).
    pub fn from_f64(x: f64) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7ff) as i32;
        let man = bits & 0xf_ffff_ffff_ffff;

        if exp == 0x7ff {
            if man == 0 {
                return F16(sign | EXP_MASK);
            }
            let payload = ((man >> 42) as u16) & MAN_MASK;
            return F16(sign | EXP_MASK | payload | 0x0200);
        }

        let unbiased = exp - 1023;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1f {
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            if half_exp < -10 || exp == 0 {
                return F16(sign);
            }
            let m = man | (1u64 << 52);
            // v = m * 2^(unbiased-52); result = round(v / 2^-24) = m >> shift.
            let shift = (28 - unbiased) as u32; // in 43..=53
            let result = (m >> shift) as u16;
            let rem = m & ((1u64 << shift) - 1);
            let halfway = 1u64 << (shift - 1);
            let round_up = rem > halfway || (rem == halfway && result & 1 == 1);
            return F16(sign | (result + round_up as u16));
        }

        let mut out = sign | ((half_exp as u16) << 10) | ((man >> 42) as u16);
        let rem = man & 0x3ff_ffff_ffff;
        let halfway = 1u64 << 41;
        if rem > halfway || (rem == halfway && out & 1 == 1) {
            out += 1;
        }
        F16(out)
    }

    /// Converts to `f32`. Exact: every binary16 value is representable.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = (self.0 & EXP_MASK) >> 10;
        let man = (self.0 & MAN_MASK) as u32;
        match exp {
            0 => {
                if man == 0 {
                    f32::from_bits(sign)
                } else {
                    // Subnormal: man * 2^-24, exact in f32.
                    let magnitude = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
                    if sign != 0 {
                        -magnitude
                    } else {
                        magnitude
                    }
                }
            }
            0x1f => f32::from_bits(sign | 0x7f80_0000 | (man << 13)),
            _ => f32::from_bits(sign | ((exp as u32 + 112) << 23) | (man << 13)),
        }
    }

    /// Converts to `f64`. Exact.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & MAN_MASK != 0
    }

    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & (EXP_MASK | MAN_MASK) == EXP_MASK
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & EXP_MASK != EXP_MASK
    }

    /// True for subnormals (nonzero values with a zero exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        self.0 & EXP_MASK == 0 && self.0 & MAN_MASK != 0
    }

    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// IEEE-754 `totalOrder` comparison on the bit patterns. Unlike
    /// `PartialOrd`, this is a total order (NaNs sort above infinities,
    /// -0 below +0), which lets binary16 values key deterministic sorts.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        // Flip the ordering of negative values by treating the bits as a
        // sign-magnitude integer mapped to two's complement.
        fn key(bits: u16) -> i32 {
            let b = bits as i32;
            if b & 0x8000 != 0 {
                !b & 0xffff
            } else {
                b | 0x1_0000
            }
        }
        key(self.0).cmp(&key(other.0))
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

macro_rules! promote_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32().$method(rhs.to_f32()))
            }
        }
    };
}

promote_binop!(Add, add);
promote_binop!(Sub, sub);
promote_binop!(Mul, mul);
promote_binop!(Div, div);

impl AddAssign for F16 {
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl MulAssign for F16 {
    fn mul_assign(&mut self, rhs: F16) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for F16 {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(s)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for F16 {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u16::deserialize(d).map(F16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn roundtrip_all_bit_patterns_through_f32() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "NaN lost at bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "roundtrip failed at {bits:#06x}");
            }
        }
    }

    #[test]
    fn roundtrip_all_bit_patterns_through_f64() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f64(h.to_f64());
            if h.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits);
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0 + 2^-10;
        // the even mantissa is 1.0.
        assert_eq!(F16::from_f32(1.0 + 2.0f32.powi(-11)).to_f32(), 1.0);
        // (1.0 + 2^-10) + 2^-11 is halfway with an odd lower neighbour, so
        // it rounds up to 1.0 + 2^-9.
        let x = 1.0 + 2.0f32.powi(-10) + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Anything above the halfway point rounds up.
        assert_eq!(
            F16::from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)).to_f32(),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn overflow_rounds_to_infinity_or_max() {
        assert_eq!(F16::from_f32(65504.0).to_bits(), F16::MAX.to_bits());
        // Below the midpoint 65520 -> rounds down to MAX.
        assert_eq!(F16::from_f32(65519.0).to_bits(), F16::MAX.to_bits());
        // The midpoint ties to even = infinity (MAX has odd mantissa).
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_sign_negative());
        assert!(F16::from_f32(-1e9).is_infinite());
    }

    #[test]
    fn underflow_and_subnormals() {
        // 2^-24 is the smallest subnormal.
        assert_eq!(F16::from_f32(2.0f32.powi(-24)).to_bits(), 1);
        // 2^-25 ties against zero; even mantissa is zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0);
        // Just above 2^-25 rounds up to the smallest subnormal.
        assert_eq!(F16::from_f32(2.0f32.powi(-25) * 1.0001).to_bits(), 1);
        // Way below underflow.
        assert_eq!(F16::from_f32(1e-30).to_bits(), 0);
        assert_eq!(F16::from_f32(-1e-30).to_bits(), 0x8000);
        // f32 subnormals flush to zero.
        assert_eq!(F16::from_f32(f32::from_bits(1)).to_bits(), 0);
        // The subnormal boundary: largest subnormal and smallest normal.
        let largest_subnormal = F16::from_bits(0x03ff);
        assert!(largest_subnormal.is_subnormal());
        assert_eq!(F16::from_f32(largest_subnormal.to_f32()).to_bits(), 0x03ff);
    }

    #[test]
    fn double_rounding_f64_direct_vs_via_f32() {
        // Construct x = 1 + 2^-11 + 2^-30: rounding to f32 keeps it above
        // the f16 tie, so the correct f16 result is 1 + 2^-10. But rounding
        // first to a value that lands exactly on the tie would give 1.0.
        // The f32 path happens to survive here because f32 has enough
        // precision; build the genuinely failing case instead:
        // x = (1 + 2^-11) + 2^-26 rounds to f32 as itself (representable),
        // then f32->f16 sees rem > halfway and rounds up: fine.
        // The failing pattern needs the f64 to round *down* onto the tie:
        // x = 1 + 2^-11 + 2^-25 is representable in f64 and f32? 2^-25
        // needs mantissa bit 25 — not representable in f32 for values near
        // 1 (24-bit mantissa), so f32 RNE rounds it... to 1 + 2^-11 exactly
        // wait: 1 + 2^-11 + 2^-25 in f32: the tail 2^-25 is below half of
        // the f32 ulp (2^-24 ulp at 1.0 is 2^-23)? ulp(1.0) = 2^-23, half
        // is 2^-24, and 2^-25 < 2^-24, so f32 rounds down to 1 + 2^-11 —
        // exactly the f16 tie — and the tie then breaks to even (1.0).
        // Direct f64->f16 sees rem > halfway and rounds up.
        let x = 1.0f64 + 2.0f64.powi(-11) + 2.0f64.powi(-25);
        let direct = F16::from_f64(x);
        let via_f32 = F16::from_f32(x as f32);
        assert_eq!(direct.to_f32(), 1.0 + 2.0f32.powi(-10));
        assert_eq!(via_f32.to_f32(), 1.0);
        assert_ne!(direct.to_bits(), via_f32.to_bits());
    }

    #[test]
    fn from_f64_matches_from_f32_for_f32_inputs() {
        // For inputs that are exactly representable in f32, the two paths
        // must agree (no intermediate rounding happens).
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = f32::from_bits((state >> 32) as u32);
            if x.is_nan() {
                continue;
            }
            assert_eq!(
                F16::from_f32(x).to_bits(),
                F16::from_f64(x as f64).to_bits(),
                "mismatch at {x:e}"
            );
        }
    }

    #[test]
    fn nan_propagation() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f64(f64::NAN).is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::NAN * F16::ZERO).is_nan());
        // NaN compares unequal to itself.
        assert_ne!(F16::NAN.partial_cmp(&F16::NAN), Some(Ordering::Equal));
    }

    #[test]
    fn signed_zero() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::NEG_ZERO, F16::ZERO); // IEEE equality
        assert_ne!(F16::NEG_ZERO.to_bits(), F16::ZERO.to_bits());
    }

    #[test]
    fn arithmetic_promotes_correctly() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.to_f32(), 3.75);
    }

    #[test]
    fn total_cmp_is_a_total_order_on_interesting_values() {
        let vals = [
            F16::NAN.to_bits() | 0x8000, // negative NaN
            F16::NEG_INFINITY.to_bits(),
            F16::MIN.to_bits(),
            F16::from_f32(-1.0).to_bits(),
            0x8001, // -min subnormal
            0x8000, // -0
            0x0000, // +0
            0x0001, // +min subnormal
            F16::ONE.to_bits(),
            F16::MAX.to_bits(),
            F16::INFINITY.to_bits(),
            F16::NAN.to_bits(),
        ];
        for w in vals.windows(2) {
            let a = F16::from_bits(w[0]);
            let b = F16::from_bits(w[1]);
            assert_eq!(a.total_cmp(&b), Ordering::Less, "{a:?} !< {b:?}");
        }
    }

    #[test]
    fn monotonic_over_random_pairs() {
        let mut state = 42u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = f32::from_bits((state >> 33) as u32 & 0x7fff_ffff); // positive finite-ish
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = f32::from_bits((state >> 33) as u32 & 0x7fff_ffff);
            if !a.is_finite() || !b.is_finite() {
                continue;
            }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32(),
                "rounding not monotonic: {lo:e} vs {hi:e}"
            );
        }
    }
}
