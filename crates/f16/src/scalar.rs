//! The scalar abstraction the rest of the workspace genericizes over.

use crate::{Bf16, F16};
use core::fmt;

/// A numeric type that can store dose deposition matrix entries.
///
/// The SpMV kernels are generic over the *matrix* storage scalar while the
/// input/output vectors stay in `f64` (a hard RayStation requirement: lower
/// vector precision destabilizes the optimizer). `BYTES` feeds the memory
/// traffic model — it is the number of bytes one matrix entry moves across
/// the DRAM bus, which is what separates the Half/Double kernel's
/// operational intensity (6 bytes/nnz) from the Single kernel's (8).
pub trait DoseScalar: Copy + Send + Sync + PartialEq + fmt::Debug + Default + 'static {
    /// Size of the stored representation in bytes.
    const BYTES: usize;
    /// Human-readable name used in experiment output ("half", "single", ...).
    const NAME: &'static str;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_f32(x: f32) -> Self;
    fn to_f32(self) -> f32;

    #[inline]
    fn zero() -> Self {
        Self::default()
    }
}

impl DoseScalar for F16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "half";

    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
}

impl DoseScalar for Bf16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "bfloat16";

    #[inline]
    fn from_f64(x: f64) -> Self {
        Bf16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Bf16::to_f64(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        Bf16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        Bf16::to_f32(self)
    }
}

impl DoseScalar for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "single";

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
}

impl DoseScalar for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "double";

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        x as f64
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_is_projection<S: DoseScalar>() {
        // Converting twice must equal converting once (idempotence of the
        // rounding projection onto the representable set).
        for i in 0..1000 {
            let x = (i as f64) * 0.37 + 1e-4;
            let once = S::from_f64(x);
            let twice = S::from_f64(once.to_f64());
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn projections() {
        roundtrip_is_projection::<F16>();
        roundtrip_is_projection::<Bf16>();
        roundtrip_is_projection::<f32>();
        roundtrip_is_projection::<f64>();
    }

    #[test]
    fn byte_sizes_match_repr() {
        assert_eq!(F16::BYTES, core::mem::size_of::<F16>());
        assert_eq!(Bf16::BYTES, core::mem::size_of::<Bf16>());
        assert_eq!(<f32 as DoseScalar>::BYTES, 4);
        assert_eq!(<f64 as DoseScalar>::BYTES, 8);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            F16::NAME,
            Bf16::NAME,
            <f32 as DoseScalar>::NAME,
            <f64 as DoseScalar>::NAME,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
