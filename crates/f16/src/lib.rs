//! Software 16-bit floating-point and fixed-point scalar types.
//!
//! RayStation stores dose deposition matrix entries in 16 bits to halve the
//! memory footprint of matrices that otherwise reach several gigabytes (the
//! liver cases in the paper are 7.7–11 GB). The paper's GPU kernel matches
//! that precision with IEEE-754 binary16 (`half` in CUDA). This crate
//! implements the required conversions **from scratch** — no hardware or
//! external `half` crate — with correct round-to-nearest-even semantics:
//!
//! * [`F16`] — IEEE-754 binary16 (1 sign, 5 exponent, 10 mantissa bits).
//! * [`Bf16`] — bfloat16 (1 sign, 8 exponent, 7 mantissa bits), used by the
//!   value-encoding ablation bench.
//! * [`Quantizer`] / scaled `u16` fixed point — the third 16-bit encoding
//!   candidate examined in the ablation.
//! * [`DoseScalar`] — the trait the sparse-matrix and kernel crates
//!   genericize over, implemented for `F16`, `Bf16`, `f32` and `f64`.
//!
//! Conversions to wider types are exact; conversions from wider types use
//! round-to-nearest, ties-to-even, including correct handling of subnormals,
//! overflow to infinity and NaN preservation. `f64 -> F16` rounds in a
//! single step (going through `f32` first can double-round).

mod bfloat16;
mod binary16;
mod fixed;
mod scalar;

pub use bfloat16::Bf16;
pub use binary16::F16;
pub use fixed::{Fixed16, Quantizer};
pub use scalar::DoseScalar;
