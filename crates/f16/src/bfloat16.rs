//! bfloat16: the upper 16 bits of an IEEE-754 binary32.
//!
//! bfloat16 keeps the full f32 exponent range (8 bits) but only 7 mantissa
//! bits. For dose deposition values — non-negative, spanning roughly six
//! orders of magnitude after Monte Carlo noise thresholding — the trade-off
//! against binary16 is wider range for ~8x coarser relative precision. The
//! value-encoding ablation bench quantifies this on real matrices.

use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// A bfloat16 value (1 sign, 8 exponent, 7 mantissa bits).
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

// IEEE equality, not bit equality: -0 == +0 and NaN != NaN.
impl PartialEq for Bf16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl Bf16 {
    pub const ZERO: Bf16 = Bf16(0x0000);
    pub const ONE: Bf16 = Bf16(0x3f80);
    pub const INFINITY: Bf16 = Bf16(0x7f80);
    pub const NAN: Bf16 = Bf16(0x7fc0);
    /// Largest finite value, approximately 3.39e38.
    pub const MAX: Bf16 = Bf16(0x7f7f);
    /// Machine epsilon, 2^-7.
    pub const EPSILON: Bf16 = Bf16(0x3c00);

    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest, ties-to-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Keep NaN-ness regardless of which payload bits get dropped.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x8000u32;
        let rem = bits & 0xffff;
        let mut out = (bits >> 16) as u16;
        if rem > round_bit || (rem == round_bit && out & 1 == 1) {
            // Carry may ripple into the exponent; overflow to infinity is
            // correct because the encoding is contiguous.
            out = out.wrapping_add(1);
        }
        Bf16(out)
    }

    /// Converts from `f64` (rounds to f32 first, then truncates mantissa
    /// with RNE; double rounding is possible in principle but irrelevant at
    /// 7 bits of target precision for this crate's use as an ablation).
    pub fn from_f64(x: f64) -> Self {
        Bf16::from_f32(x as f32)
    }

    /// Converts to `f32`. Exact.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & 0x7f80 == 0x7f80 && self.0 & 0x007f != 0
    }

    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7fff == 0x7f80
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & 0x7f80 != 0x7f80
    }

    #[inline]
    pub fn abs(self) -> Self {
        Bf16(self.0 & 0x7fff)
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

macro_rules! promote_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32().$method(rhs.to_f32()))
            }
        }
    };
}

promote_binop!(Add, add);
promote_binop!(Sub, sub);
promote_binop!(Mul, mul);

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}bf16", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bf16 {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(s)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bf16 {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u16::deserialize(d).map(Bf16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bit_patterns() {
        for bits in 0..=u16::MAX {
            let b = Bf16::from_bits(bits);
            let back = Bf16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits);
            }
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-8 is halfway between 1 and 1 + 2^-7: even -> 1.
        assert_eq!(Bf16::from_f32(1.0 + 2.0f32.powi(-8)).to_f32(), 1.0);
        // (1 + 2^-7) + 2^-8: odd lower neighbour -> rounds up.
        assert_eq!(
            Bf16::from_f32(1.0 + 2.0f32.powi(-7) + 2.0f32.powi(-8)).to_f32(),
            1.0 + 2.0f32.powi(-6)
        );
    }

    #[test]
    fn keeps_f32_range() {
        // 1e30 overflows binary16 but not bfloat16.
        assert!(Bf16::from_f32(1e30).is_finite());
        // f32::MAX sits above the midpoint between Bf16::MAX and 2^128, so
        // round-to-nearest correctly takes it to infinity.
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(Bf16::from_f32(Bf16::MAX.to_f32()).is_finite());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
    }

    #[test]
    fn nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        // A NaN whose top-16 payload bits are all zero must still be NaN.
        let sneaky = f32::from_bits(0x7f80_0001);
        assert!(sneaky.is_nan());
        assert!(Bf16::from_f32(sneaky).is_nan());
    }

    #[test]
    fn relative_error_bounded_by_epsilon() {
        let mut state = 7u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 100.0;
            if x == 0.0 {
                continue;
            }
            let err = (Bf16::from_f32(x).to_f32() - x).abs() / x.abs();
            assert!(err <= 2.0f32.powi(-8), "err {err} at {x}");
        }
    }
}
