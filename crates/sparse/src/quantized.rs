//! CSR with 16-bit linear fixed-point values — the third candidate 16-bit
//! encoding in the value-encoding ablation (alongside binary16 and
//! bfloat16).

use crate::{ColIndex, Csr, SparseError};
use rt_f16::{Fixed16, Quantizer};

/// A CSR matrix whose values are `u16` codes under a shared [`Quantizer`].
#[derive(Clone, Debug)]
pub struct QuantizedCsr<I = u32> {
    codes: Csr<QuantCode, I>,
    quantizer: Quantizer,
}

/// Newtype so `Fixed16` codes can live inside [`Csr`] (which requires a
/// `DoseScalar`; raw codes have no intrinsic float meaning, so the scalar
/// impl treats the code as an integer count — only `QuantizedCsr` methods
/// apply the scale).
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantCode(pub u16);

impl rt_f16::DoseScalar for QuantCode {
    const BYTES: usize = 2;
    const NAME: &'static str = "fixed16";

    fn from_f64(x: f64) -> Self {
        QuantCode(x.clamp(0.0, u16::MAX as f64) as u16)
    }
    fn to_f64(self) -> f64 {
        self.0 as f64
    }
    fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }
    fn to_f32(self) -> f32 {
        self.0 as f32
    }
}

impl<I: ColIndex> QuantizedCsr<I> {
    /// Quantizes an `f64` CSR matrix. The scale is chosen from the largest
    /// stored value (RayStation-style: one scale per matrix). Returns
    /// `None` for an all-zero matrix (nothing to scale).
    pub fn from_csr(csr: &Csr<f64, I>) -> Option<Self> {
        let max = csr.values().iter().cloned().fold(0.0f64, f64::max);
        // Covers both the all-zero and the all-NaN case.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(max > 0.0) {
            return None;
        }
        let quantizer = Quantizer::for_max_value(max);
        let codes = Csr::try_new(
            csr.nrows(),
            csr.ncols(),
            csr.row_ptr().to_vec(),
            csr.col_idx().to_vec(),
            csr.values()
                .iter()
                .map(|&v| {
                    let Fixed16(bits) = quantizer.quantize(v);
                    QuantCode(bits)
                })
                .collect(),
        )
        .expect("structure unchanged by value quantization");
        Some(QuantizedCsr { codes, quantizer })
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.codes.nrows()
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.codes.ncols()
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.codes.nnz()
    }

    #[inline]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Bytes: 2 per code + index + row pointer, same shape as CSR.
    pub fn size_bytes(&self) -> usize {
        self.codes.size_bytes()
    }

    /// Dequantizes into an `f64` CSR matrix.
    pub fn dequantize(&self) -> Csr<f64, I> {
        Csr::try_new(
            self.codes.nrows(),
            self.codes.ncols(),
            self.codes.row_ptr().to_vec(),
            self.codes.col_idx().to_vec(),
            self.codes
                .values()
                .iter()
                .map(|&QuantCode(bits)| self.quantizer.dequantize(Fixed16(bits)))
                .collect(),
        )
        .expect("structure unchanged by dequantization")
    }

    /// Reference SpMV applying the scale once per row (the dequantize-fold
    /// trick: sum codes * x, multiply by scale at the end — one fewer
    /// multiply per entry and identical rounding for our f64 accumulator).
    pub fn spmv_ref(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.codes.spmv_ref(x, y)?;
        for v in y.iter_mut() {
            *v *= self.quantizer.scale();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64, u32> {
        Csr::from_rows(
            3,
            &[
                vec![(0, 0.5), (2, 2.0)],
                vec![(1, 1.0)],
                vec![],
                vec![(0, 0.001), (1, 4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn quantization_error_bounded() {
        let m = sample();
        let q = QuantizedCsr::from_csr(&m).unwrap();
        let d = q.dequantize();
        let bound = q.quantizer().max_abs_error() * 1.0001;
        for ((_, _, a), (_, _, b)) in m.iter().zip(d.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn spmv_close_to_exact() {
        let m = sample();
        let q = QuantizedCsr::from_csr(&m).unwrap();
        let x = [1.0, 2.0, 3.0];
        let mut want = vec![0.0; 4];
        let mut got = vec![0.0; 4];
        m.spmv_ref(&x, &mut want).unwrap();
        q.spmv_ref(&x, &mut got).unwrap();
        for (w, g) in want.iter().zip(got.iter()) {
            // Error per row bounded by row_len * max_abs_error * max|x|.
            assert!((w - g).abs() <= 2.0 * q.quantizer().max_abs_error() * 3.0);
        }
    }

    #[test]
    fn all_zero_matrix_unquantizable() {
        let m = Csr::<f64, u32>::from_rows(2, &[vec![], vec![]]).unwrap();
        assert!(QuantizedCsr::from_csr(&m).is_none());
    }

    #[test]
    fn small_values_lose_relative_accuracy() {
        // The known weakness: a value 4000x smaller than the max is
        // represented with huge relative error. The ablation bench
        // measures this on real matrices.
        let m = sample();
        let q = QuantizedCsr::from_csr(&m).unwrap();
        let d = q.dequantize();
        let tiny_in = m.iter().find(|&(_, _, v)| v == 0.001).unwrap();
        let tiny_out = d
            .iter()
            .find(|&(r, c, _)| (r, c) == (tiny_in.0, tiny_in.1))
            .unwrap();
        let rel = (tiny_out.2 - 0.001).abs() / 0.001;
        assert!(rel > 0.01, "expected visible relative error, got {rel}");
    }
}
