//! Column index abstraction.
//!
//! The paper observes (§V) that column indices account for `4 * nnz` bytes
//! of memory traffic — a large share of the total — and proposes 16-bit
//! indices as future work, noting the prostate cases (≈5000 columns) fit
//! outright. Making the index type a parameter lets the ablation bench
//! measure exactly that change.

use crate::SparseError;

/// An unsigned integer type usable as a column index.
pub trait ColIndex:
    Copy + Send + Sync + Ord + core::fmt::Debug + core::hash::Hash + 'static
{
    /// Stored size in bytes (what one index costs on the memory bus).
    const BYTES: usize;
    /// Largest representable index.
    const MAX: usize;
    /// Name used in experiment output.
    const NAME: &'static str;

    /// Converts from `usize`, failing if the value does not fit.
    fn try_from_usize(v: usize) -> Option<Self>;

    /// Converts to `usize`. Always lossless.
    fn to_usize(self) -> usize;

    /// Checks that every column of an `ncols`-wide matrix is addressable.
    fn check_ncols(ncols: usize) -> Result<(), SparseError> {
        // Indices go up to ncols - 1.
        if ncols > 0 && ncols - 1 > Self::MAX {
            Err(SparseError::IndexOverflow {
                ncols,
                max: Self::MAX,
            })
        } else {
            Ok(())
        }
    }
}

macro_rules! impl_col_index {
    ($ty:ty, $name:literal) => {
        impl ColIndex for $ty {
            const BYTES: usize = core::mem::size_of::<$ty>();
            const MAX: usize = <$ty>::MAX as usize;
            const NAME: &'static str = $name;

            #[inline]
            fn try_from_usize(v: usize) -> Option<Self> {
                <$ty>::try_from(v).ok()
            }

            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
        }
    };
}

impl_col_index!(u16, "u16");
impl_col_index!(u32, "u32");
impl_col_index!(u64, "u64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_bounds() {
        assert_eq!(<u16 as ColIndex>::try_from_usize(65535), Some(65535u16));
        assert_eq!(<u16 as ColIndex>::try_from_usize(65536), None);
        assert!(u16::check_ncols(65536).is_ok());
        assert!(u16::check_ncols(65537).is_err());
        assert!(u16::check_ncols(0).is_ok());
    }

    #[test]
    fn u32_bounds() {
        assert_eq!(<u32 as ColIndex>::BYTES, 4);
        assert!(u32::check_ncols(1 << 20).is_ok());
        assert_eq!(<u32 as ColIndex>::try_from_usize(1 << 20), Some(1u32 << 20));
    }

    #[test]
    fn roundtrip() {
        for v in [0usize, 1, 255, 65535] {
            assert_eq!(<u16 as ColIndex>::try_from_usize(v).unwrap().to_usize(), v);
        }
    }
}
