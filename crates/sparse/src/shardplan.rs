//! Row-range sharding plans for cooperative multi-device SpMV.
//!
//! One device's DRAM bandwidth is the vector kernel's hard ceiling, so the
//! only way a *single* dose request gets faster is more DRAM — i.e. more
//! devices. A [`ShardPlan`] splits a CSR matrix into `K` **contiguous
//! row-range shards**, each materialized as a self-contained sub-CSR (its
//! `row_ptr` rebased to start at zero) with its own [`RowPlan`], so the
//! bucketed dispatch of [`crate::RowPlan`] composes per shard unchanged.
//!
//! Two properties carry the whole design:
//!
//! * **Balance by nnz, not rows.** Beam matrices are ~70–95% empty rows;
//!   splitting by row count would leave the shard holding the beam core
//!   with nearly all the work. The split sweeps the cumulative nnz curve
//!   and cuts at `ceil(s * nnz / K)`, so every shard's traffic — the
//!   quantity the timing model divides by per-device bandwidth — is within
//!   one row of even.
//! * **Disjoint row ranges ⇒ bitwise-reproducible merge.** A row's dose
//!   depends only on its own nnz traversal order and the reduction tree of
//!   the tile width it runs at — never on which device ran it. Each output
//!   element is produced by exactly one shard, so merging is a pure
//!   disjoint scatter: any shard completion order, pool size, or `K`
//!   yields doses bitwise identical to the unsharded kernel at the same
//!   per-row widths (the paper's §II-D contract survives by construction).

use crate::{ColIndex, Csr, RowPlan};
use rt_f16::DoseScalar;
use std::sync::Arc;

/// One contiguous row-range shard of a [`ShardPlan`]: rows
/// `[row_start, row_end)` of the source matrix as a self-contained
/// sub-CSR, plus the shard's own row-partition plan.
#[derive(Clone, Debug)]
pub struct RowShard<V, I = u32> {
    /// Shard index within the plan (`0..plan.num_shards()`).
    pub index: usize,
    /// First source row owned by this shard (inclusive).
    pub row_start: usize,
    /// One past the last source row owned by this shard.
    pub row_end: usize,
    /// The shard's rows as a standalone CSR matrix: `row_end - row_start`
    /// rows, the source matrix's full column space, `row_ptr` rebased to
    /// start at zero.
    pub matrix: Csr<V, I>,
    /// Row-partition plan of the sub-CSR (empty rows dropped, length
    /// buckets), so bucketed dispatch composes per shard. Shared behind an
    /// `Arc` because device uploads and report builders both hold it.
    pub plan: Arc<RowPlan>,
}

impl<V: DoseScalar, I: ColIndex> RowShard<V, I> {
    /// Rows owned by this shard.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Stored entries in this shard.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// Rows of this shard that store at least one entry — the rows whose
    /// results actually cross the interconnect at gather time (empty rows
    /// are zero at every destination already).
    #[inline]
    pub fn nonempty_rows(&self) -> usize {
        self.plan.nonempty_rows()
    }

    /// Bytes of shard output that cross the interconnect when the shard's
    /// partial result is gathered into the merged dose vector: one `f64`
    /// per non-empty row (empty rows need no transfer — the destination
    /// buffer is zero-filled once).
    #[inline]
    pub fn gather_bytes(&self) -> u64 {
        self.nonempty_rows() as u64 * 8
    }
}

/// A row-range sharding of one CSR matrix into `K` contiguous,
/// nnz-balanced shards. Built once per (matrix, K) and reused across every
/// sharded launch; the engine caches one per registered plan.
#[derive(Clone, Debug)]
pub struct ShardPlan<V, I = u32> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    shards: Vec<RowShard<V, I>>,
}

impl<V: DoseScalar, I: ColIndex> ShardPlan<V, I> {
    /// Splits `m` into `k` contiguous row-range shards balanced by
    /// cumulative nnz. `k` is clamped to `[1, max(1, nrows)]`; trailing
    /// shards may own zero rows only when the matrix has fewer rows than
    /// shards (never otherwise — every shard gets at least one row).
    ///
    /// Deterministic: the cut points are a pure function of the row-length
    /// profile and `k`.
    pub fn build(m: &Csr<V, I>, k: usize) -> Self {
        let nrows = m.nrows();
        let nnz = m.nnz();
        let k = k.clamp(1, nrows.max(1));
        let row_ptr = m.row_ptr();

        // Cut at the first row where cumulative nnz reaches s*nnz/k,
        // while reserving enough rows for the remaining shards.
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(0usize);
        let mut row = 0usize;
        for s in 1..k {
            let target = (nnz as u64 * s as u64).div_ceil(k as u64) as u32;
            while row < nrows && row_ptr[row + 1] < target {
                row += 1;
            }
            // Leave at least one row per remaining shard, and advance at
            // least one row past the previous cut.
            let max_start = nrows - (k - s);
            let start = (row + 1).max(bounds[s - 1] + 1).min(max_start);
            bounds.push(start);
            row = start;
        }
        bounds.push(nrows);

        Self::from_bounds(m, bounds)
    }

    /// Splits `m` into `weights.len()` contiguous shards whose nnz shares
    /// are proportional to `weights` — shard `i` targets
    /// `nnz * w_i / Σw` entries, so a shard homed on a device with twice
    /// the modeled bandwidth gets twice the traffic and every shard
    /// *finishes* at the same modeled time on a heterogeneous pool.
    /// `build(m, k)` is the uniform-weights special case.
    ///
    /// The shard count is clamped to `[1, max(1, nrows)]` like
    /// [`ShardPlan::build`] (excess trailing weights are dropped).
    /// Deterministic: cut points are a pure function of the row-length
    /// profile and the weight vector.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a non-finite or
    /// non-positive weight.
    pub fn build_weighted(m: &Csr<V, I>, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "build_weighted needs >= 1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "shard weights must be finite and positive"
        );
        let nrows = m.nrows();
        let nnz = m.nnz();
        let k = weights.len().clamp(1, nrows.max(1));
        let row_ptr = m.row_ptr();
        let total: f64 = weights[..k].iter().sum();

        // Same sweep as `build`, but the cut target for shard boundary s
        // is the cumulative *weight* fraction of total nnz.
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(0usize);
        let mut row = 0usize;
        let mut prefix = 0.0f64;
        for s in 1..k {
            prefix += weights[s - 1];
            // Division last: for uniform weights this is exactly
            // `ceil(nnz * s / k)`, so `build` and `build_weighted`
            // produce identical cut points.
            let target = (nnz as f64 * prefix / total).ceil() as u32;
            while row < nrows && row_ptr[row + 1] < target {
                row += 1;
            }
            let max_start = nrows - (k - s);
            let start = (row + 1).max(bounds[s - 1] + 1).min(max_start);
            bounds.push(start);
            row = start;
        }
        bounds.push(nrows);
        Self::from_bounds(m, bounds)
    }

    /// Rebuilds a plan from persisted interior cut points (the vector
    /// returned by [`ShardPlan::cut_points`]), skipping the cut sweep —
    /// the snapshot cold-start path. `cuts` holds the `k - 1` interior
    /// row boundaries; the implied outer bounds `0` and `nrows` are added.
    ///
    /// # Panics
    /// Panics if the cuts are not strictly increasing within
    /// `(0, nrows)` — callers (the snapshot loader) validate before
    /// handing cuts over.
    pub fn from_cuts(m: &Csr<V, I>, cuts: &[usize]) -> Self {
        let nrows = m.nrows();
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(0usize);
        for &c in cuts {
            assert!(
                c > *bounds.last().unwrap() && c < nrows,
                "shard cut points must be strictly increasing within (0, nrows)"
            );
            bounds.push(c);
        }
        bounds.push(nrows);
        Self::from_bounds(m, bounds)
    }

    fn from_bounds(m: &Csr<V, I>, bounds: Vec<usize>) -> Self {
        let k = bounds.len() - 1;
        let shards = (0..k)
            .map(|s| Self::materialize(m, s, bounds[s], bounds[s + 1]))
            .collect();
        ShardPlan {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            shards,
        }
    }

    /// Builds the sub-CSR for rows `[start, end)` via the public
    /// constructor (rebased `row_ptr`, re-validated structure).
    fn materialize(m: &Csr<V, I>, index: usize, start: usize, end: usize) -> RowShard<V, I> {
        let row_ptr = m.row_ptr();
        let base = row_ptr[start];
        let lo = base as usize;
        let hi = row_ptr[end] as usize;
        let sub_ptr: Vec<u32> = row_ptr[start..=end].iter().map(|&p| p - base).collect();
        let matrix = Csr::try_new(
            end - start,
            m.ncols(),
            sub_ptr,
            m.col_idx()[lo..hi].to_vec(),
            m.values()[lo..hi].to_vec(),
        )
        .expect("a row range of a valid CSR is a valid CSR");
        let plan = Arc::new(RowPlan::from_csr(&matrix));
        RowShard {
            index,
            row_start: start,
            row_end: end,
            matrix,
            plan,
        }
    }

    /// Rows of the source matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the source matrix (every shard keeps the full column
    /// space — the input vector is broadcast, only rows are sharded).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries of the source matrix.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of shards (after clamping).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order.
    #[inline]
    pub fn shards(&self) -> &[RowShard<V, I>] {
        &self.shards
    }

    /// Largest shard nnz over the ideal per-shard nnz — 1.0 is a perfect
    /// split; the excess is bounded by the longest row's share.
    pub fn balance_factor(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        let ideal = self.nnz as f64 / self.shards.len() as f64;
        let max = self.shards.iter().map(|s| s.nnz()).max().unwrap_or(0);
        max as f64 / ideal
    }

    /// The `k - 1` interior cut points (each shard's `row_start` except
    /// the first) — everything needed to rebuild this plan via
    /// [`ShardPlan::from_cuts`] without re-sweeping the nnz curve, and
    /// what the RTDM v2 snapshot persists alongside the matrix.
    pub fn cut_points(&self) -> Vec<usize> {
        self.shards.iter().skip(1).map(|s| s.row_start).collect()
    }

    /// Balance factor against a *weighted* ideal: the largest ratio of a
    /// shard's nnz over its weighted share `nnz * w_i / Σw`. 1.0 is a
    /// perfect throughput-weighted split; the plain
    /// [`ShardPlan::balance_factor`] is the uniform-weights special case
    /// and is misleading on mixed pools (a V100 shard *should* hold fewer
    /// entries than an A100 shard). Weights are cycled if fewer than the
    /// shard count, matching how shards are homed round-robin on a device
    /// group.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a non-finite or
    /// non-positive weight.
    pub fn balance_factor_weighted(&self, weights: &[f64]) -> f64 {
        assert!(!weights.is_empty(), "balance needs >= 1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "shard weights must be finite and positive"
        );
        if self.nnz == 0 {
            return 1.0;
        }
        let w = |i: usize| weights[i % weights.len()];
        let total: f64 = (0..self.shards.len()).map(w).sum();
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.nnz() as f64 / (self.nnz as f64 * w(i) / total))
            .fold(0.0, f64::max)
    }

    /// Total bytes crossing the interconnect at gather time (sum of
    /// [`RowShard::gather_bytes`]).
    pub fn gather_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.gather_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beamlike(nrows: usize, ncols: usize) -> Csr<f64, u32> {
        // ~90% empty rows, a dense core every 37 rows, short shell rows.
        let rows: Vec<Vec<(usize, f64)>> = (0..nrows)
            .map(|r| {
                if r % 37 == 0 {
                    (0..64.min(ncols))
                        .map(|c| (c, (r + c) as f64 * 0.01))
                        .collect()
                } else if r % 11 == 0 {
                    vec![(r % ncols, r as f64 * 0.1)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        Csr::from_rows(ncols, &rows).unwrap()
    }

    #[test]
    fn shards_cover_all_rows_disjointly() {
        let m = beamlike(500, 80);
        for k in [1, 2, 3, 4, 7] {
            let plan = ShardPlan::build(&m, k);
            assert_eq!(plan.num_shards(), k);
            let mut next = 0;
            for (i, s) in plan.shards().iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.row_start, next, "k={k} shard {i}");
                assert!(s.row_end > s.row_start, "k={k} shard {i} empty range");
                next = s.row_end;
                assert_eq!(s.matrix.nrows(), s.nrows());
                assert_eq!(s.matrix.ncols(), 80);
            }
            assert_eq!(next, 500);
            let total_nnz: usize = plan.shards().iter().map(|s| s.nnz()).sum();
            assert_eq!(total_nnz, m.nnz());
        }
    }

    #[test]
    fn shards_are_nnz_balanced_not_row_balanced() {
        let m = beamlike(800, 100);
        let plan = ShardPlan::build(&m, 3);
        // Every shard within one max-row of the ideal share.
        let ideal = m.nnz() as f64 / 3.0;
        let max_row = (0..m.nrows()).map(|r| m.row_len(r)).max().unwrap() as f64;
        for s in plan.shards() {
            assert!(
                (s.nnz() as f64) <= ideal + max_row,
                "shard {} nnz {} vs ideal {ideal}",
                s.index,
                s.nnz()
            );
        }
        assert!(plan.balance_factor() < 1.5);
    }

    #[test]
    fn sub_csr_rows_match_source_rows() {
        let m = beamlike(300, 60);
        let plan = ShardPlan::build(&m, 4);
        for s in plan.shards() {
            for local in 0..s.nrows() {
                let (sc, sv) = s.matrix.row(local);
                let (mc, mv) = m.row(s.row_start + local);
                assert_eq!(sc, mc);
                assert_eq!(sv, mv);
            }
        }
    }

    #[test]
    fn concatenated_shard_spmv_matches_full_spmv() {
        let m = beamlike(400, 90);
        let x: Vec<f64> = (0..90).map(|i| (i as f64 * 0.17).sin() + 1.2).collect();
        let mut want = vec![0.0; 400];
        m.spmv_ref(&x, &mut want).unwrap();
        for k in [1, 2, 3, 4] {
            let plan = ShardPlan::build(&m, k);
            let mut got = vec![f64::NAN; 400];
            for s in plan.shards() {
                let mut part = vec![0.0; s.nrows()];
                s.matrix.spmv_ref(&x, &mut part).unwrap();
                got[s.row_start..s.row_end].copy_from_slice(&part);
            }
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }

    #[test]
    fn per_shard_row_plans_describe_the_sub_csrs() {
        let m = beamlike(500, 80);
        let plan = ShardPlan::build(&m, 3);
        for s in plan.shards() {
            assert_eq!(s.plan.nrows(), s.nrows());
            assert_eq!(s.plan.nnz(), s.nnz());
            assert_eq!(s.gather_bytes(), s.plan.nonempty_rows() as u64 * 8);
        }
        let nonempty: usize = plan.shards().iter().map(|s| s.nonempty_rows()).sum();
        assert_eq!(nonempty, RowPlan::from_csr(&m).nonempty_rows());
        assert_eq!(plan.gather_bytes(), nonempty as u64 * 8);
    }

    #[test]
    fn k_clamps_to_row_count() {
        let m = beamlike(3, 10);
        let plan = ShardPlan::build(&m, 8);
        assert_eq!(plan.num_shards(), 3);
        assert!(plan.shards().iter().all(|s| s.nrows() == 1));
        let one = ShardPlan::build(&m, 0);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(one.shards()[0].nrows(), 3);
    }

    #[test]
    fn weighted_split_tracks_weight_shares() {
        let m = beamlike(800, 100);
        // A 2:1 weight split: shard 0 should hold ~2/3 of the nnz.
        let plan = ShardPlan::build_weighted(&m, &[2.0, 1.0]);
        assert_eq!(plan.num_shards(), 2);
        let share0 = plan.shards()[0].nnz() as f64 / m.nnz() as f64;
        let max_row = (0..m.nrows()).map(|r| m.row_len(r)).max().unwrap() as f64;
        assert!(
            (share0 - 2.0 / 3.0).abs() <= max_row / m.nnz() as f64,
            "share0 = {share0}"
        );
        assert!(plan.balance_factor_weighted(&[2.0, 1.0]) < 1.1);
        // The uniform factor *should* look bad on purpose here.
        assert!(plan.balance_factor() > 1.2);
    }

    #[test]
    fn uniform_weights_match_build() {
        let m = beamlike(500, 80);
        for k in [1, 2, 3, 5] {
            let uniform = ShardPlan::build(&m, k);
            let weighted = ShardPlan::build_weighted(&m, &vec![1.0; k]);
            let cuts_u: Vec<usize> = uniform.shards().iter().map(|s| s.row_start).collect();
            let cuts_w: Vec<usize> = weighted.shards().iter().map(|s| s.row_start).collect();
            assert_eq!(cuts_u, cuts_w, "k={k}");
        }
    }

    #[test]
    fn cut_points_round_trip_through_from_cuts() {
        let m = beamlike(500, 80);
        let plan = ShardPlan::build_weighted(&m, &[3.0, 1.0, 2.0]);
        let cuts = plan.cut_points();
        assert_eq!(cuts.len(), 2);
        let back = ShardPlan::from_cuts(&m, &cuts);
        assert_eq!(back.num_shards(), plan.num_shards());
        for (a, b) in plan.shards().iter().zip(back.shards()) {
            assert_eq!(a.row_start, b.row_start);
            assert_eq!(a.row_end, b.row_end);
            assert_eq!(a.matrix, b.matrix);
        }
        assert_eq!(back.cut_points(), cuts);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_cuts_rejects_unsorted() {
        let m = beamlike(100, 20);
        let _ = ShardPlan::from_cuts(&m, &[40, 40]);
    }

    #[test]
    fn weighted_k_clamps_to_row_count() {
        let m = beamlike(3, 10);
        let plan = ShardPlan::build_weighted(&m, &[1.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(plan.num_shards(), 3);
        assert!(plan.shards().iter().all(|s| s.nrows() == 1));
    }

    #[test]
    fn empty_heavy_prefix_does_not_starve_trailing_shards() {
        // All nnz in the first rows: later shards still get a row range.
        let mut rows = vec![vec![(0usize, 1.0f64), (1, 2.0), (2, 3.0)]; 4];
        rows.extend(std::iter::repeat_with(Vec::new).take(60));
        let m: Csr<f64, u32> = Csr::from_rows(8, &rows).unwrap();
        let plan = ShardPlan::build(&m, 4);
        assert_eq!(plan.num_shards(), 4);
        let covered: usize = plan.shards().iter().map(|s| s.nrows()).sum();
        assert_eq!(covered, 64);
    }
}
