//! Coordinate (triplet) storage — the assembly format.
//!
//! The Monte Carlo dose engine deposits energy voxel-by-voxel along particle
//! tracks, which naturally produces unsorted `(row, col, value)` triplets
//! with duplicates; `Coo` collects them and [`Coo::to_csr`] sorts, merges
//! and validates.

use crate::{Csr, SparseError};
use rt_f16::DoseScalar;

/// A sparse matrix as a list of `(row, col, value)` triplets.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Coo<V> {
    nrows: usize,
    ncols: usize,
    triplets: Vec<(usize, usize, V)>,
}

impl<V: DoseScalar> Coo<V> {
    /// Creates an empty matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            triplets: Vec::new(),
        }
    }

    /// Wraps triplets after bounds-checking them. Order is arbitrary and
    /// duplicates are allowed (they sum on conversion).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: Vec<(usize, usize, V)>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &triplets {
            if r >= nrows {
                return Err(SparseError::RowOutOfBounds { row: r, nrows });
            }
            if c >= ncols {
                return Err(SparseError::ColumnOutOfBounds {
                    row: r,
                    col: c,
                    ncols,
                });
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            triplets,
        })
    }

    /// Wraps triplets known to be sorted, in-bounds and duplicate-free
    /// (e.g. produced by [`Csr::iter`]). Debug builds re-check.
    pub fn from_sorted_triplets(
        nrows: usize,
        ncols: usize,
        triplets: Vec<(usize, usize, V)>,
    ) -> Self {
        debug_assert!(triplets
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        debug_assert!(triplets.iter().all(|&(r, c, _)| r < nrows && c < ncols));
        Coo {
            nrows,
            ncols,
            triplets,
        }
    }

    /// Appends one entry. Panics on out-of-bounds coordinates.
    pub fn push(&mut self, row: usize, col: usize, value: V) {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        assert!(col < self.ncols, "col {col} out of bounds ({})", self.ncols);
        self.triplets.push((row, col, value));
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate merging).
    #[inline]
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    #[inline]
    pub fn triplets(&self) -> &[(usize, usize, V)] {
        &self.triplets
    }

    /// Storage cost of the raw triplets: value + two 4-byte coordinates.
    pub fn size_bytes(&self) -> usize {
        self.triplets.len() * (V::BYTES + 8)
    }

    /// Sorts row-major, merges duplicates by summing in `f64`, and builds a
    /// validated CSR matrix. Deterministic: the merge order is the sorted
    /// order, not insertion order.
    pub fn to_csr<I: crate::ColIndex>(&self) -> Result<Csr<V, I>, SparseError> {
        let mut sorted = self.triplets.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // Merge duplicates into (row, col, value) runs.
        let mut rows: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut col_idx: Vec<I> = Vec::with_capacity(sorted.len());
        let mut values: Vec<V> = Vec::with_capacity(sorted.len());
        let mut i = 0usize;
        while i < sorted.len() {
            let (r, c, _) = sorted[i];
            let mut acc = 0.0f64;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                acc += sorted[i].2.to_f64();
                i += 1;
            }
            rows.push(r);
            col_idx.push(I::try_from_usize(c).ok_or(SparseError::IndexOverflow {
                ncols: self.ncols,
                max: I::MAX,
            })?);
            values.push(V::from_f64(acc));
        }

        // Counting pass for the row pointers.
        let mut row_ptr = vec![0u32; self.nrows + 1];
        for &r in &rows {
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr::try_new(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut coo = Coo::<f64>::new(3, 3);
        coo.push(2, 1, 5.0);
        coo.push(0, 0, 1.0);
        coo.push(2, 1, 2.0); // duplicate, sums to 7
        coo.push(0, 2, 3.0);
        let csr: Csr<f64, u32> = coo.to_csr().unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row(0).1, &[1.0, 3.0]);
        assert_eq!(csr.row(1).1, &[] as &[f64]);
        assert_eq!(csr.row(2).1, &[7.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_out_of_bounds() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(Coo::from_triplets(2, 2, vec![(0, 5, 1.0)]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![(5, 0, 1.0)]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![(1, 1, 1.0)]).is_ok());
    }

    #[test]
    fn empty_and_trailing_rows() {
        let coo = Coo::<f64>::from_triplets(5, 3, vec![(1, 0, 1.0)]).unwrap();
        let csr: Csr<f64, u32> = coo.to_csr().unwrap();
        assert_eq!(csr.row_ptr(), &[0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn fully_empty() {
        let coo = Coo::<f64>::new(4, 4);
        let csr: Csr<f64, u32> = coo.to_csr().unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn csr_coo_roundtrip() {
        let csr =
            Csr::<f64, u32>::from_rows(3, &[vec![(0, 1.0)], vec![(1, 2.0), (2, 3.0)], vec![]])
                .unwrap();
        let back: Csr<f64, u32> = csr.to_coo().to_csr().unwrap();
        assert_eq!(csr, back);
    }

    #[test]
    fn size_bytes() {
        let coo = Coo::<f32>::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(coo.size_bytes(), 2 * (4 + 8));
    }
}
