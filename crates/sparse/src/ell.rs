//! ELLPACK storage.
//!
//! ELLPACK pads every row to the length of the longest row and stores the
//! result column-major, so that consecutive SIMT lanes (one lane per row)
//! read consecutive addresses. The paper lists it as a candidate future
//! format (§II-C); the format ablation shows why it fails for dose
//! deposition matrices: with 70% empty rows and maximum row lengths in the
//! tens of thousands against an average in the hundreds, the padding factor
//! is catastrophic. [`Ell::padding_factor`] quantifies it.

use crate::{ColIndex, Csr, SparseError};
use rt_f16::DoseScalar;

/// An ELLPACK matrix: `nrows x width` dense slabs, column-major.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ell<V, I = u32> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Maximum stored row length; the padded width of the slabs.
    width: usize,
    /// `width * nrows` column indices, column-major (slot-major): entry for
    /// row `r`, slot `s` lives at `s * nrows + r`. Padding slots repeat the
    /// row's last valid index (or 0 for empty rows) with a zero value.
    col_idx: Vec<I>,
    values: Vec<V>,
}

impl<V: DoseScalar, I: ColIndex> Ell<V, I> {
    /// Converts from CSR, padding every row to the maximum row length.
    pub fn from_csr(csr: &Csr<V, I>) -> Self {
        let nrows = csr.nrows();
        let width = (0..nrows).map(|r| csr.row_len(r)).max().unwrap_or(0);
        let mut col_idx = vec![I::try_from_usize(0).unwrap(); width * nrows];
        let mut values = vec![V::zero(); width * nrows];
        for r in 0..nrows {
            let (cols, vals) = csr.row(r);
            let mut last = I::try_from_usize(0).unwrap();
            for s in 0..width {
                let slot = s * nrows + r;
                if s < cols.len() {
                    col_idx[slot] = cols[s];
                    values[slot] = vals[s];
                    last = cols[s];
                } else {
                    // Padding: repeat a valid index with a zero value so
                    // kernels can run branch-free.
                    col_idx[slot] = last;
                    values[slot] = V::zero();
                }
            }
        }
        Ell {
            nrows,
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            width,
            col_idx,
            values,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (unpadded) non-zero count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The padded row width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn col_idx(&self) -> &[I] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Ratio of stored slots (including padding) to actual non-zeros.
    /// 1.0 means no waste; dose deposition matrices typically land in the
    /// tens to hundreds.
    pub fn padding_factor(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            (self.width * self.nrows) as f64 / self.nnz as f64
        }
    }

    /// Bytes of the padded slabs.
    pub fn size_bytes(&self) -> usize {
        self.width * self.nrows * (V::BYTES + I::BYTES)
    }

    /// Sequential reference SpMV over the padded layout.
    #[allow(clippy::needless_range_loop)] // slab addressing is index math
    pub fn spmv_ref(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
            });
        }
        for r in 0..self.nrows {
            let mut acc = 0.0f64;
            for s in 0..self.width {
                let slot = s * self.nrows + r;
                acc += self.values[slot].to_f64() * x[self.col_idx[slot].to_usize()];
            }
            y[r] = acc;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr() -> Csr<f64, u32> {
        Csr::from_rows(
            4,
            &[
                vec![(0, 1.0), (2, 2.0), (3, 3.0)],
                vec![],
                vec![(1, 4.0)],
                vec![(0, 5.0), (3, 6.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_csr_spmv() {
        let c = csr();
        let e = Ell::from_csr(&c);
        assert_eq!(e.width(), 3);
        assert_eq!(e.nnz(), 6);
        let x = [1.0, 10.0, 100.0, 1000.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        c.spmv_ref(&x, &mut y1).unwrap();
        e.spmv_ref(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn padding_factor() {
        let e = Ell::from_csr(&csr());
        // 3 slots * 4 rows / 6 nnz = 2.0
        assert!((e.padding_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let c = Csr::<f64, u32>::from_rows(3, &[vec![], vec![], vec![]]).unwrap();
        let e = Ell::from_csr(&c);
        assert_eq!(e.width(), 0);
        assert_eq!(e.size_bytes(), 0);
        assert_eq!(e.padding_factor(), 1.0);
        let mut y = [1.0; 3];
        e.spmv_ref(&[0.0; 3], &mut y).unwrap();
        assert_eq!(y, [0.0; 3]);
    }

    #[test]
    fn size_grows_with_worst_row() {
        // One long row blows up the whole slab — the failure mode for
        // dose matrices.
        let mut rows = vec![vec![]; 100];
        rows[0] = (0..50).map(|c| (c, 1.0)).collect();
        let c = Csr::<f64, u32>::from_rows(50, &rows).unwrap();
        let e = Ell::from_csr(&c);
        assert_eq!(e.width(), 50);
        assert!(e.padding_factor() >= 100.0);
    }
}
