//! Validation errors shared by the sparse formats.

use core::fmt;

/// Why a sparse matrix failed structural validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SparseError {
    /// `row_ptr` must have exactly `nrows + 1` entries.
    RowPtrLength { expected: usize, actual: usize },
    /// `row_ptr` must be non-decreasing.
    RowPtrNotMonotonic { row: usize },
    /// The final `row_ptr` entry must equal the number of stored values.
    RowPtrTailMismatch { tail: usize, nnz: usize },
    /// A column index is out of bounds.
    ColumnOutOfBounds {
        row: usize,
        col: usize,
        ncols: usize,
    },
    /// Column indices within a row must be strictly increasing (sorted and
    /// duplicate-free), which the coalescing-friendly kernels rely on.
    ColumnsNotSorted { row: usize },
    /// A row index is out of bounds (COO assembly).
    RowOutOfBounds { row: usize, nrows: usize },
    /// `values` and `col_idx` must have equal lengths.
    LengthMismatch { values: usize, indices: usize },
    /// The column count does not fit in the requested index type.
    IndexOverflow { ncols: usize, max: usize },
    /// A segment extends past the end of the matrix rows.
    SegmentOutOfBounds {
        col: usize,
        start: usize,
        len: usize,
        nrows: usize,
    },
    /// Dimension mismatch in an operation (e.g. SpMV with a wrong-length
    /// input vector).
    DimensionMismatch { expected: usize, actual: usize },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowPtrLength { expected, actual } => {
                write!(f, "row_ptr length {actual}, expected {expected}")
            }
            SparseError::RowPtrNotMonotonic { row } => {
                write!(f, "row_ptr decreases at row {row}")
            }
            SparseError::RowPtrTailMismatch { tail, nnz } => {
                write!(f, "row_ptr tail {tail} != nnz {nnz}")
            }
            SparseError::ColumnOutOfBounds { row, col, ncols } => {
                write!(f, "column {col} out of bounds ({ncols}) in row {row}")
            }
            SparseError::ColumnsNotSorted { row } => {
                write!(f, "columns not strictly increasing in row {row}")
            }
            SparseError::RowOutOfBounds { row, nrows } => {
                write!(f, "row {row} out of bounds ({nrows})")
            }
            SparseError::LengthMismatch { values, indices } => {
                write!(f, "values length {values} != indices length {indices}")
            }
            SparseError::IndexOverflow { ncols, max } => {
                write!(f, "{ncols} columns do not fit in index type (max {max})")
            }
            SparseError::SegmentOutOfBounds {
                col,
                start,
                len,
                nrows,
            } => {
                write!(
                    f,
                    "segment [{start}, {start}+{len}) in column {col} exceeds {nrows} rows"
                )
            }
            SparseError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for SparseError {}
