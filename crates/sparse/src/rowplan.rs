//! Row-partition execution plans for bucketed SpMV dispatch.
//!
//! Dose deposition matrices are ~70% empty rows with heavy-tailed non-empty
//! lengths (Table I), so a single whole-matrix tile width wastes most lane
//! slots before the autotuner even runs. A [`RowPlan`] is built once per CSR
//! matrix: empty rows are dropped outright (they contribute no traffic and no
//! flops — the output is zero-filled separately), and the surviving rows are
//! *stably* partitioned into length buckets. Each bucket can then be served
//! by a tile width matched to its row lengths, launched back-to-back through
//! `Gpu::launch_group`.
//!
//! Stability matters for reproducibility: within a bucket the rows keep
//! their original ascending order, so for a fixed bucket→width assignment
//! the per-row reduction tree is a pure function of the row's length — the
//! exact same truncated shuffle tree the fixed-width tiled kernels use.
//! Only *which* tile visits a row changes, never the arithmetic within it.

use crate::{ColIndex, Csr};
use rt_f16::DoseScalar;

/// Number of row-length buckets in a [`RowPlan`].
pub const NUM_ROW_BUCKETS: usize = 6;

/// Inclusive row-length boundaries of the buckets: 1–2, 3–4, 5–8, 9–16,
/// 17–32, and 33+. Empty rows belong to no bucket.
pub const ROW_BUCKET_BOUNDS: [(u32, u32); NUM_ROW_BUCKETS] =
    [(1, 2), (3, 4), (5, 8), (9, 16), (17, 32), (33, u32::MAX)];

/// Bucket index for a non-empty row of length `len`.
///
/// # Panics
/// Panics if `len == 0`; empty rows are eliminated, not bucketed.
pub fn bucket_index_for_len(len: u32) -> usize {
    assert!(len > 0, "empty rows have no bucket");
    match len {
        1..=2 => 0,
        3..=4 => 1,
        5..=8 => 2,
        9..=16 => 3,
        17..=32 => 4,
        _ => 5,
    }
}

/// Sentinel in [`RowPlan::inverse`] marking an empty row (no scatter slot).
pub const EMPTY_ROW_SLOT: u32 = u32::MAX;

const SLOT_WIDTHS: [u32; 5] = [2, 4, 8, 16, 32];

/// One length bucket of a [`RowPlan`]: the original indices of the rows
/// whose stored length falls in `[min_len, max_len]`, in ascending
/// (original) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowBucket {
    /// Smallest row length admitted to this bucket (inclusive).
    pub min_len: u32,
    /// Largest row length admitted to this bucket (inclusive).
    pub max_len: u32,
    /// Original row indices, ascending — the stable partition order.
    pub rows: Vec<u32>,
    /// Total stored entries across the bucket's rows.
    pub nnz: u64,
    /// Lane slots a width-w tile spends on this bucket, per tile width in
    /// `[2, 4, 8, 16, 32]` order.
    slots: [u64; 5],
}

impl RowBucket {
    /// Number of rows in the bucket.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no row fell in this length range.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Lane slots a width-`width` cooperative tile spends covering this
    /// bucket's rows: `ceil(l / width) * width` per row of length `l`.
    pub fn lane_slots(&self, width: u32) -> u64 {
        let i = SLOT_WIDTHS
            .iter()
            .position(|&w| w == width)
            .unwrap_or_else(|| panic!("unsupported tile width {width}"));
        self.slots[i]
    }

    /// Fraction of width-`width` lane slots that carry a stored entry.
    /// Empty rows never reach a bucket, so this is a true occupancy figure.
    pub fn lanes_active_frac(&self, width: u32) -> f64 {
        let slots = self.lane_slots(width);
        if slots == 0 {
            0.0
        } else {
            self.nnz as f64 / slots as f64
        }
    }
}

/// A row-partition execution plan: per-bucket row-index arrays plus the
/// inverse scatter map, built once per CSR matrix and reused across every
/// bucketed launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowPlan {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    empty_rows: usize,
    /// Always `NUM_ROW_BUCKETS` entries, in `ROW_BUCKET_BOUNDS` order.
    buckets: Vec<RowBucket>,
    /// `inverse[orig_row]` = position of the row in the concatenated
    /// bucket order, or [`EMPTY_ROW_SLOT`] for empty rows.
    inverse: Vec<u32>,
}

impl RowPlan {
    /// Builds the plan from a CSR matrix: drops empty rows and stably
    /// partitions the rest into the [`ROW_BUCKET_BOUNDS`] length buckets.
    pub fn from_csr<V: DoseScalar, I: ColIndex>(m: &Csr<V, I>) -> Self {
        let nrows = m.nrows();
        assert!(nrows <= u32::MAX as usize, "row index must fit in u32");
        let mut buckets: Vec<RowBucket> = ROW_BUCKET_BOUNDS
            .iter()
            .map(|&(min_len, max_len)| RowBucket {
                min_len,
                max_len,
                rows: Vec::new(),
                nnz: 0,
                slots: [0; 5],
            })
            .collect();
        let mut empty_rows = 0usize;
        for r in 0..nrows {
            let len = m.row_len(r) as u64;
            if len == 0 {
                empty_rows += 1;
                continue;
            }
            let b = &mut buckets[bucket_index_for_len(len as u32)];
            b.rows.push(r as u32);
            b.nnz += len;
            for (i, &w) in SLOT_WIDTHS.iter().enumerate() {
                b.slots[i] += len.div_ceil(w as u64) * w as u64;
            }
        }
        let mut inverse = vec![EMPTY_ROW_SLOT; nrows];
        let mut pos = 0u32;
        for b in &buckets {
            for &r in &b.rows {
                inverse[r as usize] = pos;
                pos += 1;
            }
        }
        RowPlan {
            nrows,
            ncols: m.ncols(),
            nnz: m.nnz(),
            empty_rows,
            buckets,
            inverse,
        }
    }

    /// Rows of the source matrix (including empty rows).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the source matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries of the source matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Rows dropped from every bucket because they store no entries.
    pub fn empty_rows(&self) -> usize {
        self.empty_rows
    }

    /// Rows that survive empty-row elimination.
    pub fn nonempty_rows(&self) -> usize {
        self.nrows - self.empty_rows
    }

    /// The length buckets, always [`NUM_ROW_BUCKETS`] of them in
    /// [`ROW_BUCKET_BOUNDS`] order (possibly empty).
    pub fn buckets(&self) -> &[RowBucket] {
        &self.buckets
    }

    /// Position of `row` in the concatenated bucket order, or `None` for
    /// empty rows (which no bucketed launch visits).
    pub fn scatter_position(&self, row: usize) -> Option<u32> {
        match self.inverse[row] {
            EMPTY_ROW_SLOT => None,
            p => Some(p),
        }
    }

    /// The inverse scatter map: `inverse()[r]` is the concatenated-order
    /// position of row `r`, or [`EMPTY_ROW_SLOT`] for empty rows.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Csr<f64, u32> {
        // Lengths: 0, 1, 40, 0, 2, 8, 0, 16, 33, 5
        let lens = [0usize, 1, 40, 0, 2, 8, 0, 16, 33, 5];
        let rows: Vec<Vec<(usize, f64)>> = lens
            .iter()
            .map(|&l| (0..l).map(|c| (c, 1.0)).collect())
            .collect();
        Csr::from_rows(64, &rows).unwrap()
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index_for_len(1), 0);
        assert_eq!(bucket_index_for_len(2), 0);
        assert_eq!(bucket_index_for_len(3), 1);
        assert_eq!(bucket_index_for_len(4), 1);
        assert_eq!(bucket_index_for_len(5), 2);
        assert_eq!(bucket_index_for_len(8), 2);
        assert_eq!(bucket_index_for_len(9), 3);
        assert_eq!(bucket_index_for_len(16), 3);
        assert_eq!(bucket_index_for_len(17), 4);
        assert_eq!(bucket_index_for_len(32), 4);
        assert_eq!(bucket_index_for_len(33), 5);
        assert_eq!(bucket_index_for_len(u32::MAX), 5);
    }

    #[test]
    #[should_panic(expected = "empty rows have no bucket")]
    fn bucket_index_rejects_empty() {
        bucket_index_for_len(0);
    }

    #[test]
    fn partition_is_stable_and_complete() {
        let plan = RowPlan::from_csr(&mixed());
        assert_eq!(plan.nrows(), 10);
        assert_eq!(plan.empty_rows(), 3);
        assert_eq!(plan.nonempty_rows(), 7);
        let b = plan.buckets();
        assert_eq!(b.len(), NUM_ROW_BUCKETS);
        assert_eq!(b[0].rows, vec![1, 4]); // lengths 1, 2
        assert_eq!(b[1].rows, Vec::<u32>::new());
        assert_eq!(b[2].rows, vec![5, 9]); // lengths 8, 5 → rows 5, 9 ascending
        assert_eq!(b[3].rows, vec![7]); // length 16
        assert_eq!(b[4].rows, Vec::<u32>::new());
        assert_eq!(b[5].rows, vec![2, 8]); // lengths 40, 33
                                           // Every non-empty row appears exactly once.
        let total: usize = b.iter().map(|b| b.rows.len()).sum();
        assert_eq!(total, 7);
        // Bucket nnz sums to the matrix nnz.
        let nnz: u64 = b.iter().map(|b| b.nnz).sum();
        assert_eq!(nnz, plan.nnz() as u64);
    }

    #[test]
    fn inverse_scatter_map_round_trips() {
        let plan = RowPlan::from_csr(&mixed());
        // Concatenated order: [1, 4, 5, 9, 7, 2, 8].
        let concat: Vec<u32> = plan
            .buckets()
            .iter()
            .flat_map(|b| b.rows.iter().copied())
            .collect();
        assert_eq!(concat, vec![1, 4, 5, 9, 7, 2, 8]);
        for (pos, &row) in concat.iter().enumerate() {
            assert_eq!(plan.scatter_position(row as usize), Some(pos as u32));
            assert_eq!(plan.inverse()[row as usize], pos as u32);
        }
        for empty in [0usize, 3, 6] {
            assert_eq!(plan.scatter_position(empty), None);
            assert_eq!(plan.inverse()[empty], EMPTY_ROW_SLOT);
        }
    }

    #[test]
    fn bucket_lane_slots_and_occupancy() {
        let plan = RowPlan::from_csr(&mixed());
        let b = &plan.buckets()[0]; // lengths 1 and 2
        assert_eq!(b.nnz, 3);
        assert_eq!(b.lane_slots(2), 4); // 2 + 2
        assert_eq!(b.lane_slots(32), 64); // 32 + 32
        assert!((b.lanes_active_frac(2) - 0.75).abs() < 1e-12);
        let tail = &plan.buckets()[5]; // lengths 40 and 33
        assert_eq!(tail.lane_slots(32), 64 + 64);
        assert_eq!(tail.lane_slots(8), 40 + 40);
    }

    #[test]
    fn all_empty_matrix_has_empty_plan() {
        let m = Csr::<f64, u32>::from_rows(8, &[vec![], vec![], vec![]]).unwrap();
        let plan = RowPlan::from_csr(&m);
        assert_eq!(plan.empty_rows(), 3);
        assert_eq!(plan.nonempty_rows(), 0);
        assert!(plan.buckets().iter().all(|b| b.is_empty()));
        assert!(plan.inverse().iter().all(|&p| p == EMPTY_ROW_SLOT));
    }
}
