//! Row-length statistics of dose deposition matrices.
//!
//! These are the numbers the paper reports in Table I and Figure 2: matrix
//! shape, non-zero ratio, size in GB, the cumulative row-length histogram,
//! the fraction of empty rows (~70% in both beam-1 cases), the average
//! non-zeros per non-empty row, and the fraction of non-empty rows shorter
//! than a warp (32) — the rows for which the warp-per-row kernel wastes
//! lanes.

use crate::rowplan::{bucket_index_for_len, NUM_ROW_BUCKETS, ROW_BUCKET_BOUNDS};
use crate::{ColIndex, Csr};
use rt_f16::DoseScalar;

/// One length bucket of [`RowStats::bucket_histogram`]: how many rows and
/// stored entries fall in the `[min_len, max_len]` range. Empty rows are
/// excluded — they belong to no bucket.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BucketHistogramEntry {
    pub min_len: u32,
    pub max_len: u32,
    pub rows: u64,
    pub nnz: u64,
}

/// Summary statistics over the stored row lengths of a matrix.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RowStats {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    /// Rows with no stored entries.
    pub empty_rows: usize,
    /// Longest row.
    pub max_row_len: usize,
    /// Mean stored entries over *non-empty* rows (Figure 2's "avg nnz per
    /// row" is computed over non-empty rows; 70% of rows are empty).
    pub avg_nnz_nonempty: f64,
    /// Fraction of non-empty rows with fewer than 32 entries — the rows
    /// that under-fill a warp (5.6% liver / 14.2% prostate in the paper).
    pub frac_nonempty_below_warp: f64,
    /// Sorted lengths of the non-empty rows (ascending), for quantiles and
    /// the cumulative histogram.
    sorted_nonempty: Vec<u32>,
}

impl RowStats {
    /// Gathers statistics from a CSR matrix.
    pub fn from_csr<V: DoseScalar, I: ColIndex>(m: &Csr<V, I>) -> Self {
        let mut sorted_nonempty: Vec<u32> = (0..m.nrows())
            .map(|r| m.row_len(r) as u32)
            .filter(|&l| l > 0)
            .collect();
        sorted_nonempty.sort_unstable();
        let empty_rows = m.nrows() - sorted_nonempty.len();
        let max_row_len = sorted_nonempty.last().copied().unwrap_or(0) as usize;
        let avg_nnz_nonempty = if sorted_nonempty.is_empty() {
            0.0
        } else {
            m.nnz() as f64 / sorted_nonempty.len() as f64
        };
        let below = sorted_nonempty.partition_point(|&l| l < 32);
        let frac_nonempty_below_warp = if sorted_nonempty.is_empty() {
            0.0
        } else {
            below as f64 / sorted_nonempty.len() as f64
        };
        RowStats {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            empty_rows,
            max_row_len,
            avg_nnz_nonempty,
            frac_nonempty_below_warp,
            sorted_nonempty,
        }
    }

    /// Fraction of all rows that are empty.
    pub fn empty_fraction(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.empty_rows as f64 / self.nrows as f64
        }
    }

    /// Stored-entry density, `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.nrows as f64 * self.ncols as f64)
        }
    }

    /// Fraction of *non-empty* rows with length `< x` — one point of the
    /// Figure 2 cumulative histogram (which excludes empty rows).
    pub fn cumulative_at(&self, x: usize) -> f64 {
        if self.sorted_nonempty.is_empty() {
            return 0.0;
        }
        let below = self.sorted_nonempty.partition_point(|&l| (l as usize) < x);
        below as f64 / self.sorted_nonempty.len() as f64
    }

    /// Samples the cumulative histogram at logarithmically spaced row
    /// lengths up to the maximum — the Figure 2 curve.
    pub fn cumulative_curve(&self, points: usize) -> Vec<(usize, f64)> {
        if self.max_row_len == 0 || points == 0 {
            return Vec::new();
        }
        let lo = 1.0f64;
        let hi = (self.max_row_len + 1) as f64;
        (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1).max(1) as f64;
                let x = (lo * (hi / lo).powf(t)).round() as usize;
                (x, self.cumulative_at(x))
            })
            .collect()
    }

    /// Total lane slots a width-`width` cooperative tile spends covering
    /// the **non-empty** rows: each row of length `l` occupies
    /// `ceil(l / width) * width` slots (the last pass is padded). This is
    /// what a row-partitioned launch schedules — empty rows contribute no
    /// slots here; see [`RowStats::scheduled_lane_slots`] for whole-matrix
    /// launches that visit every row.
    pub fn lane_slots(&self, width: u32) -> u64 {
        assert!(width > 0, "tile width must be positive");
        let w = width as u64;
        self.sorted_nonempty
            .iter()
            .map(|&l| (l as u64).div_ceil(w) * w)
            .sum()
    }

    /// Fraction of non-empty-row lane slots that carry a stored entry when
    /// rows are processed by width-`width` tiles — 1.0 means no padded
    /// lanes. Empty rows are *never* counted as occupied slots: a
    /// whole-matrix launch still schedules a tile per empty row, but those
    /// lanes carry nothing (see
    /// [`RowStats::scheduled_lanes_active_frac`]).
    pub fn lanes_active_frac(&self, width: u32) -> f64 {
        let slots = self.lane_slots(width);
        if slots == 0 {
            0.0
        } else {
            self.nnz as f64 / slots as f64
        }
    }

    /// Lane slots a whole-matrix width-`width` launch schedules: the
    /// non-empty-row slots of [`RowStats::lane_slots`] plus `width` wasted
    /// slots per empty row (the classic and tiled kernels assign a tile to
    /// every row, empty or not).
    pub fn scheduled_lane_slots(&self, width: u32) -> u64 {
        self.lane_slots(width) + self.empty_rows as u64 * width as u64
    }

    /// Fraction of *scheduled* lane slots that carry a stored entry in a
    /// whole-matrix width-`width` launch. Empty rows contribute slots to
    /// the denominator and nothing to the numerator — this is the honest
    /// occupancy figure for unpartitioned launches.
    pub fn scheduled_lanes_active_frac(&self, width: u32) -> f64 {
        let slots = self.scheduled_lane_slots(width);
        if slots == 0 {
            0.0
        } else {
            self.nnz as f64 / slots as f64
        }
    }

    /// Row and nnz counts per [`ROW_BUCKET_BOUNDS`] length bucket — always
    /// [`NUM_ROW_BUCKETS`] entries, empty rows excluded.
    pub fn bucket_histogram(&self) -> Vec<BucketHistogramEntry> {
        let mut out: Vec<BucketHistogramEntry> = ROW_BUCKET_BOUNDS
            .iter()
            .map(|&(min_len, max_len)| BucketHistogramEntry {
                min_len,
                max_len,
                rows: 0,
                nnz: 0,
            })
            .collect();
        for &l in &self.sorted_nonempty {
            let e = &mut out[bucket_index_for_len(l)];
            e.rows += 1;
            e.nnz += l as u64;
        }
        debug_assert_eq!(out.len(), NUM_ROW_BUCKETS);
        out
    }

    /// q-th quantile (0..=1) of non-empty row lengths.
    pub fn quantile(&self, q: f64) -> usize {
        if self.sorted_nonempty.is_empty() {
            return 0;
        }
        let idx = ((self.sorted_nonempty.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.sorted_nonempty[idx] as usize
    }
}

/// One row of Table I: the shape summary of a named beam's matrix.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MatrixSummary {
    pub name: String,
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    /// `nnz / (rows * cols)` as a percentage, the paper's "non-zero ratio".
    pub nonzero_ratio_pct: f64,
    /// CSR size with f16 values and u32 indices, in GB (Table I's "size").
    pub size_gb: f64,
}

impl MatrixSummary {
    pub fn from_csr<V: DoseScalar, I: ColIndex>(name: &str, m: &Csr<V, I>) -> Self {
        // Table I sizes correspond to half values + 4-byte indices
        // regardless of how the matrix is currently stored.
        let bytes = 6 * m.nnz() + 4 * (m.nrows() + 1);
        MatrixSummary {
            name: name.to_string(),
            rows: m.nrows(),
            cols: m.ncols(),
            nnz: m.nnz(),
            nonzero_ratio_pct: m.density() * 100.0,
            size_gb: bytes as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> Csr<f64, u32> {
        // 10 rows: lengths 0,0,0,0,0,0,0 (7 empty), 2, 40, 100
        let mut rows: Vec<Vec<(usize, f64)>> = vec![vec![]; 10];
        rows[7] = (0..2).map(|c| (c, 1.0)).collect();
        rows[8] = (0..40).map(|c| (c, 1.0)).collect();
        rows[9] = (0..100).map(|c| (c, 1.0)).collect();
        Csr::from_rows(100, &rows).unwrap()
    }

    #[test]
    fn basic_stats() {
        let s = RowStats::from_csr(&skewed());
        assert_eq!(s.empty_rows, 7);
        assert!((s.empty_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(s.max_row_len, 100);
        assert_eq!(s.nnz, 142);
        assert!((s.avg_nnz_nonempty - 142.0 / 3.0).abs() < 1e-12);
        // One of three non-empty rows is below 32.
        assert!((s.frac_nonempty_below_warp - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_excludes_empty_rows() {
        let s = RowStats::from_csr(&skewed());
        assert_eq!(s.cumulative_at(1), 0.0); // nothing shorter than 1
        assert!((s.cumulative_at(3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.cumulative_at(41) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.cumulative_at(101), 1.0);
    }

    #[test]
    fn cumulative_curve_is_monotonic() {
        let s = RowStats::from_csr(&skewed());
        let curve = s.cumulative_curve(20);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantiles() {
        let s = RowStats::from_csr(&skewed());
        assert_eq!(s.quantile(0.0), 2);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.5), 40);
    }

    #[test]
    fn lane_occupancy() {
        let s = RowStats::from_csr(&skewed());
        // Rows 2, 40, 100 at width 32: 32 + 64 + 128 = 224 slots.
        assert_eq!(s.lane_slots(32), 224);
        assert!((s.lanes_active_frac(32) - 142.0 / 224.0).abs() < 1e-12);
        // Width 2: 2 + 40 + 100 = 142 slots, fully active.
        assert_eq!(s.lane_slots(2), 142);
        assert_eq!(s.lanes_active_frac(2), 1.0);
        // Narrower tiles never waste more lanes than wider ones.
        for pair in [2u32, 4, 8, 16, 32].windows(2) {
            assert!(s.lanes_active_frac(pair[0]) >= s.lanes_active_frac(pair[1]));
        }
    }

    #[test]
    fn scheduled_slots_count_empty_rows() {
        let s = RowStats::from_csr(&skewed());
        // 7 empty rows add 7 * width wasted slots to a whole-matrix launch.
        assert_eq!(s.scheduled_lane_slots(32), 224 + 7 * 32);
        assert!((s.scheduled_lanes_active_frac(32) - 142.0 / 448.0).abs() < 1e-12);
        // Partitioned occupancy (lanes_active_frac) never counts empties.
        assert!(s.scheduled_lanes_active_frac(32) < s.lanes_active_frac(32));
        assert_eq!(s.scheduled_lane_slots(2), 142 + 14);
    }

    #[test]
    fn bucket_histogram_partitions_nonempty_rows() {
        let s = RowStats::from_csr(&skewed());
        let h = s.bucket_histogram();
        assert_eq!(h.len(), 6);
        // Lengths 2, 40, 100 → buckets 0 (1-2) and 5 (33+).
        assert_eq!((h[0].rows, h[0].nnz), (1, 2));
        assert_eq!((h[1].rows, h[2].rows, h[3].rows, h[4].rows), (0, 0, 0, 0));
        assert_eq!((h[5].rows, h[5].nnz), (2, 140));
        let rows: u64 = h.iter().map(|e| e.rows).sum();
        let nnz: u64 = h.iter().map(|e| e.nnz).sum();
        assert_eq!(rows, 3); // empty rows excluded
        assert_eq!(nnz, 142);
    }

    #[test]
    fn summary_matches_paper_size_formula() {
        let m = skewed();
        let s = MatrixSummary::from_csr("test", &m);
        assert_eq!(s.nnz, 142);
        let expected_bytes = 6 * 142 + 4 * 11;
        assert!((s.size_gb - expected_bytes as f64 / 1e9).abs() < 1e-18);
        assert!((s.nonzero_ratio_pct - 14.2).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = Csr::<f64, u32>::from_rows(5, &[vec![], vec![]]).unwrap();
        let s = RowStats::from_csr(&m);
        assert_eq!(s.empty_fraction(), 1.0);
        assert_eq!(s.avg_nnz_nonempty, 0.0);
        assert_eq!(s.cumulative_at(10), 0.0);
        assert!(s.cumulative_curve(5).is_empty());
    }
}
