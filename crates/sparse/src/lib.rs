//! Sparse matrix formats for radiation-therapy dose deposition matrices.
//!
//! A dose deposition matrix maps spot weights (one column per pencil-beam
//! spot) to voxel doses (one row per dose-grid voxel). The matrices are
//! highly sparse (0.6–2% non-zeros in the paper's cases), extremely skewed
//! (40–200x more rows than columns), have ~70% empty rows, and heavy-tailed
//! row lengths — properties that drive every kernel design decision in the
//! paper. This crate provides:
//!
//! * [`Csr`] — compressed sparse row, the format the paper's kernel uses,
//!   generic over the value scalar ([`rt_f16::DoseScalar`]) *and* the column
//!   index type ([`ColIndex`]: `u16` indices are the paper's proposed
//!   future-work optimization).
//! * [`Coo`] — coordinate triplets, the assembly format.
//! * [`Ell`] — ELLPACK, padded column-major storage for SIMT machines.
//! * [`SellCSigma`] — SELL-C-σ (Kreutzer et al.), the paper's cited
//!   future-work format.
//! * [`RsCompressed`] — a reconstruction of RayStation's proprietary
//!   column-major run-length-segmented 16-bit format (see DESIGN.md).
//! * [`QuantizedCsr`] — CSR with 16-bit linear fixed-point codes, for the
//!   value-encoding ablation.
//! * [`stats`] — row-length statistics and the Table I / Figure 2 numbers.
//!
//! All formats carry exact [`size_bytes`](Csr::size_bytes) accounting used
//! by the memory-traffic model, and sequential reference SpMV routines used
//! as ground truth by the kernel tests.

mod coo;
mod csr;
mod ell;
mod error;
mod index;
pub mod io;
mod quantized;
mod rowplan;
mod rscompressed;
mod sell;
mod shardplan;
pub mod stats;

pub use coo::Coo;
pub use csr::Csr;
pub use ell::Ell;
pub use error::SparseError;
pub use index::ColIndex;
pub use io::{load_csr, load_csr_with_cuts, save_csr, save_csr_with_cuts, SnapshotError, Storable};
pub use quantized::QuantizedCsr;
pub use rowplan::{
    bucket_index_for_len, RowBucket, RowPlan, EMPTY_ROW_SLOT, NUM_ROW_BUCKETS, ROW_BUCKET_BOUNDS,
};
pub use rscompressed::{RsCompressed, Segment};
pub use sell::SellCSigma;
pub use shardplan::{RowShard, ShardPlan};
