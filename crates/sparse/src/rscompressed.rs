//! A reconstruction of RayStation's proprietary compressed dose-matrix
//! format (see DESIGN.md for the substitution rationale).
//!
//! The paper tells us four things about the format: it is what the clinical
//! CPU implementation uses; entries are stored in 16 bits; it was designed
//! to minimize memory on CPUs; and the natural parallelization is over
//! *columns* (spots), which forces per-thread scratch dose arrays on the
//! CPU and atomics on the GPU. A column of a dose deposition matrix is the
//! dose of one pencil-beam spot: a connected "banana" of voxels along the
//! beam direction, which in flattened voxel order becomes a set of short
//! *runs* of consecutive row indices. Storing each column as run-length
//! segments `(start_row, consecutive values...)` compresses away the
//! per-entry row index — only one 4-byte start index and a 2-byte length
//! per run — which is exactly the kind of layout a memory-constrained CPU
//! code would pick, and exactly the layout that defeats row-parallel GPU
//! execution.

use crate::{Csr, SparseError};
use rt_f16::{DoseScalar, F16};

/// One run of consecutive-row entries within a column.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// First row (voxel) of the run.
    pub start_row: u32,
    /// Number of consecutive rows covered.
    pub len: u32,
    /// Offset of the run's first value in the flattened value array.
    pub value_offset: usize,
}

/// Column-major run-length-segmented sparse storage with 16-bit values.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RsCompressed<V = F16> {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[c]..col_ptr[c+1]` indexes `segments` for column `c`.
    col_ptr: Vec<usize>,
    segments: Vec<Segment>,
    /// All runs' values, flattened in column order.
    values: Vec<V>,
}

impl<V: DoseScalar> RsCompressed<V> {
    /// Builds from CSR by transposing and run-length encoding each column.
    pub fn from_csr<I: crate::ColIndex>(csr: &Csr<V, I>) -> Self {
        let t = csr.transpose(); // rows of t = columns of csr
        let mut col_ptr = Vec::with_capacity(csr.ncols() + 1);
        let mut segments = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0usize);
        for c in 0..csr.ncols() {
            let (rows, vals) = t.row(c);
            let mut i = 0usize;
            while i < rows.len() {
                let start = rows[i];
                let mut j = i + 1;
                while j < rows.len() && rows[j] == rows[j - 1] + 1 {
                    j += 1;
                }
                segments.push(Segment {
                    start_row: start,
                    len: (j - i) as u32,
                    value_offset: values.len(),
                });
                values.extend_from_slice(&vals[i..j]);
                i = j;
            }
            col_ptr.push(segments.len());
        }
        RsCompressed {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            col_ptr,
            segments,
            values,
        }
    }

    /// Validates and wraps raw parts (used by the dose-matrix builder,
    /// which assembles columns directly).
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        segments: Vec<Segment>,
        values: Vec<V>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != ncols + 1 {
            return Err(SparseError::RowPtrLength {
                expected: ncols + 1,
                actual: col_ptr.len(),
            });
        }
        let mut expected_offset = 0usize;
        for c in 0..ncols {
            if col_ptr[c + 1] < col_ptr[c] {
                return Err(SparseError::RowPtrNotMonotonic { row: c });
            }
            let mut prev_end: Option<u32> = None;
            for seg in &segments[col_ptr[c]..col_ptr[c + 1]] {
                let end = seg.start_row as usize + seg.len as usize;
                if end > nrows || seg.len == 0 {
                    return Err(SparseError::SegmentOutOfBounds {
                        col: c,
                        start: seg.start_row as usize,
                        len: seg.len as usize,
                        nrows,
                    });
                }
                if let Some(pe) = prev_end {
                    // Runs must be disjoint and ascending (a merged run
                    // would have been one segment).
                    if seg.start_row <= pe {
                        return Err(SparseError::ColumnsNotSorted { row: c });
                    }
                }
                if seg.value_offset != expected_offset {
                    return Err(SparseError::LengthMismatch {
                        values: seg.value_offset,
                        indices: expected_offset,
                    });
                }
                expected_offset += seg.len as usize;
                prev_end = Some(seg.start_row + seg.len - 1);
            }
        }
        if expected_offset != values.len() {
            return Err(SparseError::LengthMismatch {
                values: values.len(),
                indices: expected_offset,
            });
        }
        Ok(RsCompressed {
            nrows,
            ncols,
            col_ptr,
            segments,
            values,
        })
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Segments of column `c`.
    pub fn column_segments(&self, c: usize) -> &[Segment] {
        &self.segments[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Average run length — the compression win over per-entry indices.
    pub fn avg_segment_len(&self) -> f64 {
        if self.segments.is_empty() {
            0.0
        } else {
            self.values.len() as f64 / self.segments.len() as f64
        }
    }

    /// Bytes: values + 8 per segment (4-byte start row, 4-byte length) +
    /// 8 per column pointer.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * V::BYTES + self.segments.len() * 8 + self.col_ptr.len() * 8
    }

    /// Sequential reference of the RayStation algorithm: for each column,
    /// scatter `weight * value` into the dose array. Deterministic because
    /// columns are processed in order. This is the algorithm the "GPU
    /// Baseline" ports with atomics and the CPU engine runs with scratch
    /// arrays.
    #[allow(clippy::needless_range_loop)] // column index drives two arrays
    pub fn spmv_ref(&self, weights: &[f64], dose: &mut [f64]) -> Result<(), SparseError> {
        if weights.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                actual: weights.len(),
            });
        }
        if dose.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                actual: dose.len(),
            });
        }
        dose.fill(0.0);
        for c in 0..self.ncols {
            let w = weights[c];
            if w == 0.0 {
                continue;
            }
            for seg in self.column_segments(c) {
                let vals = &self.values[seg.value_offset..seg.value_offset + seg.len as usize];
                let base = seg.start_row as usize;
                for (k, v) in vals.iter().enumerate() {
                    dose[base + k] += v.to_f64() * w;
                }
            }
        }
        Ok(())
    }

    /// Converts back to CSR (the paper's export path: RayStation format →
    /// CSR for the GPU kernels).
    pub fn to_csr(&self) -> Result<Csr<V, u32>, SparseError> {
        let mut triplets = Vec::with_capacity(self.nnz());
        for c in 0..self.ncols {
            for seg in self.column_segments(c) {
                let vals = &self.values[seg.value_offset..seg.value_offset + seg.len as usize];
                for (k, v) in vals.iter().enumerate() {
                    triplets.push((seg.start_row as usize + k, c, *v));
                }
            }
        }
        crate::Coo::from_triplets(self.nrows, self.ncols, triplets)?.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64, u32> {
        // Column 0 hits rows 1,2,3 (one run) and 7 (second run);
        // column 1 hits rows 2,3; column 2 empty; column 3 hits row 0.
        Csr::from_rows(
            4,
            &[
                vec![(3, 9.0)],
                vec![(0, 1.0)],
                vec![(0, 2.0), (1, 5.0)],
                vec![(0, 3.0), (1, 6.0)],
                vec![],
                vec![],
                vec![],
                vec![(0, 4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_csr_builds_runs() {
        let rs = RsCompressed::from_csr(&sample());
        // 7 stored entries: rows 0,1 have one each, rows 2,3 two each,
        // row 7 one.
        assert_eq!(rs.nnz(), 7);
        let segs0 = rs.column_segments(0);
        assert_eq!(segs0.len(), 2);
        assert_eq!((segs0[0].start_row, segs0[0].len), (1, 3));
        assert_eq!((segs0[1].start_row, segs0[1].len), (7, 1));
        let segs1 = rs.column_segments(1);
        assert_eq!(segs1.len(), 1);
        assert_eq!((segs1[0].start_row, segs1[0].len), (2, 2));
        assert!(rs.column_segments(2).is_empty());
        // 7 values over 4 segments.
        assert!((rs.avg_segment_len() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_csr() {
        let c = sample();
        let rs = RsCompressed::from_csr(&c);
        let w = [2.0, 3.0, 5.0, 7.0];
        let mut d1 = vec![0.0; 8];
        let mut d2 = vec![0.0; 8];
        c.spmv_ref(&w, &mut d1).unwrap();
        rs.spmv_ref(&w, &mut d2).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn csr_roundtrip() {
        let c = sample();
        let rs = RsCompressed::from_csr(&c);
        let back = rs.to_csr().unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn validation_rejects_overlapping_segments() {
        let bad = RsCompressed::<f64>::try_new(
            10,
            1,
            vec![0, 2],
            vec![
                Segment {
                    start_row: 0,
                    len: 3,
                    value_offset: 0,
                },
                Segment {
                    start_row: 2,
                    len: 2,
                    value_offset: 3,
                },
            ],
            vec![1.0; 5],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn validation_rejects_out_of_bounds() {
        let bad = RsCompressed::<f64>::try_new(
            4,
            1,
            vec![0, 1],
            vec![Segment {
                start_row: 3,
                len: 2,
                value_offset: 0,
            }],
            vec![1.0; 2],
        );
        assert!(matches!(bad, Err(SparseError::SegmentOutOfBounds { .. })));
    }

    #[test]
    fn validation_rejects_zero_len_segment() {
        let bad = RsCompressed::<f64>::try_new(
            4,
            1,
            vec![0, 1],
            vec![Segment {
                start_row: 0,
                len: 0,
                value_offset: 0,
            }],
            vec![],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn compression_beats_csr_for_contiguous_columns() {
        // A column that is one long run: CSR pays 4 bytes of column index
        // per entry, RsCompressed pays 8 bytes once.
        let rows: Vec<Vec<(usize, f64)>> = (0..1000).map(|_| vec![(0, 1.0)]).collect();
        let c = Csr::<f64, u32>::from_rows(1, &rows).unwrap();
        let rs = RsCompressed::from_csr(&c);
        assert_eq!(rs.segments().len(), 1);
        assert!(rs.size_bytes() < c.size_bytes());
    }

    #[test]
    fn zero_weight_columns_are_skipped() {
        let c = sample();
        let rs = RsCompressed::from_csr(&c);
        let mut d = vec![0.0; 8];
        rs.spmv_ref(&[0.0; 4], &mut d).unwrap();
        assert!(d.iter().all(|&x| x == 0.0));
    }
}
