//! Compressed sparse row storage.

use crate::{ColIndex, Coo, SparseError};
use rt_f16::DoseScalar;

/// A CSR matrix with value type `V` and column index type `I`.
///
/// `row_ptr` is stored as `u32`, matching the paper's traffic model (the
/// `12 * nr` term in the operational-intensity bound counts 4 bytes of
/// row-pointer per row). This caps the representable `nnz` at `u32::MAX`
/// (~4.3e9), which covers every matrix in Table I.
///
/// Invariants (checked by [`Csr::try_new`], preserved by constructors):
/// * `row_ptr.len() == nrows + 1`, non-decreasing, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == nnz`.
/// * `values.len() == col_idx.len() == nnz`.
/// * Column indices within each row are strictly increasing and `< ncols`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Csr<V, I = u32> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<I>,
    values: Vec<V>,
}

impl<V: DoseScalar, I: ColIndex> Csr<V, I> {
    /// Builds a CSR matrix after validating every structural invariant.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self, SparseError> {
        I::check_ncols(ncols)?;
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::RowPtrLength {
                expected: nrows + 1,
                actual: row_ptr.len(),
            });
        }
        if values.len() != col_idx.len() {
            return Err(SparseError::LengthMismatch {
                values: values.len(),
                indices: col_idx.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::RowPtrNotMonotonic { row: 0 });
        }
        for r in 0..nrows {
            if row_ptr[r + 1] < row_ptr[r] {
                return Err(SparseError::RowPtrNotMonotonic { row: r });
            }
        }
        if row_ptr[nrows] as usize != values.len() {
            return Err(SparseError::RowPtrTailMismatch {
                tail: row_ptr[nrows] as usize,
                nnz: values.len(),
            });
        }
        for r in 0..nrows {
            let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            let mut prev: Option<usize> = None;
            for &c in &col_idx[lo..hi] {
                let c = c.to_usize();
                if c >= ncols {
                    return Err(SparseError::ColumnOutOfBounds {
                        row: r,
                        col: c,
                        ncols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::ColumnsNotSorted { row: r });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds from per-row `(column, value)` lists. Each row's entries must
    /// be strictly increasing in column.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, V)>]) -> Result<Self, SparseError> {
        let nrows = rows.len();
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0u32);
        for row in rows {
            for &(c, v) in row {
                let idx = I::try_from_usize(c)
                    .ok_or(SparseError::IndexOverflow { ncols, max: I::MAX })?;
                col_idx.push(idx);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr::try_new(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Builds from unsorted triplets; duplicates are summed in `f64`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, V)],
    ) -> Result<Self, SparseError> {
        Coo::from_triplets(nrows, ncols, triplets.to_vec())?.to_csr()
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored, `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
        }
    }

    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[I] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The `(column indices, values)` slices of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[I], &[V]) {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Iterates `(row, col, value)` over stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, V)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (r, c.to_usize(), v))
        })
    }

    /// Exact size of the stored arrays in bytes: `V::BYTES * nnz` values,
    /// `I::BYTES * nnz` column indices, `4 * (nrows + 1)` row pointers.
    /// This is the "size (GB)" column of Table I.
    pub fn size_bytes(&self) -> usize {
        V::BYTES * self.nnz() + I::BYTES * self.nnz() + 4 * (self.nrows + 1)
    }

    /// Sequential reference SpMV: `y = A x`, accumulating each row's dot
    /// product in `f64` in ascending column order. This is the ground truth
    /// the kernel tests compare against; it is bitwise deterministic.
    #[allow(clippy::needless_range_loop)] // row index drives three arrays
    pub fn spmv_ref(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
            });
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0f64;
            for (c, v) in cols.iter().zip(vals.iter()) {
                acc += v.to_f64() * x[c.to_usize()];
            }
            y[r] = acc;
        }
        Ok(())
    }

    /// Transpose-SpMV: `z = A^T y` (needed by the optimizer's gradient).
    /// Deterministic: scatters rows in order.
    #[allow(clippy::needless_range_loop)] // row index drives three arrays
    pub fn spmv_transpose_ref(&self, y: &[f64], z: &mut [f64]) -> Result<(), SparseError> {
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
            });
        }
        if z.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                actual: z.len(),
            });
        }
        z.fill(0.0);
        for r in 0..self.nrows {
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                z[c.to_usize()] += v.to_f64() * yr;
            }
        }
        Ok(())
    }

    /// Returns the explicit transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr<V, u32> {
        // Counting sort by column.
        let mut counts = vec![0u32; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c.to_usize() + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr_t = counts.clone();
        let mut col_idx_t = vec![0u32; self.nnz()];
        let mut values_t = vec![V::zero(); self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                let c = c.to_usize();
                let dst = cursor[c] as usize;
                col_idx_t[dst] = r as u32;
                values_t[dst] = *v;
                cursor[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: row_ptr_t,
            col_idx: col_idx_t,
            values: values_t,
        }
    }

    /// Converts the stored values to another scalar type (e.g. `f64` master
    /// data down to `F16` for the Half/Double kernel), rounding once.
    pub fn convert_values<W: DoseScalar>(&self) -> Csr<W, I> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|v| W::from_f64(v.to_f64()))
                .collect(),
        }
    }

    /// Converts the column index type, failing if any index does not fit
    /// (the liver cases' ~68000 columns overflow `u16`, as the paper notes).
    pub fn convert_indices<J: ColIndex>(&self) -> Result<Csr<V, J>, SparseError> {
        J::check_ncols(self.ncols)?;
        let col_idx = self
            .col_idx
            .iter()
            .map(|c| {
                J::try_from_usize(c.to_usize()).ok_or(SparseError::IndexOverflow {
                    ncols: self.ncols,
                    max: J::MAX,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx,
            values: self.values.clone(),
        })
    }

    /// Converts to coordinate form.
    pub fn to_coo(&self) -> Coo<V> {
        Coo::from_sorted_triplets(self.nrows, self.ncols, self.iter().collect::<Vec<_>>())
    }

    /// Removes stored entries with `|value| < threshold`, returning the new
    /// matrix. Monte Carlo dose engines use this to strip numerical noise.
    pub fn prune(&self, threshold: f64) -> Csr<V, I> {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                if v.to_f64().abs() >= threshold {
                    col_idx.push(*c);
                    values.push(*v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_f16::F16;

    fn small() -> Csr<f64, u32> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        // [ 0 5 6 ]
        Csr::from_rows(
            3,
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![],
                vec![(0, 3.0), (1, 4.0)],
                vec![(1, 5.0), (2, 6.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let m = small();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_len(1), 0);
        assert_eq!(m.row(2).1, &[3.0, 4.0]);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spmv_reference() {
        let m = small();
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 4];
        m.spmv_ref(&x, &mut y).unwrap();
        assert_eq!(y, [201.0, 0.0, 43.0, 650.0]);
    }

    #[test]
    fn spmv_dimension_errors() {
        let m = small();
        let mut y = [0.0; 4];
        assert!(m.spmv_ref(&[1.0, 2.0], &mut y).is_err());
        let x = [1.0, 2.0, 3.0];
        assert!(m.spmv_ref(&x, &mut [0.0; 3]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.nnz(), 6);
        let tt = t.transpose();
        for (a, b) in m.iter().zip(tt.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let m = small();
        let y = [1.0, 2.0, 3.0, 4.0];
        let mut z1 = [0.0; 3];
        m.spmv_transpose_ref(&y, &mut z1).unwrap();
        let t = m.transpose();
        let mut z2 = [0.0; 3];
        t.spmv_ref(&y, &mut z2).unwrap();
        assert_eq!(z1, z2);
    }

    #[test]
    fn validation_rejects_bad_structures() {
        // Wrong row_ptr length.
        assert!(matches!(
            Csr::<f64, u32>::try_new(2, 2, vec![0, 1], vec![0u32], vec![1.0]),
            Err(SparseError::RowPtrLength { .. })
        ));
        // Decreasing row_ptr.
        assert!(matches!(
            Csr::<f64, u32>::try_new(2, 2, vec![0, 1, 0], vec![0u32], vec![1.0]),
            Err(SparseError::RowPtrNotMonotonic { .. })
        ));
        // Tail mismatch.
        assert!(matches!(
            Csr::<f64, u32>::try_new(1, 2, vec![0, 2], vec![0u32], vec![1.0]),
            Err(SparseError::LengthMismatch { .. }) | Err(SparseError::RowPtrTailMismatch { .. })
        ));
        // Column out of bounds.
        assert!(matches!(
            Csr::<f64, u32>::try_new(1, 2, vec![0, 1], vec![5u32], vec![1.0]),
            Err(SparseError::ColumnOutOfBounds { .. })
        ));
        // Unsorted columns.
        assert!(matches!(
            Csr::<f64, u32>::try_new(1, 3, vec![0, 2], vec![2u32, 1], vec![1.0, 2.0]),
            Err(SparseError::ColumnsNotSorted { .. })
        ));
        // Duplicate columns.
        assert!(matches!(
            Csr::<f64, u32>::try_new(1, 3, vec![0, 2], vec![1u32, 1], vec![1.0, 2.0]),
            Err(SparseError::ColumnsNotSorted { .. })
        ));
    }

    #[test]
    fn index_conversion() {
        let m = small();
        let m16: Csr<f64, u16> = m.convert_indices().unwrap();
        assert_eq!(m16.nnz(), m.nnz());
        let x = [1.0, 10.0, 100.0];
        let mut y1 = [0.0; 4];
        let mut y2 = [0.0; 4];
        m.spmv_ref(&x, &mut y1).unwrap();
        m16.spmv_ref(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);

        // u16 overflow is rejected.
        let wide = Csr::<f64, u32>::from_rows(70_000, &[vec![(69_999, 1.0)]]).unwrap();
        assert!(wide.convert_indices::<u16>().is_err());
    }

    #[test]
    fn value_conversion_rounds_once() {
        let m =
            Csr::<f64, u32>::from_rows(1, &[vec![(0, 1.0 + 2.0f64.powi(-11) + 2.0f64.powi(-25))]])
                .unwrap();
        let h: Csr<F16, u32> = m.convert_values();
        // Single-step rounding: see rt-f16's double-rounding test.
        assert_eq!(h.values()[0].to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn size_bytes_accounting() {
        let m = small();
        let h: Csr<F16, u32> = m.convert_values();
        // 6 nnz * (2 + 4) + 5 * 4 row ptr entries.
        assert_eq!(h.size_bytes(), 6 * 6 + 5 * 4);
        let h16: Csr<F16, u16> = h.convert_indices().unwrap();
        assert_eq!(h16.size_bytes(), 6 * 4 + 5 * 4);
    }

    #[test]
    fn prune_strips_small_values() {
        let m = small();
        let p = m.prune(3.5);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.nrows(), m.nrows());
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 4];
        p.spmv_ref(&x, &mut y).unwrap();
        assert_eq!(y, [0.0, 0.0, 4.0, 11.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::<f64, u32>::from_rows(0, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        let mut y: [f64; 0] = [];
        m.spmv_ref(&[], &mut y).unwrap();
    }

    #[test]
    fn triplets_sum_duplicates() {
        let m =
            Csr::<f64, u32>::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 3.0), (0, 1, 4.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1u32]);
        assert_eq!(vals, &[6.0]);
    }
}
