//! SELL-C-σ storage (Kreutzer, Hager, Wellein, Fehske, Bishop 2014).
//!
//! The paper cites SELL-C-σ as the serious future-work alternative to CSR
//! (§II-C). The format chops rows into chunks of `C` (one SIMD/SIMT slice),
//! pads only within a chunk, and sorts rows by length inside windows of
//! `σ` rows before chunking so that similar-length rows share a chunk —
//! recovering ELLPACK's coalescing without its global padding blow-up.
//! A permutation array maps sorted positions back to original rows.

use crate::{ColIndex, Csr, SparseError};
use rt_f16::DoseScalar;

/// A SELL-C-σ matrix.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SellCSigma<V, I = u32> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    chunk: usize,
    sigma: usize,
    /// Start offset of each chunk in `values` / `col_idx`.
    chunk_ptr: Vec<usize>,
    /// Padded width of each chunk.
    chunk_width: Vec<usize>,
    /// `perm[sorted_pos] = original_row`.
    perm: Vec<u32>,
    /// Chunk-local column-major slabs: entry for lane `l`, slot `s` of
    /// chunk `k` lives at `chunk_ptr[k] + s * chunk + l`.
    col_idx: Vec<I>,
    values: Vec<V>,
}

impl<V: DoseScalar, I: ColIndex> SellCSigma<V, I> {
    /// Converts from CSR with chunk size `chunk` (C) and sorting window
    /// `sigma` (σ, rounded up to a multiple of `chunk`; `sigma = 1`
    /// disables sorting).
    pub fn from_csr(csr: &Csr<V, I>, chunk: usize, sigma: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        let nrows = csr.nrows();
        let sigma = sigma.max(1);

        // Sort rows by descending length within each sigma-window.
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| core::cmp::Reverse(csr.row_len(r as usize)));
        }

        let nchunks = nrows.div_ceil(chunk);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_width = Vec::with_capacity(nchunks);
        chunk_ptr.push(0usize);
        for k in 0..nchunks {
            let lanes = &perm[k * chunk..((k + 1) * chunk).min(nrows)];
            let width = lanes
                .iter()
                .map(|&r| csr.row_len(r as usize))
                .max()
                .unwrap_or(0);
            chunk_width.push(width);
            chunk_ptr.push(chunk_ptr[k] + width * chunk);
        }

        let total = chunk_ptr[nchunks];
        let zero_idx = I::try_from_usize(0).unwrap();
        let mut col_idx = vec![zero_idx; total];
        let mut values = vec![V::zero(); total];
        for k in 0..nchunks {
            let base = chunk_ptr[k];
            let width = chunk_width[k];
            for l in 0..chunk {
                let pos = k * chunk + l;
                if pos >= nrows {
                    continue; // tail lanes of the last chunk stay zero
                }
                let row = perm[pos] as usize;
                let (cols, vals) = csr.row(row);
                let mut last = zero_idx;
                for s in 0..width {
                    let slot = base + s * chunk + l;
                    if s < cols.len() {
                        col_idx[slot] = cols[s];
                        values[slot] = vals[s];
                        last = cols[s];
                    } else {
                        col_idx[slot] = last;
                    }
                }
            }
        }

        SellCSigma {
            nrows,
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            chunk,
            sigma,
            chunk_ptr,
            chunk_width,
            perm,
            col_idx,
            values,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    #[inline]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Chunk start offsets into the slabs (one per chunk, plus the end).
    #[inline]
    pub fn chunk_ptrs(&self) -> &[usize] {
        &self.chunk_ptr
    }

    /// Padded width of each chunk.
    #[inline]
    pub fn chunk_widths(&self) -> &[usize] {
        &self.chunk_width
    }

    /// The column-index slab (chunk-local column-major layout).
    #[inline]
    pub fn col_idx_slab(&self) -> &[I] {
        &self.col_idx
    }

    /// The value slab (chunk-local column-major layout).
    #[inline]
    pub fn values_slab(&self) -> &[V] {
        &self.values
    }

    /// Total slots in the slabs (non-zeros plus padding).
    #[inline]
    pub fn padded_slots(&self) -> usize {
        self.values.len()
    }

    /// Ratio of stored slots (including padding) to non-zeros.
    pub fn padding_factor(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.values.len() as f64 / self.nnz as f64
        }
    }

    /// Bytes: slabs + chunk metadata + permutation.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * (V::BYTES + I::BYTES)
            + self.chunk_ptr.len() * 8
            + self.chunk_width.len() * 4
            + self.perm.len() * 4
    }

    /// Sequential reference SpMV. Output lands in *original* row order.
    pub fn spmv_ref(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                actual: y.len(),
            });
        }
        let nchunks = self.chunk_width.len();
        for k in 0..nchunks {
            let base = self.chunk_ptr[k];
            let width = self.chunk_width[k];
            for l in 0..self.chunk {
                let pos = k * self.chunk + l;
                if pos >= self.nrows {
                    continue;
                }
                let mut acc = 0.0f64;
                for s in 0..width {
                    let slot = base + s * self.chunk + l;
                    acc += self.values[slot].to_f64() * x[self.col_idx[slot].to_usize()];
                }
                y[self.perm[pos] as usize] = acc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_csr() -> Csr<f64, u32> {
        // Row lengths 5, 0, 1, 0, 3, 2, 0, 4 — the kind of irregularity
        // sigma-sorting is for.
        let rows: Vec<Vec<(usize, f64)>> = vec![
            (0..5).map(|c| (c, (c + 1) as f64)).collect(),
            vec![],
            vec![(3, 7.0)],
            vec![],
            (1..4).map(|c| (c, c as f64 * 0.5)).collect(),
            vec![(0, 1.0), (5, 2.0)],
            vec![],
            (2..6).map(|c| (c, 1.0)).collect(),
        ];
        Csr::from_rows(6, &rows).unwrap()
    }

    #[test]
    fn matches_csr_spmv_various_configs() {
        let c = skewed_csr();
        let x: Vec<f64> = (0..6).map(|i| (i + 1) as f64).collect();
        let mut want = vec![0.0; 8];
        c.spmv_ref(&x, &mut want).unwrap();
        for (chunk, sigma) in [(1, 1), (2, 1), (2, 4), (4, 8), (8, 8), (32, 64)] {
            let s = SellCSigma::from_csr(&c, chunk, sigma);
            let mut got = vec![0.0; 8];
            s.spmv_ref(&x, &mut got).unwrap();
            assert_eq!(got, want, "C={chunk} sigma={sigma}");
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        let c = skewed_csr();
        let unsorted = SellCSigma::from_csr(&c, 4, 1);
        let sorted = SellCSigma::from_csr(&c, 4, 8);
        assert!(
            sorted.padding_factor() <= unsorted.padding_factor(),
            "sorting should not increase padding: {} vs {}",
            sorted.padding_factor(),
            unsorted.padding_factor()
        );
    }

    #[test]
    fn perm_is_a_permutation() {
        let c = skewed_csr();
        let s = SellCSigma::from_csr(&c, 4, 8);
        let mut seen = [false; 8];
        for &p in s.perm() {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn chunk_equal_nrows_is_ellpack_like() {
        let c = skewed_csr();
        let s = SellCSigma::from_csr(&c, 8, 1);
        // Single chunk padded to the global max width of 5.
        assert_eq!(s.chunk_width, vec![5]);
    }

    #[test]
    fn empty_matrix() {
        let c = Csr::<f64, u32>::from_rows(0, &[]).unwrap();
        let s = SellCSigma::from_csr(&c, 4, 4);
        assert_eq!(s.nnz(), 0);
        let mut y: [f64; 0] = [];
        s.spmv_ref(&[], &mut y).unwrap();
    }
}
