//! Binary matrix snapshots — the equivalent of the paper's export path
//! (§IV: matrices are exported from RayStation after the Monte Carlo
//! dose engine runs, then converted and loaded by the benchmark code).
//!
//! Format (little-endian throughout):
//!
//! ```text
//! magic   "RTDM"            4 bytes
//! version u32               1 (matrix only) or 2 (matrix + shard cuts)
//! vtag    u32               value scalar tag
//! itag    u32               index scalar tag
//! nrows   u64
//! ncols   u64
//! nnz     u64
//! row_ptr (nrows + 1) x u32
//! col_idx nnz x index
//! values  nnz x value
//! -- version 2 only --
//! ncuts   u32               interior shard cut count (k - 1)
//! cuts    ncuts x u64       strictly increasing row boundaries
//! ```
//!
//! Version 2 appends the interior cut points of a
//! [`crate::ShardPlan`] so a serving engine can cold-start a sharded
//! plan from the persisted cuts ([`crate::ShardPlan::from_cuts`])
//! instead of re-sweeping the nnz curve; [`load_csr`] accepts both
//! versions and simply drops the cuts.
//!
//! Loading validates the full CSR structure via [`Csr::try_new`] and the
//! cut points against the row count, so a corrupted or truncated
//! snapshot cannot produce an inconsistent matrix or shard plan.

use crate::{ColIndex, Csr, SparseError};
use rt_f16::{Bf16, DoseScalar, F16};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RTDM";
const VERSION: u32 = 1;
const VERSION_CUTS: u32 = 2;

/// A scalar with a stable on-disk encoding.
pub trait Storable: Sized + Copy {
    /// Type tag stored in the header.
    const TAG: u32;
    const SIZE: usize;
    fn write_to(&self, out: &mut Vec<u8>);
    fn read_from(bytes: &[u8]) -> Self;
}

macro_rules! storable_prim {
    ($ty:ty, $tag:expr) => {
        impl Storable for $ty {
            const TAG: u32 = $tag;
            const SIZE: usize = core::mem::size_of::<$ty>();
            fn write_to(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_from(bytes: &[u8]) -> Self {
                <$ty>::from_le_bytes(bytes.try_into().expect("size checked by caller"))
            }
        }
    };
}

storable_prim!(u16, 1);
storable_prim!(u32, 2);
storable_prim!(u64, 3);
storable_prim!(f32, 4);
storable_prim!(f64, 5);

impl Storable for F16 {
    const TAG: u32 = 6;
    const SIZE: usize = 2;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        F16::from_bits(u16::from_le_bytes(bytes.try_into().expect("size checked")))
    }
}

impl Storable for Bf16 {
    const TAG: u32 = 7;
    const SIZE: usize = 2;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        Bf16::from_bits(u16::from_le_bytes(bytes.try_into().expect("size checked")))
    }
}

/// Errors from loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    Io(io::Error),
    BadMagic,
    UnsupportedVersion(u32),
    /// The file's scalar tags do not match the requested types.
    TypeMismatch {
        expected: (u32, u32),
        found: (u32, u32),
    },
    Truncated,
    Structure(SparseError),
    /// The version-2 shard cut points are not strictly increasing row
    /// boundaries inside `(0, nrows)`.
    BadCuts,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an RTDM snapshot"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "scalar type mismatch: expected {expected:?}, found {found:?}"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Structure(e) => write!(f, "invalid matrix structure: {e}"),
            SnapshotError::BadCuts => write!(f, "invalid shard cut points"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Writes a version-1 CSR snapshot (matrix only).
pub fn save_csr<V, I, W>(m: &Csr<V, I>, out: &mut W) -> io::Result<()>
where
    V: DoseScalar + Storable,
    I: ColIndex + Storable,
    W: Write,
{
    save_csr_impl(m, None, out)
}

/// Writes a version-2 CSR snapshot carrying the interior shard cut
/// points of a [`crate::ShardPlan`] (see
/// [`crate::ShardPlan::cut_points`]), so a sharded plan can cold-start
/// via [`crate::ShardPlan::from_cuts`] without re-sweeping the nnz
/// curve. Pass an empty slice to persist an explicit "one shard" plan.
///
/// # Panics
/// Panics if the cuts are not strictly increasing within
/// `(0, m.nrows())` — a snapshot must never persist cuts that
/// [`load_csr_with_cuts`] would reject.
pub fn save_csr_with_cuts<V, I, W>(m: &Csr<V, I>, cuts: &[usize], out: &mut W) -> io::Result<()>
where
    V: DoseScalar + Storable,
    I: ColIndex + Storable,
    W: Write,
{
    assert!(
        cuts_valid(cuts, m.nrows()),
        "shard cut points must be strictly increasing within (0, nrows)"
    );
    save_csr_impl(m, Some(cuts), out)
}

fn cuts_valid(cuts: &[usize], nrows: usize) -> bool {
    let mut prev = 0usize;
    cuts.iter().all(|&c| {
        let ok = c > prev && c < nrows;
        prev = c;
        ok
    })
}

fn save_csr_impl<V, I, W>(m: &Csr<V, I>, cuts: Option<&[usize]>, out: &mut W) -> io::Result<()>
where
    V: DoseScalar + Storable,
    I: ColIndex + Storable,
    W: Write,
{
    let mut buf =
        Vec::with_capacity(4 + 4 * 3 + 8 * 3 + 4 * (m.nrows() + 1) + (V::SIZE + I::SIZE) * m.nnz());
    buf.extend_from_slice(MAGIC);
    let version = if cuts.is_some() {
        VERSION_CUTS
    } else {
        VERSION
    };
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&<V as Storable>::TAG.to_le_bytes());
    buf.extend_from_slice(&<I as Storable>::TAG.to_le_bytes());
    buf.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
    buf.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
    buf.extend_from_slice(&(m.nnz() as u64).to_le_bytes());
    for &p in m.row_ptr() {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    for c in m.col_idx() {
        c.write_to(&mut buf);
    }
    for v in m.values() {
        v.write_to(&mut buf);
    }
    if let Some(cuts) = cuts {
        buf.extend_from_slice(&(cuts.len() as u32).to_le_bytes());
        for &c in cuts {
            buf.extend_from_slice(&(c as u64).to_le_bytes());
        }
    }
    out.write_all(&buf)
}

/// Reads and validates a CSR snapshot (version 1 or 2), dropping any
/// persisted shard cuts.
pub fn load_csr<V, I, R>(input: &mut R) -> Result<Csr<V, I>, SnapshotError>
where
    V: DoseScalar + Storable,
    I: ColIndex + Storable,
    R: Read,
{
    load_csr_with_cuts(input).map(|(m, _)| m)
}

/// A loaded CSR plus the interior shard cut points persisted in a
/// version-2 snapshot (`None` for plain version-1 snapshots).
pub type CsrWithCuts<V, I> = (Csr<V, I>, Option<Vec<usize>>);

/// Reads and validates a CSR snapshot, returning the persisted interior
/// shard cut points when the snapshot is version 2 (`None` for plain
/// version-1 snapshots). Cuts are validated to be strictly increasing
/// within `(0, nrows)` so they can be fed straight to
/// [`crate::ShardPlan::from_cuts`].
pub fn load_csr_with_cuts<V, I, R>(input: &mut R) -> Result<CsrWithCuts<V, I>, SnapshotError>
where
    V: DoseScalar + Storable,
    I: ColIndex + Storable,
    R: Read,
{
    let mut data = Vec::new();
    input.read_to_end(&mut data)?;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
        if *pos + n > data.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &data[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    if take(&mut pos, 4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let read_u32 = |pos: &mut usize| -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
    };
    let read_u64 = |pos: &mut usize| -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
    };

    let version = read_u32(&mut pos)?;
    if version != VERSION && version != VERSION_CUTS {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let vtag = read_u32(&mut pos)?;
    let itag = read_u32(&mut pos)?;
    if (vtag, itag) != (<V as Storable>::TAG, <I as Storable>::TAG) {
        return Err(SnapshotError::TypeMismatch {
            expected: (<V as Storable>::TAG, <I as Storable>::TAG),
            found: (vtag, itag),
        });
    }
    let nrows = read_u64(&mut pos)? as usize;
    let ncols = read_u64(&mut pos)? as usize;
    let nnz = read_u64(&mut pos)? as usize;

    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(read_u32(&mut pos)?);
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(I::read_from(take(&mut pos, I::SIZE)?));
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(V::read_from(take(&mut pos, V::SIZE)?));
    }

    let cuts = if version == VERSION_CUTS {
        let ncuts = read_u32(&mut pos)? as usize;
        let mut cuts = Vec::with_capacity(ncuts);
        for _ in 0..ncuts {
            cuts.push(read_u64(&mut pos)? as usize);
        }
        if !cuts_valid(&cuts, nrows) {
            return Err(SnapshotError::BadCuts);
        }
        Some(cuts)
    } else {
        None
    };

    let m =
        Csr::try_new(nrows, ncols, row_ptr, col_idx, values).map_err(SnapshotError::Structure)?;
    Ok((m, cuts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<F16, u32> {
        Csr::<f64, u32>::from_rows(
            4,
            &[
                vec![(0, 1.5), (3, 2.25)],
                vec![],
                vec![(1, 0.75)],
                vec![(0, 3.0), (2, 0.125), (3, 9.0)],
            ],
        )
        .unwrap()
        .convert_values()
    }

    #[test]
    fn round_trip_is_exact() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr(&m, &mut buf).unwrap();
        let back: Csr<F16, u32> = load_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn round_trip_other_scalars() {
        let m64: Csr<f64, u32> = Csr::from_rows(2, &[vec![(0, 1.0)], vec![(1, -2.5)]]).unwrap();
        let mut buf = Vec::new();
        save_csr(&m64, &mut buf).unwrap();
        let back: Csr<f64, u32> = load_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(m64, back);

        let m16: Csr<F16, u16> = m64.convert_values().convert_indices().unwrap();
        let mut buf = Vec::new();
        save_csr(&m16, &mut buf).unwrap();
        let back: Csr<F16, u16> = load_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(m16, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = b"NOPE".to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            load_csr::<F16, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn rejects_type_mismatch() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr(&m, &mut buf).unwrap();
        assert!(matches!(
            load_csr::<f32, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr(&m, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            load_csr::<F16, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn rejects_corrupted_structure() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr(&m, &mut buf).unwrap();
        // Corrupt a row_ptr entry (header is 4+4+4+4+8+8+8 = 40 bytes).
        buf[41] = 0xFF;
        assert!(matches!(
            load_csr::<F16, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::Structure(_))
        ));
    }

    #[test]
    fn cuts_round_trip_and_v1_reports_none() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr_with_cuts(&m, &[1, 3], &mut buf).unwrap();
        let (back, cuts) = load_csr_with_cuts::<F16, u32, _>(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
        assert_eq!(cuts, Some(vec![1, 3]));
        // A v2 snapshot also loads through the plain path.
        let plain: Csr<F16, u32> = load_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(m, plain);

        let mut v1 = Vec::new();
        save_csr(&m, &mut v1).unwrap();
        let (_, none) = load_csr_with_cuts::<F16, u32, _>(&mut v1.as_slice()).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn empty_cut_list_round_trips() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr_with_cuts(&m, &[], &mut buf).unwrap();
        let (_, cuts) = load_csr_with_cuts::<F16, u32, _>(&mut buf.as_slice()).unwrap();
        assert_eq!(cuts, Some(vec![]));
    }

    #[test]
    fn rejects_bad_cuts_on_load() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr_with_cuts(&m, &[1, 3], &mut buf).unwrap();
        // Overwrite the second cut (last u64) with an out-of-range row.
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            load_csr_with_cuts::<F16, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::BadCuts)
        ));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn save_rejects_invalid_cuts() {
        let m = sample();
        let mut buf = Vec::new();
        let _ = save_csr_with_cuts(&m, &[3, 1], &mut buf);
    }

    #[test]
    fn rejects_truncated_cut_section() {
        let m = sample();
        let mut buf = Vec::new();
        save_csr_with_cuts(&m, &[1, 3], &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            load_csr_with_cuts::<F16, u32, _>(&mut buf.as_slice()),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m: Csr<F16, u32> = Csr::<f64, u32>::from_rows(3, &[vec![], vec![]])
            .unwrap()
            .convert_values();
        let mut buf = Vec::new();
        save_csr(&m, &mut buf).unwrap();
        let back: Csr<F16, u32> = load_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }
}
