//! Device specifications for the modeled GPUs.
//!
//! Numbers are the public datasheet values for the three cards the paper
//! evaluates, plus two calibration constants per device:
//!
//! * `dram_efficiency` — the fraction of datasheet bandwidth a perfectly
//!   coalesced streaming kernel can actually sustain (DRAM refresh, ECC,
//!   command overhead). ~0.9 on HBM2e parts; set to 0.48 on the P100,
//!   where the paper measured only ~41% of peak and explicitly deferred
//!   the explanation to future work (§V, Fig. 7) — we model it as an
//!   architectural derate (pre-Volta scheduler + first-generation HBM
//!   controller) so the published V100/P100 ≈ 2.5x gap is reproduced.
//! * `block_dispatch_cycles` — fixed cost to schedule one thread block,
//!   which penalizes tiny blocks in the Figure 4 sweep.

/// Floating-point precision of a kernel's arithmetic, selecting the
/// compute ceiling in the roofline/timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    Half,
    Single,
    Double,
}

/// Static description of a simulated GPU.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Warp schedulers per SM (warps issued per cycle per SM).
    pub warp_schedulers: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity used by the cache model.
    pub l2_ways: usize,
    /// Peak DRAM bandwidth in bytes/s (datasheet).
    pub dram_bw: f64,
    /// Aggregate on-chip cache bandwidth in bytes/s servicing hit traffic
    /// (the model has no separate L1, so this stands for L1+L2 combined —
    /// what bounds gather-heavy and atomic-heavy kernels).
    pub l2_bw: f64,
    /// Peak double-precision FLOP/s.
    pub peak_f64: f64,
    /// Peak single-precision FLOP/s.
    pub peak_f32: f64,
    /// Peak half-precision FLOP/s.
    pub peak_f16: f64,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Sustainable fraction of `dram_bw` for a perfect streaming kernel.
    pub dram_efficiency: f64,
    /// Cycles to dispatch one thread block (amortized over the block).
    pub block_dispatch_cycles: f64,
    /// Peak scattered floating-point atomicAdd throughput (read-modify-
    /// write operations per second at the L2). Far below raw cache
    /// bandwidth: each atomic serializes a slice's RMW port.
    pub atomic_ops_per_s: f64,
    /// Modeled inter-device interconnect bandwidth in bytes/s per device
    /// (NVLink-class link budget out of this card), charged when a
    /// row-sharded launch gathers partial results to one destination.
    pub interconnect_bw: f64,
}

impl DeviceSpec {
    /// Nvidia A100-SXM4-40GB (Ampere), the paper's primary system.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100",
            sm_count: 108,
            clock_hz: 1.41e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_schedulers: 4,
            l2_bytes: 40 << 20,
            l2_ways: 16,
            dram_bw: 1555e9,
            l2_bw: 13000e9,
            peak_f64: 9.7e12,
            peak_f32: 19.5e12,
            peak_f16: 78e12,
            launch_overhead_s: 3e-6,
            dram_efficiency: 0.94,
            block_dispatch_cycles: 100.0,
            atomic_ops_per_s: 65e9,
            // NVLink 3: 12 links x 50 GB/s.
            interconnect_bw: 600e9,
        }
    }

    /// Nvidia V100-SXM2-16GB (Volta), the Kebnekaise nodes in the paper.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            sm_count: 80,
            clock_hz: 1.53e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_schedulers: 4,
            l2_bytes: 6 << 20,
            l2_ways: 16,
            dram_bw: 897e9,
            l2_bw: 8000e9,
            peak_f64: 7.8e12,
            peak_f32: 15.7e12,
            peak_f16: 31.4e12,
            launch_overhead_s: 3.5e-6,
            dram_efficiency: 0.94,
            block_dispatch_cycles: 100.0,
            atomic_ops_per_s: 35e9,
            // NVLink 2: 6 links x 50 GB/s.
            interconnect_bw: 300e9,
        }
    }

    /// Nvidia P100-SXM2-16GB (Pascal), on the POWER8 host in the paper.
    pub fn p100() -> Self {
        DeviceSpec {
            name: "P100",
            sm_count: 56,
            clock_hz: 1.48e9,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warp_schedulers: 2,
            l2_bytes: 4 << 20,
            l2_ways: 16,
            dram_bw: 732e9,
            l2_bw: 4000e9,
            peak_f64: 5.3e12,
            peak_f32: 10.6e12,
            peak_f16: 21.2e12,
            launch_overhead_s: 5e-6,
            // See module docs: reproduces the paper's measured ~41% of
            // peak (vs ~85% on A100/V100) that it left unexplained.
            dram_efficiency: 0.48,
            block_dispatch_cycles: 100.0,
            atomic_ops_per_s: 15e9,
            // NVLink 1: 4 links x 40 GB/s.
            interconnect_bw: 160e9,
        }
    }

    /// Peak FLOP/s ceiling for a given precision.
    pub fn peak_flops(&self, p: Precision) -> f64 {
        match p {
            Precision::Half => self.peak_f16,
            Precision::Single => self.peak_f32,
            Precision::Double => self.peak_f64,
        }
    }

    /// Returns a copy with the L2 capacity scaled by `1 / factor`.
    ///
    /// Experiments run on matrices geometrically scaled down by `factor`;
    /// scaling the L2 by the same factor preserves the capacity *ratios*
    /// the paper's analysis hinges on (e.g. "the input vector fits
    /// entirely in the 40 MB L2"). Ceilings (bandwidths, FLOP/s) are left
    /// untouched — the timing model extrapolates traffic back up.
    pub fn scaled_l2(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "scale factor must be >= 1");
        let mut d = self.clone();
        // Keep at least one line per set per way so the model stays sane.
        d.l2_bytes = ((self.l2_bytes as f64 / factor) as usize).max(d.l2_ways * 32 * 4);
        d
    }

    /// Returns a copy with the L2 capacity set explicitly (used by the
    /// experiment harness, which clamps the scaled L2 so the capacity
    /// *relations* of the clinical problem survive — input vector
    /// resident, matrix streaming; see `rt-repro::runner`).
    pub fn with_l2_bytes(&self, bytes: usize) -> Self {
        let mut d = self.clone();
        d.l2_bytes = bytes.max(d.l2_ways * 32 * 4);
        d
    }

    /// Warp slots across the whole device (resident warps at 100%
    /// occupancy).
    pub fn total_warp_slots(&self) -> u32 {
        self.sm_count * self.max_threads_per_sm / 32
    }

    /// Sustainable streaming bandwidth in bytes/s — `dram_bw` derated by
    /// `dram_efficiency`. The single number that ranks devices for a
    /// bandwidth-bound SpMV, used as the throughput weight when sharding
    /// across a heterogeneous pool and when dealing devices into replica
    /// groups.
    #[inline]
    pub fn effective_dram_bw(&self) -> f64 {
        self.dram_bw * self.dram_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table() {
        let a = DeviceSpec::a100();
        assert_eq!(a.l2_bytes, 40 * 1024 * 1024);
        assert_eq!(a.dram_bw, 1555e9);
        let v = DeviceSpec::v100();
        assert_eq!(v.l2_bytes, 6 * 1024 * 1024);
        assert_eq!(v.dram_bw, 897e9);
        let p = DeviceSpec::p100();
        assert_eq!(p.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(p.dram_bw, 732e9);
    }

    #[test]
    fn precision_ceilings_ordered() {
        let a = DeviceSpec::a100();
        assert!(a.peak_flops(Precision::Half) > a.peak_flops(Precision::Single));
        assert!(a.peak_flops(Precision::Single) > a.peak_flops(Precision::Double));
    }

    #[test]
    fn scaling_shrinks_l2_only() {
        let a = DeviceSpec::a100();
        let s = a.scaled_l2(64.0);
        assert_eq!(s.l2_bytes, (40 << 20) / 64);
        assert_eq!(s.dram_bw, a.dram_bw);
        assert_eq!(s.peak_f64, a.peak_f64);
    }

    #[test]
    fn scaling_floors_at_minimum_cache() {
        let a = DeviceSpec::a100();
        let s = a.scaled_l2(1e12);
        assert!(s.l2_bytes >= s.l2_ways * 32 * 4);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaling_rejects_upscale() {
        let _ = DeviceSpec::a100().scaled_l2(0.5);
    }

    #[test]
    fn interconnect_generations_ordered() {
        let a = DeviceSpec::a100();
        let v = DeviceSpec::v100();
        let p = DeviceSpec::p100();
        assert!(a.interconnect_bw > v.interconnect_bw);
        assert!(v.interconnect_bw > p.interconnect_bw);
        // The link is always the narrow pipe relative to local DRAM.
        assert!(a.interconnect_bw < a.dram_bw);
    }

    #[test]
    fn warp_slots() {
        assert_eq!(DeviceSpec::a100().total_warp_slots(), 108 * 64);
    }
}
