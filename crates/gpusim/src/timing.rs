//! Analytic kernel timing from traffic counters.
//!
//! `T = launch + max(T_dram, T_l2, T_compute) + T_warp + T_dispatch`, with
//!
//! * `T_dram  = dram_bytes / effective_bandwidth` — the usual bound for
//!   SpMV. Effective bandwidth is the datasheet number times the device's
//!   streaming efficiency, an occupancy-derived latency-hiding factor, a
//!   block-granularity factor, a grid-utilization factor (kernels with too
//!   few warps cannot saturate DRAM — this is what ruins the GPU-baseline
//!   kernel on the ~5000-column prostate cases), and a per-kernel
//!   calibration multiplier from [`KernelProfile`].
//! * `T_l2 = l2_bytes / l2_bandwidth` — binds the atomic-heavy baseline
//!   kernel whose read-modify-write traffic stays inside the cache (the
//!   paper's explanation for its erratic measured DRAM bandwidth).
//! * `T_compute = flops / peak(precision)` — never binds for SpMV, kept
//!   for roofline completeness.
//! * `T_warp = warps * warp_cycles / (sm * schedulers * clock)` — fixed
//!   per-row work (row-pointer loads, the reduction) that is *not* hidden
//!   when rows are short. This term, fed by the measured warp count, is
//!   what separates the prostate cases (~300 nnz per non-empty row) from
//!   the liver cases (~1700) in achieved bandwidth, as in Fig. 5.
//! * `T_dispatch = blocks * block_dispatch_cycles / (sm * clock)` — makes
//!   very small thread blocks expensive (Fig. 4's left edge).
//!
//! Calibration constants live in [`DeviceSpec`] (per device) and
//! [`KernelProfile`] (per kernel family) and are set **once**; every
//! per-case, per-figure variation emerges from the measured counters.

use crate::counters::KernelStats;
use crate::device::DeviceSpec;
pub use crate::device::Precision;

/// Per-kernel-family calibration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelProfile {
    /// Display name ("Half/double", "GPU Baseline", ...).
    pub name: String,
    /// Arithmetic precision for the compute ceiling.
    pub precision: Precision,
    /// Fixed overhead cycles per executed warp (pointer chasing, intra-
    /// warp reduction, loop control).
    pub warp_cycles: f64,
    /// Streaming-efficiency multiplier relative to the device baseline
    /// (1.0 for our kernels; slightly below for library stand-ins whose
    /// published behaviour we calibrate to).
    pub bw_efficiency: f64,
}

impl KernelProfile {
    pub fn new(name: &str, precision: Precision) -> Self {
        KernelProfile {
            name: name.to_string(),
            precision,
            warp_cycles: 70.0,
            bw_efficiency: 1.0,
        }
    }

    pub fn with_warp_cycles(mut self, c: f64) -> Self {
        self.warp_cycles = c;
        self
    }

    pub fn with_bw_efficiency(mut self, e: f64) -> Self {
        self.bw_efficiency = e;
        self
    }
}

/// What bound a kernel's estimated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Bound {
    Dram,
    L2,
    Compute,
    /// Serialized on atomic read-modify-write throughput.
    Atomic,
    Overhead,
}

/// Modeled execution time and derived rates.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeEstimate {
    pub seconds: f64,
    /// Useful GFLOP/s (`flops / seconds / 1e9`) — the bars of Figs. 4–7.
    pub gflops: f64,
    /// Achieved DRAM bandwidth in GB/s — the line series of Figs. 5–7.
    pub dram_bw_gbps: f64,
    /// Achieved bandwidth as a fraction of the datasheet peak.
    pub frac_peak_bw: f64,
    pub bound: Bound,
}

/// Occupancy-style scheduling efficiency of an execution configuration.
///
/// Returns `(resident_blocks_per_sm, latency_hiding_factor)`.
fn sched_factors(spec: &DeviceSpec, threads_per_block: u32) -> (u32, f64) {
    let tpb = threads_per_block.max(32);
    let blocks_per_sm = spec
        .max_blocks_per_sm
        .min(spec.max_threads_per_sm / tpb)
        .max(1);
    let resident = blocks_per_sm * tpb;
    let occupancy = resident as f64 / spec.max_threads_per_sm as f64;
    // Full latency hiding needs ~70% occupancy for streaming kernels;
    // below that, exposed memory latency eats bandwidth.
    let latency = (occupancy / 0.70).min(1.0);
    // Fewer resident blocks -> coarser work granularity at SM drain time.
    let granularity = 1.0 - 0.10 / blocks_per_sm as f64;
    (blocks_per_sm, latency * granularity)
}

/// Grid-size utilization: a kernel needs enough warps in flight across
/// the device to cover DRAM latency; tiny grids (the column-parallel
/// baseline on prostate's ~5000 columns) cannot.
fn grid_utilization(spec: &DeviceSpec, warps: u64) -> f64 {
    let needed = (spec.sm_count as u64) * 16;
    ((warps as f64) / (needed as f64)).min(1.0)
}

/// Estimates the execution time of a launch from its measured counters.
pub fn estimate(spec: &DeviceSpec, profile: &KernelProfile, stats: &KernelStats) -> TimeEstimate {
    let (_blocks_per_sm, sched) = sched_factors(spec, stats.threads_per_block);
    let util = grid_utilization(spec, stats.warps);

    let eff_bw = spec.dram_bw * spec.dram_efficiency * sched * util * profile.bw_efficiency;
    let t_dram = stats.dram_total_bytes() as f64 / eff_bw;

    let eff_l2 = spec.l2_bw * sched * util;
    let t_l2 = stats.l2_total_bytes() as f64 / eff_l2;

    let t_compute = stats.flops as f64 / spec.peak_flops(profile.precision);

    // Scattered atomics serialize on the L2 RMW ports; the scheduling
    // granularity factor applies here too (bursty issue from few large
    // resident blocks lowers sustained RMW throughput — why the paper's
    // baseline prefers 64-128-thread blocks).
    let t_atomic = stats.atomic_ops as f64 / (spec.atomic_ops_per_s * sched * util.max(1e-9));

    let warp_throughput = spec.sm_count as f64 * spec.warp_schedulers as f64 * spec.clock_hz;
    let t_warp = stats.warps as f64 * profile.warp_cycles / warp_throughput;

    let t_dispatch =
        stats.blocks as f64 * spec.block_dispatch_cycles / (spec.sm_count as f64 * spec.clock_hz);

    let (t_body, bound) = [
        (t_dram, Bound::Dram),
        (t_l2, Bound::L2),
        (t_compute, Bound::Compute),
        (t_atomic, Bound::Atomic),
    ]
    .into_iter()
    .max_by(|a, b| a.0.total_cmp(&b.0))
    .unwrap();

    let overheads = spec.launch_overhead_s + t_warp + t_dispatch;
    let seconds = t_body + overheads;
    let bound = if overheads > t_body {
        Bound::Overhead
    } else {
        bound
    };

    TimeEstimate {
        seconds,
        gflops: stats.flops as f64 / seconds / 1e9,
        dram_bw_gbps: stats.dram_total_bytes() as f64 / seconds / 1e9,
        frac_peak_bw: stats.dram_total_bytes() as f64 / seconds / spec.dram_bw,
        bound,
    }
}

/// Modeled time to move `bytes` of shard results off `spec` over the
/// inter-device interconnect during a sharded gather.
///
/// The transfer is one contiguous DMA of already-computed results, so no
/// occupancy or granularity derates apply — only the per-device link
/// budget. A zero-byte gather (a shard whose rows are all empty) is free.
pub fn gather_estimate(spec: &DeviceSpec, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    bytes as f64 / spec.interconnect_bw
}

/// Host CPU description for the RayStation clinical-baseline row.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuSpec {
    pub name: &'static str,
    pub cores: u32,
    pub clock_hz: f64,
    /// Sustainable DRAM bandwidth in bytes/s.
    pub dram_bw: f64,
    /// Peak double-precision FLOP/s (cores x clock x SIMD FMA width).
    pub peak_f64: f64,
    /// Last-level cache size in bytes.
    pub llc_bytes: usize,
}

impl CpuSpec {
    /// Intel i9-7940X: 14 Skylake-X cores, quad-channel DDR4-2666, the
    /// paper's clinical-baseline host.
    pub fn i9_7940x() -> Self {
        CpuSpec {
            name: "i9-7940X",
            cores: 14,
            clock_hz: 3.1e9,
            dram_bw: 75e9,
            peak_f64: 1.39e12,
            llc_bytes: 19 * (1 << 20),
        }
    }

    /// Roofline-style time estimate from analytic traffic (the CPU path
    /// is not simulated; its traffic is computed from the scratch-array
    /// algorithm's structure in `rt-core`).
    pub fn estimate(&self, traffic_bytes: f64, flops: f64) -> TimeEstimate {
        // Sustained bandwidth for the scatter-heavy mixed read/write
        // pattern of the scratch-array algorithm is well below STREAM
        // (partial-line RMW, TLB pressure, socket contention).
        let t_mem = traffic_bytes / (self.dram_bw * 0.65);
        let t_compute = flops / self.peak_f64;
        let seconds = t_mem.max(t_compute);
        TimeEstimate {
            seconds,
            gflops: flops / seconds / 1e9,
            dram_bw_gbps: traffic_bytes / seconds / 1e9,
            frac_peak_bw: traffic_bytes / seconds / self.dram_bw,
            bound: if t_mem >= t_compute {
                Bound::Dram
            } else {
                Bound::Compute
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic stats resembling a perfectly coalesced streaming SpMV:
    /// `bytes_per_flop` bytes of DRAM traffic per 2 flops per nnz.
    fn streaming_stats(nnz: u64, rows: u64, bytes_per_nnz: u64, tpb: u32) -> KernelStats {
        let grid_warps = rows;
        KernelStats {
            flops: 2 * nnz,
            requested_bytes: nnz * bytes_per_nnz,
            l2_read_misses: nnz * bytes_per_nnz / 32,
            dram_read_bytes: nnz * bytes_per_nnz,
            dram_writeback_sectors: rows * 8 / 32,
            dram_write_bytes: rows * 8,
            warps: grid_warps,
            blocks: grid_warps * 32 / tpb as u64,
            threads_per_block: tpb,
            ..Default::default()
        }
    }

    #[test]
    fn long_rows_reach_high_bandwidth_fraction() {
        // Liver-like: 1.48e9 nnz over 2.97e6 rows, 6.5 bytes per nnz.
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("Half/double", Precision::Double);
        let stats = streaming_stats(1_480_000_000, 2_970_000, 6, 512);
        let t = estimate(&spec, &profile, &stats);
        assert!(
            t.frac_peak_bw > 0.75 && t.frac_peak_bw < 0.92,
            "liver-like bandwidth fraction {}",
            t.frac_peak_bw
        );
        assert_eq!(t.bound, Bound::Dram);
    }

    #[test]
    fn short_rows_lose_bandwidth() {
        // Prostate-like: 9.5e7 nnz over 1.03e6 rows (short rows).
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("Half/double", Precision::Double);
        let liver = estimate(
            &spec,
            &profile,
            &streaming_stats(1_480_000_000, 2_970_000, 6, 512),
        );
        let prostate = estimate(
            &spec,
            &profile,
            &streaming_stats(95_000_000, 1_030_000, 6, 512),
        );
        assert!(
            prostate.frac_peak_bw < liver.frac_peak_bw - 0.05,
            "prostate {} vs liver {}",
            prostate.frac_peak_bw,
            liver.frac_peak_bw
        );
    }

    #[test]
    fn tpb_sweep_peaks_in_the_middle() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("Half/double", Precision::Double);
        let perf = |tpb: u32| {
            estimate(
                &spec,
                &profile,
                &streaming_stats(1_480_000_000, 2_970_000, 6, tpb),
            )
            .gflops
        };
        let g32 = perf(32);
        let g128 = perf(128);
        let g512 = perf(512);
        let g1024 = perf(1024);
        assert!(g32 < g512, "32 tpb should underperform: {g32} vs {g512}");
        assert!(g128 <= g512 * 1.001, "128 {g128} vs 512 {g512}");
        assert!(g1024 <= g512, "1024 {g1024} vs 512 {g512}");
    }

    #[test]
    fn tiny_grids_are_utilization_bound() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("baseline", Precision::Double);
        // Column-parallel baseline on prostate: ~5000 columns = 157 warps.
        let mut stats = streaming_stats(95_000_000, 1_030_000, 32, 128);
        stats.warps = 157;
        stats.blocks = 40;
        let t = estimate(&spec, &profile, &stats);
        assert!(t.frac_peak_bw < 0.2, "tiny grid frac {}", t.frac_peak_bw);
    }

    #[test]
    fn device_ordering_follows_bandwidth_and_derates() {
        let profile = KernelProfile::new("Half/double", Precision::Double);
        let stats = streaming_stats(1_480_000_000, 2_970_000, 6, 512);
        let a = estimate(&DeviceSpec::a100(), &profile, &stats);
        let v = estimate(&DeviceSpec::v100(), &profile, &stats);
        let p = estimate(&DeviceSpec::p100(), &profile, &stats);
        let av = a.gflops / v.gflops;
        let vp = v.gflops / p.gflops;
        assert!((1.4..=2.1).contains(&av), "A100/V100 ratio {av}");
        assert!((2.0..=3.0).contains(&vp), "V100/P100 ratio {vp}");
        // P100's anomalous low fraction of peak (paper: ~41%).
        assert!(p.frac_peak_bw < 0.5, "P100 frac {}", p.frac_peak_bw);
        assert!(v.frac_peak_bw > 0.75, "V100 frac {}", v.frac_peak_bw);
    }

    #[test]
    fn atomic_heavy_kernels_are_atomic_bound() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("atomic-heavy", Precision::Double);
        let stats = KernelStats {
            flops: 2_000_000_000,
            atomic_ops: 1_000_000_000,
            l2_read_hits: 1_000_000_000,
            dram_read_bytes: 32_000_000, // tiny DRAM traffic
            l2_read_misses: 1_000_000,
            warps: 3_000_000,
            blocks: 100_000,
            threads_per_block: 128,
            ..Default::default()
        };
        let t = estimate(&spec, &profile, &stats);
        assert_eq!(t.bound, Bound::Atomic);
        // 1e9 scattered fp64 atomics at 60 Gop/s: ~17 ms.
        assert!((0.012..0.03).contains(&t.seconds), "t {}", t.seconds);
    }

    #[test]
    fn l2_bound_kernels_report_l2() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("gather-heavy", Precision::Double);
        let stats = KernelStats {
            flops: 2_000_000_000,
            l2_read_hits: 3_000_000_000, // 96 GB of on-chip gather traffic
            dram_read_bytes: 32_000_000,
            l2_read_misses: 1_000_000,
            warps: 3_000_000,
            blocks: 100_000,
            threads_per_block: 128,
            ..Default::default()
        };
        let t = estimate(&spec, &profile, &stats);
        assert_eq!(t.bound, Bound::L2);
    }

    #[test]
    fn gather_cost_scales_with_bytes_and_link_generation() {
        let a = DeviceSpec::a100();
        let p = DeviceSpec::p100();
        assert_eq!(gather_estimate(&a, 0), 0.0);
        let t1 = gather_estimate(&a, 1 << 20);
        let t2 = gather_estimate(&a, 2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!(gather_estimate(&p, 1 << 20) > t1);
        // ~330 KB of non-empty liver rows over NVLink 3 is well under the
        // kernel launch overhead — sharding must stay profitable.
        assert!(gather_estimate(&a, 330_000) < a.launch_overhead_s);
    }

    #[test]
    fn cpu_estimate_is_memory_bound_for_spmv() {
        let cpu = CpuSpec::i9_7940x();
        // Liver-like CPU traffic: ~18 bytes per nnz (see rt-core docs).
        let t = cpu.estimate(18.0 * 1.48e9, 2.0 * 1.48e9);
        assert_eq!(t.bound, Bound::Dram);
        assert!(t.gflops < 15.0, "CPU SpMV should be slow: {}", t.gflops);
        assert!(t.seconds > 0.1);
    }

    #[test]
    fn launch_overhead_binds_tiny_kernels() {
        let spec = DeviceSpec::a100();
        let profile = KernelProfile::new("tiny", Precision::Double);
        let stats = KernelStats {
            flops: 1000,
            dram_read_bytes: 32,
            l2_read_misses: 1,
            warps: 1,
            blocks: 1,
            threads_per_block: 32,
            ..Default::default()
        };
        let t = estimate(&spec, &profile, &stats);
        assert_eq!(t.bound, Bound::Overhead);
        assert!(t.seconds >= spec.launch_overhead_s);
    }
}
